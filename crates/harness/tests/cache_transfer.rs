//! The cache-transfer study: does shipping a `bat/cache/v1` store to an
//! *unseen* architecture actually save evaluations?
//!
//! `specs/cache-transfer.json` tunes two benchmarks on three donor GPUs
//! (RTX 2080 Ti, RTX 3060, RTX Titan — everything in the testbed except
//! the RTX 3090). Folding that campaign into a cache and warm-starting a
//! tuner on the held-out RTX 3090 from its nearest cached neighbours must
//! reach within 5% of the cold run's best in strictly fewer evaluations
//! than tuning from scratch — the evals-to-target metric of the study.

use bat_cache::{transfer::transfer_database, CacheStore};
use bat_core::{Evaluator, Protocol, TuningProblem, TuningRun};
use bat_gpusim::GpuArch;
use bat_harness::{fold_run_into_cache, load_spec_file, run_campaign};
use bat_tuners::{RandomSearch, Tuner, WarmStartTuner};

const SPEC: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../specs/cache-transfer.json"
);
const TARGET_BUDGET: u64 = 150;

/// Evaluations until the run's best-so-far first drops to `target_ms`;
/// censored at budget + 1 when it never does.
fn evals_to_reach(run: &TuningRun, target_ms: f64) -> u64 {
    let mut spent = 0;
    for trial in &run.trials {
        spent += 1;
        if let Ok(m) = &trial.outcome {
            if m.time_ms <= target_ms {
                return spent;
            }
        }
    }
    TARGET_BUDGET + 1
}

fn donor_cache() -> CacheStore {
    let spec = load_spec_file(SPEC).expect("cache-transfer spec loads");
    let run = run_campaign(&spec).expect("donor campaign runs");
    let mut store = CacheStore::new();
    fold_run_into_cache(&mut store, &run.result);
    store
}

#[test]
fn shipped_cache_cuts_evals_to_target_on_an_unseen_architecture() {
    let store = donor_cache();
    let target = GpuArch::rtx_3090();
    assert!(
        store.cells.iter().all(|c| c.architecture != target.name),
        "the study target must be absent from the shipped cache"
    );

    let (mut total_cold, mut total_warm) = (0u64, 0u64);
    for benchmark in ["gemm", "nbody"] {
        let problem = bat_kernels::benchmark(benchmark, target.clone()).unwrap();
        let names: Vec<String> = problem
            .space()
            .params()
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let db = transfer_database(&store, benchmark, &target, &names);
        assert!(
            !db.seeds_for(target.name).is_empty(),
            "donor cells must yield warm-start seeds for {benchmark}"
        );

        let cold_eval =
            Evaluator::with_protocol(&problem, Protocol::default()).with_budget(TARGET_BUDGET);
        let cold = RandomSearch.tune(&cold_eval, 0);
        let cold_best = cold
            .trials
            .iter()
            .filter_map(|t| t.outcome.as_ref().ok().map(|m| m.time_ms))
            .fold(f64::INFINITY, f64::min);
        let target_ms = cold_best * 1.05;

        let warm_eval =
            Evaluator::with_protocol(&problem, Protocol::default()).with_budget(TARGET_BUDGET);
        let warm =
            WarmStartTuner::from_database(&db, target.name, RandomSearch).tune(&warm_eval, 0);

        let cold_evals = evals_to_reach(&cold, target_ms);
        let warm_evals = evals_to_reach(&warm, target_ms);
        println!(
            "{benchmark}: evals to within 5% of best — cold {cold_evals}, warm {warm_evals} \
             ({} donor seeds)",
            db.seeds_for(target.name).len()
        );
        total_cold += cold_evals;
        total_warm += warm_evals;
    }
    // The study metric aggregates over the suite: per-benchmark a lucky
    // cold draw can tie or edge ahead, but across benchmarks the shipped
    // cache must strictly cut evaluations to target.
    assert!(
        total_warm < total_cold,
        "shipped cache must cut total evals-to-target: warm {total_warm} vs cold {total_cold}"
    );
}

#[test]
fn nsga2_warm_starts_from_the_shipped_cache() {
    let store = donor_cache();
    let target = GpuArch::rtx_3090();
    let problem = bat_kernels::benchmark("gemm", target.clone()).unwrap();
    let names: Vec<String> = problem
        .space()
        .params()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let db = transfer_database(&store, "gemm", &target, &names);

    let tuner = bat_moo::Nsga2::warm_started(&db, target.name);
    assert!(
        !tuner.seeds.is_empty(),
        "warm-started NSGA-II must inherit the donor seeds"
    );
    let eval = Evaluator::with_protocol(&problem, Protocol::default())
        .with_budget(60)
        .with_energy();
    let run = tuner.tune(&eval, 0);
    assert!(!run.trials.is_empty());
    // The donor seeds head the first generation verbatim.
    let first_seed = &db.seeds_for(target.name)[0];
    let first_config: Vec<i64> = run.trials[0].config.clone();
    assert_eq!(&first_config, first_seed);
}
