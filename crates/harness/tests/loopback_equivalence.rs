//! Property test: for random small campaign specs, routing evaluation
//! through the loopback daemon (client and server in one process over the
//! real `bat/wire/v1` codec) produces an artifact byte-identical to the
//! in-process run.
//!
//! This is the acceptance gate of the tuning-as-a-service redesign in
//! property form: the wire protocol, the session bookkeeping and the
//! remote backend may not perturb a single artifact byte, no matter which
//! tuner, benchmark, objective, batch size or fault block the spec drew.

use bat_harness::{
    run_campaign, run_campaign_at, Endpoint, ExperimentSpec, ObjectiveMode, ObjectiveSpec,
    RecordLevel, Selector,
};
use proptest::prelude::*;

const TUNERS: [&str; 3] = ["random-search", "greedy-ils", "simulated-annealing"];
const BENCHMARKS: [&str; 3] = ["nbody", "gemm", "pnpoly"];
const MODES: [ObjectiveMode; 5] = [
    ObjectiveMode::Time,
    ObjectiveMode::Energy,
    ObjectiveMode::Edp,
    ObjectiveMode::Scalarized,
    ObjectiveMode::Pareto,
];

fn random_spec(
    tuner: usize,
    benchmark: usize,
    mode: usize,
    budget: u64,
    batch: u32,
    fault_pct: u8,
) -> ExperimentSpec {
    let mode = MODES[mode % MODES.len()];
    let mut spec = ExperimentSpec {
        tuners: Selector::Subset(vec![TUNERS[tuner % TUNERS.len()].into()]),
        benchmarks: Selector::Subset(vec![BENCHMARKS[benchmark % BENCHMARKS.len()].into()]),
        architectures: Selector::Subset(vec!["RTX 3090".into()]),
        budget,
        repetitions: 1,
        objective: ObjectiveSpec {
            mode,
            weight: (mode == ObjectiveMode::Scalarized).then_some(0.4),
            front_capacity: (mode == ObjectiveMode::Pareto).then_some(6),
            ..ObjectiveSpec::default()
        },
        record: RecordLevel::Curve,
        ..ExperimentSpec::new("loopback-prop")
    };
    // The spec validator rejects batches larger than the trial budget.
    spec.protocol.set_batch(batch.min(budget as u32));
    spec.set_fault_rate(f64::from(fault_pct) / 100.0);
    spec
}

proptest! {
    #[test]
    fn loopback_artifacts_equal_in_process_artifacts(
        tuner in 0..TUNERS.len(),
        benchmark in 0..BENCHMARKS.len(),
        mode in 0..MODES.len(),
        extras in (3..=14u64, 1..=4u32, 0..=6u8),
    ) {
        let (budget, batch, fault_pct) = extras;
        let spec = random_spec(tuner, benchmark, mode, budget, batch, fault_pct);
        let local = run_campaign(&spec).unwrap();
        let loopback = run_campaign_at(&spec, &Endpoint::Loopback).unwrap();
        prop_assert_eq!(
            loopback.result.to_json(),
            local.result.to_json(),
            "endpoint changed artifact bytes for spec {}",
            spec.to_json()
        );
    }
}
