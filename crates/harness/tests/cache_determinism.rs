//! Property tests for the shippable autotune cache.
//!
//! Three determinism claims, in property form:
//!
//! * [`CacheStore::merge`] is commutative and associative with the empty
//!   store as identity, and the merged JSON is byte-stable — so shard
//!   caches recombine into the unsharded cache no matter the grouping.
//! * A `--cache` campaign is byte-deterministic: the warm (fully cached)
//!   artifact equals the cold one, serial equals parallel, and resuming
//!   on top of a cache changes nothing.
//! * An empty cache is invisible: running against a zero-entry cache
//!   produces an artifact byte-identical to running with no cache at all.

use std::collections::BTreeMap;

use bat_cache::{CacheStore, CachedTrial};
use bat_harness::{run_spec_to_file_cached, Endpoint, ExperimentSpec, RecordLevel, Selector};
use proptest::prelude::*;

/// One synthetic cache observation: small index spaces so entries collide
/// across stores (exercising the cell-merge path, not just concatenation).
type Entry = (u8, u8, u8, i64, u16);

/// Strategy drawing one [`Entry`].
fn entry() -> impl Strategy<Value = Entry> {
    (0u8..3, 0u8..3, 0u8..4, -4i64..5, 0u16..200)
}

fn store_from(entries: &[Entry]) -> CacheStore {
    let mut store = CacheStore::new();
    for (i, &(bench, arch, scen, val, raw_ms)) in entries.iter().enumerate() {
        let benchmark = format!("bench-{}", bench % 3);
        let architecture = format!("arch-{}", arch % 3);
        let scenario = format!("objective=time;budget={}", 10 + scen % 4);
        let config = BTreeMap::from([("p".to_string(), val)]);
        let ms = 0.5 + f64::from(raw_ms) / 100.0;
        store.observe(&benchmark, &architecture, &scenario, &config, ms, None);
        store.count_evals(&benchmark, &architecture, &scenario, 1);
        // Every third entry also carries an exact-replay trial blob, so
        // the properties cover trial merging (first-in wins, sorted).
        if i % 3 == 0 {
            store.insert_trial(CachedTrial {
                fingerprint: format!("fp-{bench}-{arch}-{scen}-{val}"),
                benchmark,
                architecture,
                record: serde::Value::Object(vec![("ms".to_string(), serde::Value::Float(ms))]),
            });
        }
    }
    store
}

fn merged(stores: &[&CacheStore]) -> CacheStore {
    let mut out = CacheStore::new();
    for s in stores {
        out.merge(s);
    }
    out
}

proptest! {
    #[test]
    fn merge_is_commutative_associative_and_byte_stable(
        a in collection::vec(entry(), 0..12),
        b in collection::vec(entry(), 0..12),
        c in collection::vec(entry(), 0..12),
    ) {
        let (a, b, c) = (store_from(&a), store_from(&b), store_from(&c));

        let ab = merged(&[&a, &b]);
        let ba = merged(&[&b, &a]);
        prop_assert_eq!(ab.to_json(), ba.to_json(), "merge must be commutative");

        let ab_c = merged(&[&ab, &c]);
        let bc = merged(&[&b, &c]);
        let a_bc = merged(&[&a, &bc]);
        prop_assert_eq!(ab_c.to_json(), a_bc.to_json(), "merge must be associative");

        let empty = CacheStore::new();
        prop_assert_eq!(
            merged(&[&a, &empty]).to_json(),
            a.to_json(),
            "empty store must be the merge identity"
        );

        // Byte-stability: re-parsing and re-serializing changes nothing.
        let round = CacheStore::from_json(&ab_c.to_json()).unwrap();
        prop_assert_eq!(round.to_json(), ab_c.to_json());
    }
}

const TUNERS: [&str; 2] = ["random-search", "greedy-ils"];
const BENCHMARKS: [&str; 2] = ["nbody", "pnpoly"];

fn small_spec(tuner: usize, benchmark: usize, budget: u64) -> ExperimentSpec {
    ExperimentSpec {
        tuners: Selector::Subset(vec![TUNERS[tuner % TUNERS.len()].into()]),
        benchmarks: Selector::Subset(vec![BENCHMARKS[benchmark % BENCHMARKS.len()].into()]),
        architectures: Selector::Subset(vec!["RTX 3090".into()]),
        budget,
        repetitions: 2,
        record: RecordLevel::Full,
        ..ExperimentSpec::new("cache-prop")
    }
}

/// A unique scratch path per property case, so parallel test threads and
/// shrunken re-runs never collide.
fn scratch(tag: &str, case: &str) -> String {
    let dir = std::env::temp_dir().join("bat-cache-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{case}.json"));
    let _ = std::fs::remove_file(&path);
    path.to_str().unwrap().to_string()
}

proptest! {
    #[test]
    fn cached_campaigns_are_byte_deterministic(
        tuner in 0..TUNERS.len(),
        benchmark in 0..BENCHMARKS.len(),
        budget in 4..=10u64,
    ) {
        let spec = small_spec(tuner, benchmark, budget);
        let case = format!("{tuner}-{benchmark}-{budget}");
        let cache = scratch("cache", &case);
        let cold_out = scratch("cold", &case);
        let warm_out = scratch("warm", &case);

        // Cold parallel run populates the cache.
        let cold = run_spec_to_file_cached(
            &spec, Some(&cold_out), false, false, &Endpoint::InProcess, Some(&cache),
        ).unwrap();
        prop_assert_eq!(cold.executed, cold.result.trials.len());

        // Warm serial run: everything replays from the cache, and the
        // artifact does not move by a byte.
        let warm = run_spec_to_file_cached(
            &spec, Some(&warm_out), false, true, &Endpoint::InProcess, Some(&cache),
        ).unwrap();
        prop_assert_eq!(warm.executed, 0, "a fully warm run executes nothing");
        prop_assert_eq!(warm.reused, cold.result.trials.len());
        prop_assert_eq!(warm.result.to_json(), cold.result.to_json());
        prop_assert_eq!(
            std::fs::read_to_string(&warm_out).unwrap(),
            std::fs::read_to_string(&cold_out).unwrap(),
            "warm artifact must be byte-identical to the cold one"
        );

        // Resuming the cold artifact with the cache still loaded changes
        // nothing — and neither does the combination rewrite the cache.
        let cache_bytes = std::fs::read_to_string(&cache).unwrap();
        let resumed = run_spec_to_file_cached(
            &spec, Some(&cold_out), true, false, &Endpoint::InProcess, Some(&cache),
        ).unwrap();
        prop_assert_eq!(resumed.executed, 0);
        prop_assert_eq!(resumed.result.to_json(), cold.result.to_json());
        prop_assert_eq!(
            std::fs::read_to_string(&cache).unwrap(),
            cache_bytes,
            "re-running warm must not rewrite the cache file"
        );

        for p in [cache, cold_out, warm_out] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn zero_entry_cache_is_invisible(
        tuner in 0..TUNERS.len(),
        benchmark in 0..BENCHMARKS.len(),
        budget in 4..=10u64,
    ) {
        let spec = small_spec(tuner, benchmark, budget);
        let case = format!("zero-{tuner}-{benchmark}-{budget}");
        let cache = scratch("empty-cache", &case);
        std::fs::write(&cache, CacheStore::new().to_json()).unwrap();
        let cached_out = scratch("cached", &case);
        let plain_out = scratch("plain", &case);

        let cached = run_spec_to_file_cached(
            &spec, Some(&cached_out), false, false, &Endpoint::InProcess, Some(&cache),
        ).unwrap();
        let plain = run_spec_to_file_cached(
            &spec, Some(&plain_out), false, false, &Endpoint::InProcess, None,
        ).unwrap();
        prop_assert_eq!(cached.result.to_json(), plain.result.to_json());
        prop_assert_eq!(
            std::fs::read_to_string(&cached_out).unwrap(),
            std::fs::read_to_string(&plain_out).unwrap(),
            "an empty cache must not perturb the artifact"
        );

        for p in [cache, cached_out, plain_out] {
            let _ = std::fs::remove_file(&p);
        }
    }
}
