//! The shared file-level front-end flow: spec in, artifact out.
//!
//! Both campaign entry points (`bat-harness run` and `bat campaign`) are
//! thin shells over these helpers, so resume semantics, checkpointing,
//! error handling and the post-run report cannot drift between the two
//! binaries.

use bat_cache::{CacheError, CacheStore};
use bat_core::t4::{T4Metadata, T4_SCHEMA_VERSION};
use bat_core::Error;

use crate::cache_integration::{cache_prior, fold_run_into_cache};
use crate::campaign::{
    merge_campaigns, run_campaign_at, run_campaign_checkpointed, run_campaign_serial_primed,
    CampaignRun, Endpoint, HarnessError,
};
use crate::result::{CampaignResult, RESULT_SCHEMA};
use crate::spec::{ExperimentSpec, SPEC_SCHEMA};
use crate::summary::CampaignSummary;

/// Trials executed between checkpoint writes of the output artifact.
/// Small enough that an interrupted long campaign loses little work,
/// large enough that serialization stays a rounding error next to trial
/// execution.
const CHECKPOINT_TRIALS: usize = 32;

/// Load and parse a campaign spec file.
pub fn load_spec_file(path: &str) -> Result<ExperimentSpec, Error> {
    let text =
        std::fs::read_to_string(path).map_err(|e| Error::io(format!("reading {path}: {e}")))?;
    ExperimentSpec::from_json(&text).map_err(|e| Error::spec(format!("parsing {path}: {e}")))
}

/// Load and parse a campaign result artifact.
pub fn load_result_file(path: &str) -> Result<CampaignResult, Error> {
    let text =
        std::fs::read_to_string(path).map_err(|e| Error::io(format!("reading {path}: {e}")))?;
    CampaignResult::from_json(&text).map_err(|e| Error::spec(format!("parsing {path}: {e}")))
}

/// Execute `spec` and, when `out` is given, write the artifact there —
/// checkpointed every [`CHECKPOINT_TRIALS`] completed trials, so an
/// interrupted run leaves a partial artifact that `resume` picks up.
///
/// With `resume`, trials already present in the `out` artifact are reused
/// (a missing file degenerates to a full run; any other read or parse
/// failure is an error — silently re-running would overwrite the
/// artifact). `serial` runs the determinism oracle and is mutually
/// exclusive with `resume`. `endpoint` selects where trials evaluate
/// (in-process, loopback, or a `bat serve` daemon); the artifact is
/// byte-identical across endpoints.
pub fn run_spec_to_file(
    spec: &ExperimentSpec,
    out: Option<&str>,
    resume: bool,
    serial: bool,
    endpoint: &Endpoint,
) -> Result<CampaignRun, Error> {
    run_spec_to_file_cached(spec, out, resume, serial, endpoint, None)
}

/// [`run_spec_to_file`] with an optional persistent cache (`--cache`).
///
/// When `cache` names a `bat/cache/v1` file (missing is fine — it starts
/// empty), every compiled trial whose exact fingerprint has a stored blob
/// short-circuits: the stored record replays verbatim through the resume
/// machinery, so a warm run's artifact is byte-identical to the cold
/// run's while executing nothing. Misses fall through to tuning, and the
/// finished campaign folds back into the cache atomically (idempotently:
/// a fully-warm run leaves the file untouched, so shipped caches can live
/// on read-only media).
pub fn run_spec_to_file_cached(
    spec: &ExperimentSpec,
    out: Option<&str>,
    resume: bool,
    serial: bool,
    endpoint: &Endpoint,
    cache: Option<&str>,
) -> Result<CampaignRun, Error> {
    if resume && serial {
        return Err(Error::spec("--resume and --serial are mutually exclusive"));
    }
    if serial && *endpoint != Endpoint::InProcess {
        return Err(Error::spec(
            "--serial runs the in-process determinism oracle; drop --connect",
        ));
    }
    let disk_prior: Option<CampaignResult> = if resume {
        let path =
            out.ok_or_else(|| Error::spec("--resume requires --out (the file to resume from)"))?;
        match std::fs::read_to_string(path) {
            Ok(text) => Some(
                CampaignResult::from_json(&text)
                    .map_err(|e| Error::spec(format!("parsing {path}: {e}")))?,
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(Error::io(format!("reading {path}: {e}"))),
        }
    } else {
        None
    };

    let mut store: Option<CacheStore> = match cache {
        Some(path) => Some(CacheStore::load_or_empty(path).map_err(cache_error)?),
        None => None,
    };
    let prior = combined_prior(spec, disk_prior, store.as_ref())?;

    let run = if serial {
        // The determinism oracle runs in one shot; its artifact still
        // lands on disk at the end.
        let run = run_campaign_serial_primed(spec, prior.as_ref())?;
        if let Some(path) = out {
            write_artifact(path, &run.result)?;
            write_metadata(path, spec)?;
        }
        run
    } else {
        match out {
            // Without an output file there is nothing to checkpoint into,
            // but a cache-synthesized prior still short-circuits its hits.
            None => match prior.as_ref() {
                None => run_campaign_at(spec, endpoint)?,
                Some(p) => run_campaign_checkpointed(
                    spec,
                    Some(p),
                    CHECKPOINT_TRIALS,
                    &mut |_| Ok(()),
                    endpoint,
                )?,
            },
            Some(path) => {
                let run = run_campaign_checkpointed(
                    spec,
                    prior.as_ref(),
                    CHECKPOINT_TRIALS,
                    &mut |partial| {
                        write_artifact(path, partial).map_err(|e| HarnessError::Io(e.to_string()))
                    },
                    endpoint,
                )?;
                write_metadata(path, spec)?;
                run
            }
        }
    };

    if let (Some(path), Some(store)) = (cache, store.as_mut()) {
        let before = store.to_json();
        fold_run_into_cache(store, &run.result);
        // Skip the write when nothing changed (fully-warm runs) so a
        // shipped cache can sit on read-only media.
        if store.to_json() != before {
            store.save_atomic(path).map_err(cache_error)?;
        }
    }
    Ok(run)
}

fn cache_error(e: CacheError) -> Error {
    match e {
        CacheError::Io(m) => Error::io(m),
        CacheError::Parse(m) => Error::spec(m),
    }
}

/// Combine the disk resume prior and the cache-synthesized prior into the
/// single prior the campaign engine accepts (disk trials first — they win
/// key collisions, matching plain resume). The disk prior is validated
/// against the spec *here*, exactly as the engine would, because wrapping
/// its trials in a fresh result replaces the embedded spec and would
/// otherwise bypass the mismatch check.
fn combined_prior(
    spec: &ExperimentSpec,
    disk: Option<CampaignResult>,
    store: Option<&CacheStore>,
) -> Result<Option<CampaignResult>, Error> {
    if let Some(d) = &disk {
        if d.schema != RESULT_SCHEMA {
            return Err(Error::session(format!(
                "cannot resume: prior result schema {:?} is not {RESULT_SCHEMA:?}",
                d.schema
            )));
        }
        if d.spec != *spec {
            return Err(Error::session(
                "cannot resume: prior result was produced by a different spec",
            ));
        }
    }
    let cached = store.and_then(|s| cache_prior(s, spec));
    Ok(match (disk, cached) {
        (None, None) => None,
        (Some(d), None) => Some(d),
        (None, Some(c)) => Some(c),
        (Some(mut d), Some(c)) => {
            d.trials.extend(c.trials);
            Some(d)
        }
    })
}

/// Write a document atomically (temp file + rename) so a crash mid-write
/// cannot leave a corrupt file — for the artifact that would make the
/// next `--resume` abort, for the metadata it would break any consumer.
fn write_atomic(path: &str, contents: &str) -> Result<(), Error> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| Error::io(format!("writing {tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| Error::io(format!("renaming {tmp} to {path}: {e}")))
}

fn write_artifact(path: &str, result: &CampaignResult) -> Result<(), Error> {
    write_atomic(path, &result.to_json())
}

/// The T4 metadata document describing a campaign's environment: suite,
/// backend, schemas and a human-readable objective description. Emitted
/// alongside every written artifact (`<out>.meta.json`) so campaign
/// results travel with self-describing context, T4-ecosystem style. A pure
/// function of the spec — byte-deterministic like the artifact itself.
pub fn campaign_metadata(spec: &ExperimentSpec) -> T4Metadata {
    let hardware = match spec.validate() {
        Ok((_, _, architectures)) => architectures.join(", "),
        Err(_) => "unknown".to_string(),
    };
    let mut md = T4Metadata::for_platform(hardware);
    md.environment
        .insert("campaign".to_string(), spec.name.clone());
    md.environment
        .insert("objective".to_string(), spec.objective.describe());
    md.environment
        .insert("spec_schema".to_string(), SPEC_SCHEMA.to_string());
    md.environment
        .insert("result_schema".to_string(), RESULT_SCHEMA.to_string());
    md.environment
        .insert("t4_schema".to_string(), T4_SCHEMA_VERSION.to_string());
    md
}

/// Path of the metadata document emitted next to an artifact.
pub fn metadata_path(out: &str) -> String {
    format!("{out}.meta.json")
}

fn write_metadata(out: &str, spec: &ExperimentSpec) -> Result<(), Error> {
    write_atomic(&metadata_path(out), &campaign_metadata(spec).to_json())
}

/// Merge shard artifacts into `spec`'s campaign and write the result (plus
/// its metadata document) to `out`. Missing trials execute, so merging an
/// incomplete shard set still produces the complete artifact.
pub fn merge_files(
    spec: &ExperimentSpec,
    inputs: &[String],
    out: &str,
) -> Result<CampaignRun, Error> {
    let priors: Vec<CampaignResult> = inputs
        .iter()
        .map(|p| load_result_file(p))
        .collect::<Result<_, Error>>()?;
    let run = merge_campaigns(spec, &priors)?;
    write_artifact(out, &run.result)?;
    write_metadata(out, spec)?;
    Ok(run)
}

/// Print the shared post-run report to stderr: summary tables and the
/// throughput line (unless `quiet`), plus a warning naming every trial
/// that found no valid configuration — so a `--strict` failure is
/// actionable from the log alone, not just a count. Returns the
/// failed-trial count so strict front-ends can gate on it.
pub fn report_run(run: &CampaignRun, quiet: bool) -> usize {
    if !quiet {
        eprint!("{}", CampaignSummary::from_result(&run.result).render());
        eprintln!("\n{}", run.report());
    }
    let failed = run.result.failed_trial_keys();
    if !failed.is_empty() {
        eprintln!(
            "warning: {} trial(s) found no valid configuration:",
            failed.len()
        );
        for key in &failed {
            eprintln!("  {key}");
        }
    }
    failed.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{advance_campaign, run_campaign};
    use crate::spec::Selector;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into()]),
            benchmarks: Selector::Subset(vec!["nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 3060".into()]),
            budget: 10,
            repetitions: 1,
            ..ExperimentSpec::new("files-unit")
        }
    }

    fn temp_out(name: &str) -> String {
        let dir = std::env::temp_dir().join("bat-harness-files-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn run_write_resume_round_trip() {
        let out = temp_out("artifact.json");

        // Missing artifact + resume degenerates to a full run.
        let first =
            run_spec_to_file(&spec(), Some(&out), true, false, &Endpoint::InProcess).unwrap();
        assert!(first.complete);
        assert_eq!(first.executed, 1);
        // Resuming from the written artifact reuses everything.
        let second =
            run_spec_to_file(&spec(), Some(&out), true, false, &Endpoint::InProcess).unwrap();
        assert_eq!(second.reused, 1);
        assert_eq!(second.result, first.result);
        assert_eq!(load_result_file(&out).unwrap(), first.result);

        // A corrupt artifact is an error, not a silent re-run.
        std::fs::write(&out, "{ not json").unwrap();
        assert!(run_spec_to_file(&spec(), Some(&out), true, false, &Endpoint::InProcess).is_err());
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn checkpointed_batches_reproduce_the_single_shot_artifact() {
        // More trials than one checkpoint batch (2 tuners × 2 benchmarks
        // × 10 reps = 40 on a tiny budget) forces at least one mid-run
        // artifact write before completion; the assert pins the relation
        // so a larger CHECKPOINT_TRIALS cannot make this vacuous.
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into(), "greedy-ils".into()]),
            benchmarks: Selector::Subset(vec!["nbody".into(), "gemm".into()]),
            repetitions: 10,
            budget: 5,
            ..spec()
        };
        assert!(spec.compile().unwrap().len() > CHECKPOINT_TRIALS);
        let out = temp_out("checkpointed.json");
        let batched =
            run_spec_to_file(&spec, Some(&out), false, false, &Endpoint::InProcess).unwrap();
        let single = run_campaign(&spec).unwrap();
        assert!(batched.complete);
        assert_eq!(batched.executed, single.result.trials.len());
        assert_eq!(batched.result.to_json(), single.result.to_json());
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn partial_artifact_resumes_to_the_full_result() {
        let spec = ExperimentSpec {
            repetitions: 6,
            ..spec()
        };
        // Simulate an interrupted checkpoint: only 2 of 6 trials done.
        let partial = advance_campaign(&spec, None, 2).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.result.trials.len(), 2);
        let out = temp_out("partial.json");
        std::fs::write(&out, partial.result.to_json()).unwrap();
        let resumed =
            run_spec_to_file(&spec, Some(&out), true, false, &Endpoint::InProcess).unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.reused, 2);
        assert_eq!(resumed.executed, 4);
        assert_eq!(
            resumed.result.to_json(),
            run_campaign(&spec).unwrap().result.to_json()
        );
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn flag_combinations_are_validated() {
        assert!(run_spec_to_file(&spec(), Some("x"), true, true, &Endpoint::InProcess).is_err());
        assert!(run_spec_to_file(&spec(), None, true, false, &Endpoint::InProcess).is_err());
    }

    #[test]
    fn metadata_document_is_emitted_and_deterministic() {
        let out = temp_out("with-meta.json");
        run_spec_to_file(&spec(), Some(&out), false, false, &Endpoint::InProcess).unwrap();
        let meta1 = std::fs::read_to_string(metadata_path(&out)).unwrap();
        run_spec_to_file(&spec(), Some(&out), false, false, &Endpoint::InProcess).unwrap();
        let meta2 = std::fs::read_to_string(metadata_path(&out)).unwrap();
        assert_eq!(meta1, meta2, "metadata must be byte-deterministic");
        let md = bat_core::t4::T4Metadata::from_json(&meta1).unwrap();
        assert_eq!(md.hardware, "RTX 3060");
        assert_eq!(md.environment["campaign"], "files-unit");
        assert!(md.environment["objective"].contains("time"));
        assert_eq!(md.environment["spec_schema"], crate::spec::SPEC_SCHEMA);
        std::fs::remove_file(&out).unwrap();
        std::fs::remove_file(metadata_path(&out)).unwrap();
    }

    #[test]
    fn merge_files_round_trips_shard_artifacts() {
        use crate::spec::ShardSpec;
        let base = ExperimentSpec {
            repetitions: 4,
            ..spec()
        };
        let full = run_campaign(&base).unwrap();
        let mut inputs = Vec::new();
        for index in 0..2 {
            let shard_spec = ExperimentSpec {
                shard: Some(ShardSpec { index, count: 2 }),
                ..base.clone()
            };
            let out = temp_out(&format!("shard-{index}.json"));
            run_spec_to_file(&shard_spec, Some(&out), false, false, &Endpoint::InProcess).unwrap();
            inputs.push(out);
        }
        let merged_out = temp_out("merged.json");
        let run = merge_files(&base, &inputs, &merged_out).unwrap();
        assert_eq!(run.executed, 0);
        assert_eq!(run.reused, 4);
        assert_eq!(
            std::fs::read_to_string(&merged_out).unwrap(),
            full.result.to_json()
        );
        for p in inputs.iter().chain([&merged_out]) {
            std::fs::remove_file(p).unwrap();
            let _ = std::fs::remove_file(metadata_path(p));
        }
    }
}
