//! # bat-harness
//!
//! The suite's declarative experiment-orchestration engine: tuning
//! campaigns are *data*, not code.
//!
//! A campaign is an [`ExperimentSpec`] — tuners × benchmarks ×
//! architectures × budget × repetitions, with `"all"`/subset selectors —
//! that compiles into a flat list of independent trials. Trials execute in
//! parallel over the compat-rayon pool; each one derives its RNG seed
//! purely from `(campaign seed, tuner, benchmark, architecture, rep)`, so
//! the resulting [`CampaignResult`] is **bit-identical** regardless of
//! thread count or completion order, and CI can regression-check a whole
//! campaign with a byte diff. Artifacts embed the producing spec, support
//! resume-from-partial-results, and feed the [`summary`] reducers (final
//! best, convergence AUC, Friedman-style rank matrix) without any
//! re-execution.
//!
//! ```
//! use bat_harness::{run_campaign, ExperimentSpec, Selector};
//!
//! let spec = ExperimentSpec {
//!     tuners: Selector::Subset(vec!["random-search".into()]),
//!     benchmarks: Selector::Subset(vec!["nbody".into()]),
//!     architectures: Selector::Subset(vec!["RTX 3090".into()]),
//!     budget: 20,
//!     repetitions: 2,
//!     ..ExperimentSpec::new("doc")
//! };
//! let run = run_campaign(&spec).unwrap();
//! assert_eq!(run.result.trials.len(), 2);
//! let replay = run_campaign(&spec).unwrap();
//! assert_eq!(run.result.to_json(), replay.result.to_json());
//! ```

#![warn(missing_docs)]

mod cache_integration;
mod campaign;
mod files;
mod result;
mod spec;
pub mod summary;

pub use cache_integration::{cache_prior, fold_run_into_cache, scenario_of, trial_fingerprint};
pub use campaign::{
    advance_campaign, merge_campaigns, resume_campaign, run_campaign, run_campaign_at,
    run_campaign_checkpointed, run_campaign_serial, run_campaign_serial_primed, run_tuning,
    run_tuning_with_energy, run_tuning_with_faults, tuner_by_name, CampaignRun, Endpoint,
    EvalStats, HarnessError,
};
pub use files::{
    campaign_metadata, load_result_file, load_spec_file, merge_files, metadata_path, report_run,
    run_spec_to_file, run_spec_to_file_cached,
};
pub use result::{CampaignResult, CurvePoint, TrialRecord, RESULT_SCHEMA};
pub use spec::{
    known_architectures, known_benchmarks, known_moo_tuners, known_tuners, CompiledTrial,
    ExperimentSpec, FaultSpec, ObjectiveMode, ObjectiveSpec, ProtocolSpec, RecordLevel, SeedPolicy,
    Selector, ShardSpec, SpecError, TrialKey, SPEC_SCHEMA,
};
pub use summary::{convergence_auc, render_table, CampaignSummary, CellSummary};
