//! `bat-harness` — run declarative tuning campaigns and summarize their
//! artifacts.
//!
//! The binary is a thin shell over [`bat_harness`]: it reads a spec JSON,
//! executes (or resumes) the campaign, writes the deterministic result
//! artifact, and prints the summary tables. CI runs it twice and byte-
//! diffs the outputs.

use std::process::ExitCode;

use bat_harness::{
    convergence_auc, load_result_file, load_spec_file, merge_files, render_table, report_run,
    run_campaign, run_spec_to_file_cached, CampaignSummary, Endpoint, ExperimentSpec, ShardSpec,
};

const HELP: &str = "\
bat-harness — declarative experiment orchestration for BAT-rs

USAGE:
    bat-harness run --spec FILE [--out FILE] [--resume] [--serial] [--strict] [--quiet] [--shard I/N] [--batch N] [--fault-rate R] [--threads N] [--connect EP] [--trace FILE] [--cache FILE]
    bat-harness merge --spec FILE --inputs A,B,... --out FILE [--quiet]
    bat-harness summary --input FILE
    bat-harness sweep-batch --spec FILE [--batches 1,4,16,64] [--threads N]
    bat-harness trials --spec FILE

COMMANDS:
    run        execute a campaign spec; writes the CampaignResult JSON to
               --out (or stdout, plus a <out>.meta.json T4 metadata
               document) and prints the summary tables
    merge      merge shard artifacts into the complete campaign artifact
               (missing trials execute); byte-identical to the unsharded run
    summary    print the summary tables of an existing result artifact
    sweep-batch
               run the spec once per batch size and print the batch-vs-
               quality view: throughput, mean final best and mean
               convergence AUC per batch size (see specs/batch-sweep.json)
    trials     list the compiled trials of a spec without running them

OPTIONS:
    --spec FILE    campaign spec (see specs/ for examples)
    --out FILE     where to write the result JSON (default: stdout)
    --resume       reuse trials already present in --out, run only the rest
    --serial       run trials sequentially (determinism oracle; the output
                   must be byte-identical to the parallel run)
    --shard I/N    override the spec's shard block: run only every N-th
                   compiled trial, starting at I (0-based)
    --batch N      override the spec's protocol.batch (measurement
                   parallelism of the ask/tell protocol; 1 = the classic
                   serial protocol, stored canonically as absent)
    --fault-rate R override the spec's faults.transient_rate (0 disables;
                   an otherwise-default fault block collapses to absent, so
                   `--fault-rate 0` reproduces the fault-free artifact
                   byte for byte)
    --threads N    worker-pool size for parallel evaluation (precedence:
                   --threads, then the BAT_THREADS environment variable,
                   then available_parallelism; artifacts are byte-identical
                   at every setting)
    --connect EP   evaluation endpoint: in-process (default), loopback
                   (an in-process daemon behind the real bat/wire/v1
                   codec), or HOST:PORT of a running `bat serve` daemon;
                   artifacts are byte-identical across endpoints
    --trace FILE   write a bat/trace/v1 JSONL span trace of the run
                   (campaign → trial → step → batch → decode/measure);
                   telemetry only — the artifact stays byte-identical
    --cache FILE   persistent bat/cache/v1 best-config store: trials whose
                   exact fingerprint is cached replay verbatim (the warm
                   artifact is byte-identical to the cold one), misses tune
                   and fold back into the cache atomically
    --inputs A,B   comma-separated shard artifacts to merge
    --strict       exit non-zero if any trial found no valid configuration
    --quiet        suppress the summary tables and throughput line
";

fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn load_spec(args: &[String]) -> Result<ExperimentSpec, String> {
    let path = opt(args, "--spec").ok_or("--spec FILE is required")?;
    load_spec_file(&path).map_err(|e| e.to_string())
}

/// Parse an `I/N` shard selector.
fn parse_shard(s: &str) -> Result<ShardSpec, String> {
    let (index, count) = s
        .split_once('/')
        .ok_or_else(|| format!("--shard expects I/N, got {s:?}"))?;
    let index = index
        .parse()
        .map_err(|_| format!("bad shard index {index:?}"))?;
    let count = count
        .parse()
        .map_err(|_| format!("bad shard count {count:?}"))?;
    Ok(ShardSpec { index, count })
}

/// Apply a `--threads N` option, if present, before any parallel work runs.
fn apply_threads(args: &[String]) -> Result<(), String> {
    if let Some(threads) = opt(args, "--threads") {
        let n: usize = threads
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--threads expects a positive integer, got {threads:?}"))?;
        if !rayon::set_global_threads(n) {
            return Err("--threads came too late: the worker pool already started".into());
        }
    }
    Ok(())
}

/// Apply a `--trace FILE` option: install the process-wide trace sink
/// before any spans open. Telemetry only — never touches the artifact.
fn apply_trace(args: &[String]) -> Result<(), String> {
    if let Some(path) = opt(args, "--trace") {
        bat_obs::trace::install(std::path::Path::new(&path))
            .map_err(|e| format!("--trace {path}: {e}"))?;
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    apply_threads(args)?;
    apply_trace(args)?;
    let mut spec = load_spec(args)?;
    if let Some(shard) = opt(args, "--shard") {
        spec.shard = Some(parse_shard(&shard)?);
    }
    if let Some(batch) = opt(args, "--batch") {
        let batch: u32 = batch
            .parse()
            .map_err(|_| format!("bad --batch value {batch:?}"))?;
        spec.protocol.set_batch(batch);
    }
    if let Some(rate) = opt(args, "--fault-rate") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("bad --fault-rate value {rate:?}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--fault-rate must be in [0, 1], got {rate}"));
        }
        spec.set_fault_rate(rate);
    }
    let out = opt(args, "--out");
    let quiet = flag(args, "--quiet");
    let endpoint = match opt(args, "--connect") {
        Some(ep) => Endpoint::parse(&ep).map_err(|e| e.to_string())?,
        None => Endpoint::InProcess,
    };

    let cache = opt(args, "--cache");

    let run = run_spec_to_file_cached(
        &spec,
        out.as_deref(),
        flag(args, "--resume"),
        flag(args, "--serial"),
        &endpoint,
        cache.as_deref(),
    )
    .map_err(|e| e.to_string())?;
    if out.is_none() {
        println!("{}", run.result.to_json());
    }

    let failed = report_run(&run, quiet);
    bat_obs::trace::flush();
    if failed > 0 && flag(args, "--strict") {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_merge(args: &[String]) -> Result<ExitCode, String> {
    let spec = load_spec(args)?;
    let inputs: Vec<String> = opt(args, "--inputs")
        .ok_or("--inputs A,B,... is required")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if inputs.is_empty() {
        return Err("--inputs names no artifacts".into());
    }
    let out = opt(args, "--out").ok_or("--out FILE is required")?;
    let run = merge_files(&spec, &inputs, &out).map_err(|e| e.to_string())?;
    report_run(&run, flag(args, "--quiet"));
    eprintln!("merged {} artifacts into {out}", inputs.len());
    Ok(ExitCode::SUCCESS)
}

/// `sweep-batch` — the batch-vs-quality view: run the same campaign at
/// several `protocol.batch` values and tabulate, per batch size, the
/// measurement throughput against the search quality it buys (mean final
/// best and mean convergence AUC against a sweep-wide per-cell reference).
/// Quality at `batch = 1` is the serial protocol's; larger batches trade
/// staler search state for batched measurement, and this table is how that
/// trade is audited.
fn cmd_sweep_batch(args: &[String]) -> Result<ExitCode, String> {
    apply_threads(args)?;
    let base = load_spec(args)?;
    let batches: Vec<u32> = opt(args, "--batches")
        .unwrap_or_else(|| "1,4,16,64".into())
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .ok()
                .filter(|&b| b >= 1)
                .ok_or_else(|| format!("bad --batches entry {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    if batches.is_empty() {
        return Err("--batches names no sizes".into());
    }

    let mut runs = Vec::new();
    for &batch in &batches {
        let mut spec = base.clone();
        spec.protocol.set_batch(batch);
        let run = run_campaign(&spec).map_err(|e| e.to_string())?;
        eprintln!(
            "batch {batch:4}: {} trials in {:.2}s",
            run.executed,
            run.wall.as_secs_f64()
        );
        runs.push((batch, run));
    }

    // Sweep-wide per-cell reference: the best objective any batch size
    // found in a benchmark × architecture cell, so AUC is comparable
    // across batch sizes.
    let mut cell_best: std::collections::BTreeMap<(String, String), f64> =
        std::collections::BTreeMap::new();
    for (_, run) in &runs {
        for t in &run.result.trials {
            if let Some(ms) = t.best_ms {
                let key = (t.benchmark.clone(), t.architecture.clone());
                let slot = cell_best.entry(key).or_insert(f64::INFINITY);
                *slot = slot.min(ms);
            }
        }
    }

    let fmt_opt = |v: Option<f64>, digits: usize| match v {
        Some(x) => format!("{x:.digits$}"),
        None => "—".into(),
    };
    let mean = |xs: &[f64]| (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(batch, run)| {
            let bests: Vec<f64> = run.result.trials.iter().filter_map(|t| t.best_ms).collect();
            let aucs: Vec<f64> = run
                .result
                .trials
                .iter()
                .filter_map(|t| {
                    let key = (t.benchmark.clone(), t.architecture.clone());
                    convergence_auc(t, *cell_best.get(&key)?)
                })
                .collect();
            let rate = run.executed_evals as f64 / run.wall.as_secs_f64().max(1e-9);
            vec![
                batch.to_string(),
                format!("{:.1}", rate / 1e3),
                fmt_opt(mean(&bests), 4),
                fmt_opt(mean(&aucs), 4),
                format!("{}/{}", bests.len(), run.result.trials.len()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["batch", "evals/s (k)", "mean best ms", "mean AUC", "solved"],
            &rows
        )
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_summary(args: &[String]) -> Result<ExitCode, String> {
    let path = opt(args, "--input").ok_or("--input FILE is required")?;
    let result = load_result_file(&path).map_err(|e| e.to_string())?;
    print!("{}", CampaignSummary::from_result(&result).render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_trials(args: &[String]) -> Result<ExitCode, String> {
    let spec = load_spec(args)?;
    let trials = spec.compile().map_err(|e| e.to_string())?;
    let rows: Vec<Vec<String>> = trials
        .iter()
        .map(|t| {
            vec![
                t.key.benchmark.clone(),
                t.key.architecture.clone(),
                t.key.tuner.clone(),
                t.key.rep.to_string(),
                t.seed.to_string(),
                t.budget.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        bat_harness::render_table(
            &[
                "benchmark",
                "architecture",
                "tuner",
                "rep",
                "seed",
                "budget"
            ],
            &rows
        )
    );
    println!("{} trials", trials.len());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("sweep-batch") => cmd_sweep_batch(&args[1..]),
        Some("trials") => cmd_trials(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprint!("{HELP}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bat-harness: {msg}");
            ExitCode::from(2)
        }
    }
}
