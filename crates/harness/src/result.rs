//! Campaign result artifacts: what a campaign run serializes.
//!
//! A [`CampaignResult`] embeds the [`ExperimentSpec`] that produced it plus
//! one [`TrialRecord`] per compiled trial, in canonical spec order. The
//! document is a pure function of the spec — no timestamps, wall times or
//! host details — so two runs of the same spec produce byte-identical JSON
//! regardless of thread count, and CI can regression-check campaigns with
//! a plain `diff`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use bat_core::t4::T4Results;
use bat_core::TuningRun;
use bat_moo::ParetoPoint;

use crate::campaign::EvalStats;
use crate::spec::{ExperimentSpec, TrialKey};

/// Schema identifier every result document carries.
pub const RESULT_SCHEMA: &str = "bat/campaign-result/v1";

/// Serialization skip predicate for the resilience counters: fault-free
/// trials record zeros, which are omitted so their artifacts stay
/// byte-identical to the pre-fault suite.
fn is_zero(n: &u64) -> bool {
    *n == 0
}

/// One point of a best-so-far curve: the best objective after `eval`
/// evaluations. Points are recorded only where the best improves, so the
/// curve is a compact step function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CurvePoint {
    /// 1-based evaluation count at which this best was reached.
    pub eval: u64,
    /// Best objective (ms) after `eval` evaluations.
    pub best_ms: f64,
}

/// The serialized outcome of one trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TrialRecord {
    /// Tuner name.
    pub tuner: String,
    /// Benchmark (kernel) name.
    pub benchmark: String,
    /// Architecture (GPU) name.
    pub architecture: String,
    /// Repetition index.
    pub rep: u32,
    /// Tuner RNG seed the trial ran with.
    pub seed: u64,
    /// Evaluations spent (budget accounting, cached or not).
    pub evals: u64,
    /// Distinct configurations measured (`evals - distinct` = cache hits).
    pub distinct_evals: u64,
    /// Evaluations that produced no objective (restricted + launch-failed,
    /// plus the fault model's transient/timeout/crash outcomes).
    pub failures: u64,
    /// Retries spent on retryable measurement failures (omitted when 0 —
    /// always, on fault-free campaigns).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub retries: u64,
    /// Configurations quarantined after repeated crashes (omitted when 0).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub quarantined: u64,
    /// Final best objective in ms (`None` when every evaluation failed).
    /// Under a scalarized objective this is the blended objective value,
    /// not a wall time.
    pub best_ms: Option<f64>,
    /// Named parameter values of the best configuration (empty when none).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub best_config: BTreeMap<String, i64>,
    /// Measured energy (mJ) of the best configuration, when the campaign's
    /// objective measured energy (absent — and skipped — on time-only
    /// campaigns, keeping their artifacts byte-identical).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub best_energy_mj: Option<f64>,
    /// Best-so-far improvement curve (compact step function).
    pub curve: Vec<CurvePoint>,
    /// The trial's non-dominated (time, energy) front, recorded under the
    /// `pareto` objective.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub front: Option<Vec<ParetoPoint>>,
    /// Full per-evaluation history as a T4 results document
    /// (present when the spec's record level is `full`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub history: Option<T4Results>,
}

impl TrialRecord {
    /// Build a record from a finished [`TuningRun`].
    ///
    /// `param_names` must align with each trial's config vector;
    /// `keep_history` controls whether the full T4 document is embedded.
    pub fn from_run(
        key: &TrialKey,
        seed: u64,
        run: &TuningRun,
        param_names: &[String],
        stats: EvalStats,
        keep_history: bool,
    ) -> TrialRecord {
        let mut curve = Vec::new();
        let mut best: Option<f64> = None;
        let mut best_energy_mj = None;
        let mut best_config = BTreeMap::new();
        for (i, t) in run.trials.iter().enumerate() {
            if let Some(ms) = t.time_ms() {
                if best.is_none_or(|b| ms < b) {
                    best = Some(ms);
                    best_energy_mj = t.outcome.as_ref().ok().and_then(|m| m.energy_mj);
                    curve.push(CurvePoint {
                        eval: i as u64 + 1,
                        best_ms: ms,
                    });
                    best_config = param_names
                        .iter()
                        .cloned()
                        .zip(t.config.iter().copied())
                        .collect();
                }
            }
        }
        TrialRecord {
            tuner: key.tuner.clone(),
            benchmark: key.benchmark.clone(),
            architecture: key.architecture.clone(),
            rep: key.rep,
            seed,
            evals: stats.evals,
            distinct_evals: stats.distinct,
            failures: (run.trials.len() - run.successes()) as u64,
            retries: stats.retries,
            quarantined: stats.quarantined,
            best_ms: best,
            best_config,
            best_energy_mj,
            curve,
            front: None,
            history: keep_history.then(|| T4Results::from_run(run, param_names)),
        }
    }

    /// The trial's front as plain `(time_ms, energy_mj)` pairs, for the
    /// analysis reducers.
    pub fn front_points(&self) -> Option<Vec<(f64, f64)>> {
        self.front
            .as_ref()
            .map(|f| f.iter().map(|p| (p.time_ms, p.energy_mj)).collect())
    }

    /// Whether this record belongs to `key`.
    pub fn matches(&self, key: &TrialKey) -> bool {
        self.tuner == key.tuner
            && self.benchmark == key.benchmark
            && self.architecture == key.architecture
            && self.rep == key.rep
    }

    /// Best objective after `eval` evaluations (clamped to the trial's
    /// length), i.e. the value of the best-so-far step function. `None`
    /// before the first success.
    pub fn best_at(&self, eval: u64) -> Option<f64> {
        let e = eval.min(self.evals);
        self.curve
            .iter()
            .take_while(|p| p.eval <= e)
            .last()
            .map(|p| p.best_ms)
    }

    /// The benchmark × architecture cell this trial belongs to.
    pub fn cell(&self) -> (String, String) {
        (self.benchmark.clone(), self.architecture.clone())
    }

    /// Evaluations spent until the best-so-far first reached `threshold`
    /// (best ≤ threshold), or `None` if the trial never got there — the
    /// evals-to-target metric of the cache-transfer study.
    pub fn evals_to_reach(&self, threshold: f64) -> Option<u64> {
        self.curve
            .iter()
            .find(|p| p.best_ms <= threshold)
            .map(|p| p.eval)
    }
}

/// A complete campaign artifact: spec + one record per trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CampaignResult {
    /// Format version; must equal [`RESULT_SCHEMA`].
    pub schema: String,
    /// The spec that produced (and reproduces) this result.
    pub spec: ExperimentSpec,
    /// One record per compiled trial, in canonical spec order.
    pub trials: Vec<TrialRecord>,
}

impl CampaignResult {
    /// Serialize to pretty JSON (deterministic: field order is fixed and
    /// no volatile data is recorded).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign result serializes")
    }

    /// Parse a result document (unknown fields are rejected).
    pub fn from_json(s: &str) -> Result<CampaignResult, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The record for `key`, if present.
    pub fn find(&self, key: &TrialKey) -> Option<&TrialRecord> {
        self.trials.iter().find(|t| t.matches(key))
    }

    /// Number of trials whose every evaluation failed.
    pub fn failed_trials(&self) -> usize {
        self.trials.iter().filter(|t| t.best_ms.is_none()).count()
    }

    /// Human-readable `(tuner, benchmark, architecture, rep)` keys of the
    /// trials counted by [`failed_trials`](Self::failed_trials), in
    /// artifact order — what `--strict` front-ends print so a gate failure
    /// is actionable from the log alone.
    pub fn failed_trial_keys(&self) -> Vec<String> {
        self.trials
            .iter()
            .filter(|t| t.best_ms.is_none())
            .map(|t| {
                format!(
                    "({}, {}, {}, rep {})",
                    t.tuner, t.benchmark, t.architecture, t.rep
                )
            })
            .collect()
    }

    /// Total evaluations spent across all trials.
    pub fn total_evals(&self) -> u64 {
        self.trials.iter().map(|t| t.evals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{EvalFailure, Measurement, Trial};

    fn key() -> TrialKey {
        TrialKey {
            tuner: "random-search".into(),
            benchmark: "toy".into(),
            architecture: "SIM".into(),
            rep: 0,
        }
    }

    fn run() -> (TuningRun, Vec<String>) {
        let mut run = TuningRun::new("toy", "SIM", "random-search", 7);
        for (i, t) in [None, Some(5.0), Some(3.0), Some(4.0), Some(2.0)]
            .iter()
            .enumerate()
        {
            run.push(Trial {
                eval: i as u64 + 1,
                index: i as u64,
                config: vec![i as i64, 2 * i as i64],
                outcome: match t {
                    Some(v) => Ok(Measurement::from_samples(vec![*v])),
                    None => Err(EvalFailure::Restricted),
                },
            });
        }
        (run, vec!["a".into(), "b".into()])
    }

    fn stats() -> EvalStats {
        EvalStats {
            evals: 5,
            distinct: 5,
            retries: 0,
            quarantined: 0,
        }
    }

    #[test]
    fn record_captures_curve_and_best() {
        let (run, names) = run();
        let r = TrialRecord::from_run(&key(), 7, &run, &names, stats(), true);
        assert_eq!(r.failures, 1);
        assert_eq!(r.best_ms, Some(2.0));
        assert_eq!(r.best_config["a"], 4);
        // Improvements at evals 2, 3, 5 — eval 4 (worse) records nothing.
        let evals: Vec<u64> = r.curve.iter().map(|p| p.eval).collect();
        assert_eq!(evals, vec![2, 3, 5]);
        assert_eq!(r.best_at(1), None);
        assert_eq!(r.best_at(2), Some(5.0));
        assert_eq!(r.best_at(4), Some(3.0));
        assert_eq!(r.best_at(999), Some(2.0)); // clamped to trial length
        assert_eq!(r.history.as_ref().unwrap().results.len(), 5);
    }

    #[test]
    fn time_only_records_skip_the_moo_fields() {
        let (run, names) = run();
        let r = TrialRecord::from_run(&key(), 7, &run, &names, stats(), false);
        assert_eq!(r.best_energy_mj, None);
        assert_eq!(r.front, None);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(!json.contains("energy") && !json.contains("front"));
    }

    #[test]
    fn records_with_fronts_round_trip() {
        let (run, names) = run();
        let mut r = TrialRecord::from_run(&key(), 7, &run, &names, stats(), false);
        r.front = Some(vec![
            bat_moo::ParetoPoint {
                index: 2,
                time_ms: 3.0,
                energy_mj: 40.0,
            },
            bat_moo::ParetoPoint {
                index: 4,
                time_ms: 4.0,
                energy_mj: 30.0,
            },
        ]);
        r.best_energy_mj = Some(40.0);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: TrialRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.front_points().unwrap(), vec![(3.0, 40.0), (4.0, 30.0)]);
    }

    #[test]
    fn resilience_counters_skip_when_zero_and_round_trip() {
        let (run, names) = run();
        // Fault-free: zeros are omitted entirely (byte-stable artifacts).
        let r = TrialRecord::from_run(&key(), 7, &run, &names, stats(), false);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(!json.contains("retries") && !json.contains("quarantined"));
        let back: TrialRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Under faults: counters serialize and round-trip.
        let chaotic = TrialRecord::from_run(
            &key(),
            7,
            &run,
            &names,
            EvalStats {
                retries: 3,
                quarantined: 1,
                ..stats()
            },
            false,
        );
        let json = serde_json::to_string_pretty(&chaotic).unwrap();
        assert!(json.contains("\"retries\": 3") && json.contains("\"quarantined\": 1"));
        let back: TrialRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chaotic);
    }

    #[test]
    fn failed_trial_keys_name_the_empty_trials() {
        let (tuning_run, names) = run();
        let ok = TrialRecord::from_run(&key(), 7, &tuning_run, &names, stats(), false);
        let mut dead = ok.clone();
        dead.tuner = "greedy-ils".into();
        dead.rep = 2;
        dead.best_ms = None;
        let result = CampaignResult {
            schema: RESULT_SCHEMA.to_string(),
            spec: ExperimentSpec::new("failed-keys-unit"),
            trials: vec![ok, dead],
        };
        assert_eq!(result.failed_trials(), 1);
        assert_eq!(
            result.failed_trial_keys(),
            vec!["(greedy-ils, toy, SIM, rep 2)".to_string()]
        );
    }

    #[test]
    fn curve_record_level_drops_history() {
        let (run, names) = run();
        let r = TrialRecord::from_run(&key(), 7, &run, &names, stats(), false);
        assert!(r.history.is_none());
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(!json.contains("\"history\""));
        let back: TrialRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
