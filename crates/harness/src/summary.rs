//! Summary reducers over campaign artifacts.
//!
//! Everything here is computed from a serialized [`CampaignResult`] alone —
//! no re-execution — so the paper-style aggregations (final best per cell,
//! convergence AUC, Friedman-style tuner rank matrix, Tables IV/VI in
//! spirit) can be regenerated offline from an archived artifact.

use bat_analysis::{evals_to_target, front_summary, hypervolume_reference, merged_front};
use bat_core::friedman_mean_ranks;
use bat_moo::ParetoPoint;

use crate::result::{CampaignResult, TrialRecord};

/// One benchmark × architecture cell's per-tuner aggregates.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture name.
    pub architecture: String,
    /// Tuner names, in campaign order.
    pub tuners: Vec<String>,
    /// Median over repetitions of each tuner's final best (ms).
    pub median_best_ms: Vec<Option<f64>>,
    /// Minimum over repetitions of each tuner's final best (ms).
    pub min_best_ms: Vec<Option<f64>>,
    /// Mean normalized convergence AUC per tuner (higher = faster
    /// convergence to better configurations; see [`convergence_auc`]).
    pub auc: Vec<Option<f64>>,
    /// Friedman-style mean rank per tuner: within every repetition the
    /// tuners are ranked by final best (failures last, ties share the
    /// average rank), then ranks are averaged over repetitions.
    pub mean_rank: Vec<f64>,
    /// Best objective observed anywhere in the cell (the reference for
    /// relative performance and AUC).
    pub cell_best_ms: Option<f64>,
    /// Mean dominated hypervolume per tuner against the cell-wide reference
    /// point (multi-objective campaigns only; `None` when a tuner recorded
    /// no front).
    pub hypervolume: Vec<Option<f64>>,
    /// Mean Pareto-front size per tuner (multi-objective campaigns only).
    pub front_size: Vec<Option<f64>>,
    /// The cell's best-known front: the [`bat_analysis::merged_front`]
    /// archive union of every recorded front across tuners and
    /// repetitions — the baseline per-tuner fronts are judged against.
    /// Empty on single-objective campaigns.
    pub best_known_front: Vec<ParetoPoint>,
    /// Hypervolume of the best-known front against the cell reference.
    pub best_known_hypervolume: Option<f64>,
    /// Mean retries charged per repetition (fault-injected campaigns;
    /// all zero otherwise).
    pub mean_retries: Vec<Option<f64>>,
    /// Total configurations quarantined across repetitions.
    pub quarantined: Vec<u64>,
    /// Mean evaluations to first reach within 5% of the cell's best
    /// objective (over the repetitions that got there; the companion
    /// `target_hits` counts how many did).
    pub evals_to_target: Vec<Option<f64>>,
    /// Repetitions that reached the 5% target, per tuner.
    pub target_hits: Vec<u64>,
}

/// Relative slack on the cell-best objective that counts as "reached the
/// target" for [`CellSummary::evals_to_target`].
pub const TARGET_SLACK: f64 = 1.05;

impl CellSummary {
    /// The tuner with the lowest mean rank (ties: first in campaign order).
    pub fn winner(&self) -> Option<&str> {
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in self.mean_rank.iter().enumerate() {
            if best.is_none_or(|(_, b)| *r < b) {
                best = Some((i, *r));
            }
        }
        best.map(|(i, _)| self.tuners[i].as_str())
    }
}

/// Campaign-wide aggregates: per-cell summaries plus the cross-cell rank
/// matrix.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Campaign name (from the spec).
    pub name: String,
    /// Per-cell summaries, in campaign order.
    pub cells: Vec<CellSummary>,
    /// Tuner names, in campaign order (identical across cells).
    pub tuners: Vec<String>,
    /// `rank_matrix[t][c]` = tuner `t`'s mean rank in cell `c`.
    pub rank_matrix: Vec<Vec<f64>>,
    /// Overall mean rank per tuner (mean over cells; 1 = best).
    pub overall_rank: Vec<f64>,
    /// Whether the producing spec carried a fault block — gates the
    /// resilience table in [`CampaignSummary::render`].
    pub faulted: bool,
}

/// Normalized convergence AUC of one trial: the mean over evaluations
/// `1..=E` of `t*/b(e)`, where `b(e)` is the best-so-far objective after
/// `e` evaluations and `t*` the cell's best-known objective. Evaluations
/// before the first success contribute 0, so the metric rewards both
/// finding good configurations and finding them early; 1.0 means the very
/// first evaluation already hit the cell optimum.
pub fn convergence_auc(record: &TrialRecord, cell_best_ms: f64) -> Option<f64> {
    if record.evals == 0 || record.curve.is_empty() || cell_best_ms.is_nan() || cell_best_ms <= 0.0
    {
        return None;
    }
    // Walk the step function segment by segment instead of per eval.
    // Saturating spans keep malformed artifacts (curve points past the
    // recorded eval count, hand-edited files) from underflowing.
    let mut total = 0.0;
    for (i, p) in record.curve.iter().enumerate() {
        let until = record
            .curve
            .get(i + 1)
            .map_or(record.evals, |next| next.eval.saturating_sub(1))
            .min(record.evals);
        let span = (until + 1).saturating_sub(p.eval) as f64;
        total += span * (cell_best_ms / p.best_ms);
    }
    Some(total / record.evals as f64)
}

fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    Some(values[values.len() / 2])
}

impl CampaignSummary {
    /// Reduce a campaign artifact.
    pub fn from_result(result: &CampaignResult) -> CampaignSummary {
        // Cells and tuners in first-appearance (campaign) order.
        let mut cells: Vec<(String, String)> = Vec::new();
        let mut tuners: Vec<String> = Vec::new();
        for t in &result.trials {
            if !cells.contains(&t.cell()) {
                cells.push(t.cell());
            }
            if !tuners.contains(&t.tuner) {
                tuners.push(t.tuner.clone());
            }
        }

        let mut summaries = Vec::with_capacity(cells.len());
        for (bench, arch) in &cells {
            let in_cell = |t: &&TrialRecord| &t.benchmark == bench && &t.architecture == arch;
            let cell_best_ms = result
                .trials
                .iter()
                .filter(in_cell)
                .filter_map(|t| t.best_ms)
                .min_by(f64::total_cmp);
            // finals[tuner][rep], indexed by repetition so partial
            // artifacts (a tuner missing rep 0 but holding rep 1) keep
            // repetitions aligned across tuners; absent reps stay None
            // and rank as failures.
            let reps = result
                .trials
                .iter()
                .filter(in_cell)
                .map(|t| t.rep as usize + 1)
                .max()
                .unwrap_or(0);
            let finals: Vec<Vec<Option<f64>>> = tuners
                .iter()
                .map(|name| {
                    let mut by_rep = vec![None; reps];
                    for t in result
                        .trials
                        .iter()
                        .filter(in_cell)
                        .filter(|t| &t.tuner == name)
                    {
                        by_rep[t.rep as usize] = t.best_ms;
                    }
                    by_rep
                })
                .collect();
            let median_best_ms: Vec<Option<f64>> = finals
                .iter()
                .map(|f| median(f.iter().flatten().copied().collect()))
                .collect();
            let min_best_ms: Vec<Option<f64>> = finals
                .iter()
                .map(|f| f.iter().flatten().copied().min_by(f64::total_cmp))
                .collect();
            let auc: Vec<Option<f64>> = tuners
                .iter()
                .map(|name| {
                    let best = cell_best_ms?;
                    let aucs: Vec<f64> = result
                        .trials
                        .iter()
                        .filter(in_cell)
                        .filter(|t| &t.tuner == name)
                        .filter_map(|t| convergence_auc(t, best))
                        .collect();
                    if aucs.is_empty() {
                        None
                    } else {
                        Some(aucs.iter().sum::<f64>() / aucs.len() as f64)
                    }
                })
                .collect();
            // Pareto reducers: all fronts of the cell share one reference
            // point, otherwise per-tuner hypervolumes are incomparable.
            let cell_fronts: Vec<Vec<(f64, f64)>> = result
                .trials
                .iter()
                .filter(in_cell)
                .filter_map(|t| t.front_points())
                .collect();
            let reference = hypervolume_reference(cell_fronts.iter().map(Vec::as_slice));
            let mut hypervolume = vec![None; tuners.len()];
            let mut front_size = vec![None; tuners.len()];
            // Best-known front: archive union of every recorded front in
            // the cell (cross-rep, cross-tuner), bounded by the campaign's
            // front capacity.
            let best_known = merged_front(
                result
                    .trials
                    .iter()
                    .filter(in_cell)
                    .filter_map(|t| t.front.as_deref()),
                result.spec.objective.front_capacity(),
            );
            let best_known_hypervolume = reference
                .filter(|_| !best_known.is_empty())
                .map(|r| best_known.hypervolume(r));
            if let Some(reference) = reference {
                for (ti, name) in tuners.iter().enumerate() {
                    let reduced: Vec<_> = result
                        .trials
                        .iter()
                        .filter(in_cell)
                        .filter(|t| &t.tuner == name)
                        .filter_map(|t| t.front_points())
                        .filter_map(|pts| front_summary(&pts, reference))
                        .collect();
                    if !reduced.is_empty() {
                        let n = reduced.len() as f64;
                        hypervolume[ti] =
                            Some(reduced.iter().map(|s| s.hypervolume).sum::<f64>() / n);
                        front_size[ti] =
                            Some(reduced.iter().map(|s| s.front_size as f64).sum::<f64>() / n);
                    }
                }
            }
            // Resilience reducers: retry pressure, quarantine volume, and
            // the fault tax on convergence (evals to come within
            // TARGET_SLACK of the cell best). Cheap to compute and all-zero
            // without a fault block, so they are reduced unconditionally
            // and only *rendered* for fault-injected campaigns.
            let mut mean_retries = vec![None; tuners.len()];
            let mut quarantined = vec![0u64; tuners.len()];
            let mut evals_target = vec![None; tuners.len()];
            let mut target_hits = vec![0u64; tuners.len()];
            for (ti, name) in tuners.iter().enumerate() {
                let records: Vec<&TrialRecord> = result
                    .trials
                    .iter()
                    .filter(in_cell)
                    .filter(|t| &t.tuner == name)
                    .collect();
                if records.is_empty() {
                    continue;
                }
                let n = records.len() as f64;
                mean_retries[ti] = Some(records.iter().map(|t| t.retries as f64).sum::<f64>() / n);
                quarantined[ti] = records.iter().map(|t| t.quarantined).sum();
                if let Some(best) = cell_best_ms {
                    let reached: Vec<u64> = records
                        .iter()
                        .filter_map(|t| {
                            let curve: Vec<(u64, f64)> =
                                t.curve.iter().map(|p| (p.eval, p.best_ms)).collect();
                            evals_to_target(&curve, best * TARGET_SLACK)
                        })
                        .collect();
                    target_hits[ti] = reached.len() as u64;
                    if !reached.is_empty() {
                        evals_target[ti] = Some(
                            reached.iter().map(|&e| e as f64).sum::<f64>() / reached.len() as f64,
                        );
                    }
                }
            }
            summaries.push(CellSummary {
                benchmark: bench.clone(),
                architecture: arch.clone(),
                tuners: tuners.clone(),
                median_best_ms,
                min_best_ms,
                auc,
                mean_rank: friedman_mean_ranks(&finals),
                cell_best_ms,
                hypervolume,
                front_size,
                best_known_front: best_known.front().to_vec(),
                best_known_hypervolume,
                mean_retries,
                quarantined,
                evals_to_target: evals_target,
                target_hits,
            });
        }

        let rank_matrix: Vec<Vec<f64>> = (0..tuners.len())
            .map(|t| summaries.iter().map(|c| c.mean_rank[t]).collect())
            .collect();
        let overall_rank: Vec<f64> = rank_matrix
            .iter()
            .map(|row| {
                if row.is_empty() {
                    0.0
                } else {
                    row.iter().sum::<f64>() / row.len() as f64
                }
            })
            .collect();

        CampaignSummary {
            name: result.spec.name.clone(),
            cells: summaries,
            tuners,
            rank_matrix,
            overall_rank,
            faulted: result.spec.faults.is_some(),
        }
    }

    /// Render the three summary tables (final best, convergence AUC,
    /// rank matrix) as aligned text.
    pub fn render(&self) -> String {
        let fmt_opt = |v: Option<f64>, d: usize| v.map_or("-".to_string(), |x| format!("{x:.d$}"));
        let mut out = String::new();
        out.push_str(&format!("campaign: {}\n", self.name));

        out.push_str("\nFinal best per cell (median over reps, ms; * = cell winner by rank):\n");
        let mut rows = Vec::new();
        for c in &self.cells {
            let winner = c.winner().unwrap_or("-").to_string();
            for (i, t) in c.tuners.iter().enumerate() {
                rows.push(vec![
                    format!("{}/{}", c.benchmark, c.architecture),
                    format!("{}{}", if *t == winner { "*" } else { " " }, t),
                    fmt_opt(c.median_best_ms[i], 4),
                    fmt_opt(c.min_best_ms[i], 4),
                    fmt_opt(c.auc[i], 3),
                    format!("{:.2}", c.mean_rank[i]),
                ]);
            }
        }
        out.push_str(&render_table(
            &["cell", "tuner", "median ms", "best ms", "AUC", "rank"],
            &rows,
        ));

        // Multi-objective campaigns: front quality per cell × tuner.
        if self
            .cells
            .iter()
            .any(|c| c.hypervolume.iter().any(Option::is_some))
        {
            out.push_str(
                "\nPareto fronts (mean hypervolume vs cell reference / mean front size):\n",
            );
            let mut rows = Vec::new();
            for c in &self.cells {
                for (i, t) in c.tuners.iter().enumerate() {
                    if c.hypervolume[i].is_none() && c.front_size[i].is_none() {
                        continue;
                    }
                    rows.push(vec![
                        format!("{}/{}", c.benchmark, c.architecture),
                        t.clone(),
                        fmt_opt(c.hypervolume[i], 4),
                        fmt_opt(c.front_size[i], 1),
                    ]);
                }
                // Baseline: the cell's merged best-known front (archive
                // union across every tuner and repetition).
                if !c.best_known_front.is_empty() {
                    rows.push(vec![
                        format!("{}/{}", c.benchmark, c.architecture),
                        "(best known)".to_string(),
                        fmt_opt(c.best_known_hypervolume, 4),
                        format!("{:.1}", c.best_known_front.len() as f64),
                    ]);
                }
            }
            out.push_str(&render_table(
                &["cell", "tuner", "hypervolume", "front size"],
                &rows,
            ));
        }

        // Fault-injected campaigns: retry/quarantine pressure and the
        // fault tax on convergence, per cell × tuner.
        if self.faulted {
            out.push_str(&format!(
                "\nResilience (mean retries / quarantined configs / mean evals to within {:.0}% of cell best):\n",
                (TARGET_SLACK - 1.0) * 100.0
            ));
            let mut rows = Vec::new();
            for c in &self.cells {
                for (i, t) in c.tuners.iter().enumerate() {
                    rows.push(vec![
                        format!("{}/{}", c.benchmark, c.architecture),
                        t.clone(),
                        fmt_opt(c.mean_retries[i], 2),
                        format!("{}", c.quarantined[i]),
                        fmt_opt(c.evals_to_target[i], 1),
                        format!("{}", c.target_hits[i]),
                    ]);
                }
            }
            out.push_str(&render_table(
                &[
                    "cell",
                    "tuner",
                    "retries",
                    "quarantined",
                    "evals to target",
                    "hits",
                ],
                &rows,
            ));
        }

        out.push_str("\nTuner rank matrix (rows: tuners, mean rank per cell; 1 = best):\n");
        let mut header: Vec<String> = vec!["tuner".into()];
        header.extend(
            self.cells
                .iter()
                .map(|c| format!("{}/{}", c.benchmark, c.architecture)),
        );
        header.push("overall".into());
        let mut order: Vec<usize> = (0..self.tuners.len()).collect();
        order.sort_by(|&a, &b| self.overall_rank[a].total_cmp(&self.overall_rank[b]));
        let rows: Vec<Vec<String>> = order
            .iter()
            .map(|&t| {
                let mut row = vec![self.tuners[t].clone()];
                row.extend(self.rank_matrix[t].iter().map(|r| format!("{r:.2}")));
                row.push(format!("{:.2}", self.overall_rank[t]));
                row
            })
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        out.push_str(&render_table(&header_refs, &rows));
        out
    }
}

/// Render an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: Vec<String>, out: &mut String| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = width[i]))
            .collect();
        out.push_str(&format!("  {}\n", padded.join("  ")));
    };
    line(header.iter().map(|h| h.to_string()).collect(), &mut out);
    out.push_str(&format!(
        "  {}\n",
        "-".repeat(width.iter().sum::<usize>() + 2 * cols)
    ));
    for r in rows {
        line(r.clone(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::spec::{ExperimentSpec, Selector};

    fn result() -> CampaignResult {
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into(), "greedy-ils".into()]),
            benchmarks: Selector::Subset(vec!["nbody".into(), "gemm".into()]),
            architectures: Selector::Subset(vec!["RTX 3090".into()]),
            budget: 30,
            repetitions: 3,
            ..ExperimentSpec::new("summary-unit")
        };
        run_campaign(&spec).unwrap().result
    }

    #[test]
    fn summary_covers_every_cell_and_tuner() {
        let s = CampaignSummary::from_result(&result());
        assert_eq!(s.cells.len(), 2);
        assert_eq!(s.tuners.len(), 2);
        assert_eq!(s.rank_matrix.len(), 2);
        assert_eq!(s.rank_matrix[0].len(), 2);
        for c in &s.cells {
            assert!(c.cell_best_ms.is_some());
            assert!(c.winner().is_some());
            // Ranks within a cell sum to reps-invariant n(n+1)/2.
            let total: f64 = c.mean_rank.iter().sum();
            assert!((total - 3.0).abs() < 1e-9, "total {total}");
        }
    }

    #[test]
    fn auc_is_in_unit_interval_and_rewards_early_convergence() {
        let r = result();
        let s = CampaignSummary::from_result(&r);
        for c in &s.cells {
            for a in c.auc.iter().flatten() {
                assert!(*a > 0.0 && *a <= 1.0 + 1e-12, "AUC {a}");
            }
        }
        // A trial that finds the cell optimum at eval 1 has AUC 1.
        let t = &r.trials[0];
        let mut perfect = t.clone();
        perfect.curve = vec![crate::result::CurvePoint {
            eval: 1,
            best_ms: 2.0,
        }];
        perfect.evals = 10;
        assert!((convergence_auc(&perfect, 2.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_campaigns_report_hypervolume_and_front_size() {
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec!["nsga2".into(), "random-search".into()]),
            benchmarks: Selector::Subset(vec!["gemm".into()]),
            architectures: Selector::Subset(vec!["RTX 3090".into()]),
            budget: 60,
            repetitions: 2,
            objective: crate::spec::ObjectiveSpec {
                mode: crate::spec::ObjectiveMode::Pareto,
                ..Default::default()
            },
            record: crate::spec::RecordLevel::Curve,
            ..ExperimentSpec::new("pareto-summary-unit")
        };
        let result = run_campaign(&spec).unwrap().result;
        let s = CampaignSummary::from_result(&result);
        let c = &s.cells[0];
        for i in 0..c.tuners.len() {
            let hv = c.hypervolume[i].expect("hypervolume per tuner");
            assert!(hv > 0.0);
            assert!(c.front_size[i].unwrap() >= 1.0);
        }
        // The merged best-known front dominates (or equals) every
        // per-tuner mean hypervolume and is itself a clean front.
        assert!(!c.best_known_front.is_empty());
        for w in c.best_known_front.windows(2) {
            assert!(w[0].time_ms < w[1].time_ms && w[0].energy_mj > w[1].energy_mj);
        }
        let bk = c.best_known_hypervolume.expect("best-known hypervolume");
        for hv in c.hypervolume.iter().flatten() {
            assert!(bk >= *hv - 1e-12, "best-known {bk} < tuner {hv}");
        }
        let rendered = s.render();
        assert!(rendered.contains("hypervolume"));
        assert!(rendered.contains("(best known)"));
        // Reduced purely from the serialized artifact.
        let back = CampaignResult::from_json(&result.to_json()).unwrap();
        assert_eq!(CampaignSummary::from_result(&back).render(), rendered);
    }

    #[test]
    fn resilience_table_renders_only_for_fault_injected_campaigns() {
        let clean = result();
        let clean_summary = CampaignSummary::from_result(&clean);
        assert!(!clean_summary.faulted);
        assert!(!clean_summary.render().contains("Resilience"));

        let mut spec = clean.spec.clone();
        spec.name = "summary-faulted".into();
        spec.faults = Some(crate::spec::FaultSpec {
            transient_rate: 0.2,
            crash_rate: 0.05,
            ..Default::default()
        });
        let faulted = run_campaign(&spec).unwrap().result;
        let s = CampaignSummary::from_result(&faulted);
        assert!(s.faulted);
        let rendered = s.render();
        assert!(rendered.contains("Resilience"));
        assert!(rendered.contains("evals to target"));
        // A 20% transient rate over 30-eval budgets must charge retries
        // somewhere, and the reducers must surface them.
        assert!(s
            .cells
            .iter()
            .any(|c| c.mean_retries.iter().flatten().any(|&r| r > 0.0)));
        // Round-trips through the artifact like every other reducer.
        let back = CampaignResult::from_json(&faulted.to_json()).unwrap();
        assert_eq!(CampaignSummary::from_result(&back).render(), rendered);
    }

    #[test]
    fn summary_is_computable_from_json_alone() {
        let r = result();
        let back = CampaignResult::from_json(&r.to_json()).unwrap();
        let a = CampaignSummary::from_result(&r).render();
        let b = CampaignSummary::from_result(&back).render();
        assert_eq!(a, b);
        assert!(a.contains("random-search"));
        assert!(a.contains("nbody/RTX 3090"));
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        assert!(t.contains("a     bb"));
        assert!(t.contains("long  z"));
    }
}
