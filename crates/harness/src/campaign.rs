//! The campaign executor: compiled trials in, a deterministic artifact out.
//!
//! Every trial is independent — its own problem instance, evaluator,
//! tuner and RNG seed — so trials fan out over the compat-rayon pool and
//! the result is bit-identical no matter how many threads ran them or in
//! what order they finished. Resume works the same way: trials already
//! present in a prior (possibly partial) result are reused verbatim and
//! only the missing ones execute.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use rayon::prelude::*;

use bat_core::{
    Error, EvalBackend, Evaluator, FaultModel, Protocol, RetryPolicy, TuningProblem, TuningRun,
};
use bat_server::wire::OpenSession;
use bat_server::{Daemon, RemoteBackend, ServerConfig};
use bat_tuners::{default_tuners, Tuner};

use crate::result::{CampaignResult, TrialRecord, RESULT_SCHEMA};
use crate::spec::{CompiledTrial, ExperimentSpec, ObjectiveMode, RecordLevel, SpecError};

/// A campaign execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The spec is not runnable.
    Spec(SpecError),
    /// A prior result offered for resume does not belong to this spec.
    ResumeMismatch(String),
    /// A trial could not be executed (unknown tuner/benchmark/arch —
    /// normally caught by validation, but resumable artifacts make this
    /// reachable again).
    Trial(String),
    /// A checkpoint callback (artifact write) failed.
    Io(String),
    /// The evaluation backend failed (remote endpoints only: transport,
    /// wire or session errors from the daemon — the in-process path
    /// cannot produce these).
    Eval(Error),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Spec(e) => e.fmt(f),
            HarnessError::ResumeMismatch(m) => write!(f, "cannot resume: {m}"),
            HarnessError::Trial(m) => write!(f, "trial failed: {m}"),
            HarnessError::Io(m) => write!(f, "checkpoint failed: {m}"),
            HarnessError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<SpecError> for HarnessError {
    fn from(e: SpecError) -> Self {
        HarnessError::Spec(e)
    }
}

impl From<Error> for HarnessError {
    fn from(e: Error) -> Self {
        HarnessError::Eval(e)
    }
}

/// Every harness failure folds into the unified [`bat_core::Error`]
/// hierarchy, so front-ends (the CLI, the daemon) report one error type
/// regardless of which layer failed.
impl From<HarnessError> for Error {
    fn from(e: HarnessError) -> Self {
        match e {
            HarnessError::Spec(s) => Error::spec(s),
            HarnessError::ResumeMismatch(m) => Error::session(format!("cannot resume: {m}")),
            HarnessError::Trial(m) => Error::spec(m),
            HarnessError::Io(m) => Error::io(m),
            HarnessError::Eval(e) => e,
        }
    }
}

/// Where campaign trials evaluate.
///
/// The historical (and default) endpoint is [`Endpoint::InProcess`]: each
/// trial builds its own [`Evaluator`] in this process. The remote
/// endpoints route every trial through the `bat/wire/v1` protocol
/// instead — [`Endpoint::Loopback`] against a daemon living in this
/// process (exercising the full codec without a socket), [`Endpoint::Tcp`]
/// against a `bat serve` daemon elsewhere. Because all three share the
/// evaluator semantics, the produced artifacts are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Endpoint {
    /// Evaluate trials with in-process evaluators (the default).
    #[default]
    InProcess,
    /// Spin up a daemon in this process and talk to it over the real
    /// wire codec via an in-memory stream.
    Loopback,
    /// Connect to a `bat serve` daemon at `host:port` (one session per
    /// trial).
    Tcp(String),
}

impl Endpoint {
    /// Parse a `--connect` argument: `in-process`, `loopback`, or a
    /// `host:port` address.
    pub fn parse(s: &str) -> Result<Endpoint, HarnessError> {
        match s {
            "in-process" => Ok(Endpoint::InProcess),
            "loopback" => Ok(Endpoint::Loopback),
            addr if addr.contains(':') => Ok(Endpoint::Tcp(addr.to_string())),
            other => Err(HarnessError::Eval(Error::spec(format!(
                "bad endpoint {other:?}: expected in-process, loopback, or host:port"
            )))),
        }
    }
}

/// An [`Endpoint`] resolved for one campaign run: the loopback daemon is
/// created once and shared by every trial (sessions are cheap; daemons
/// own the fair scheduler), so concurrent trials contend exactly like
/// concurrent clients of a real server.
enum Target {
    InProcess,
    Loopback(Daemon),
    Tcp(String),
}

impl Target {
    fn of(endpoint: &Endpoint) -> Target {
        match endpoint {
            Endpoint::InProcess => Target::InProcess,
            Endpoint::Loopback => Target::Loopback(Daemon::new(ServerConfig::default())),
            Endpoint::Tcp(addr) => Target::Tcp(addr.clone()),
        }
    }
}

/// A finished campaign plus execution metadata. The metadata (wall time,
/// executed/reused counts) is deliberately *not* part of the serialized
/// [`CampaignResult`], which must stay a pure function of the spec.
#[derive(Debug)]
pub struct CampaignRun {
    /// The deterministic artifact (partial under [`advance_campaign`]'s
    /// trial limit, complete otherwise).
    pub result: CampaignResult,
    /// Whether every compiled trial is present in `result`.
    pub complete: bool,
    /// Trials executed in this run.
    pub executed: usize,
    /// Trials reused from a prior result.
    pub reused: usize,
    /// Evaluations spent by the trials executed in this run (reused trials
    /// excluded).
    pub executed_evals: u64,
    /// Wall time spent executing trials.
    pub wall: Duration,
}

impl CampaignRun {
    /// Executed-trial throughput (trials per second of wall time).
    pub fn trials_per_sec(&self) -> f64 {
        if self.wall.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.executed as f64 / self.wall.as_secs_f64()
    }

    /// Evaluation throughput of the trials executed in this run.
    pub fn evals_per_sec(&self) -> f64 {
        if self.wall.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.executed_evals as f64 / self.wall.as_secs_f64()
    }

    /// One-line execution report (trial counts, wall time, throughput) —
    /// shared by every front-end so the binaries cannot drift.
    pub fn report(&self) -> String {
        format!(
            "{} trials ({} executed, {} reused) in {:.2}s — {:.1} trials/s, {:.0} evals/s",
            self.result.trials.len(),
            self.executed,
            self.reused,
            self.wall.as_secs_f64(),
            self.trials_per_sec(),
            self.evals_per_sec(),
        )
    }
}

/// Look up a suite tuner by name (the default registry plus the
/// multi-objective tuners of `bat-moo`).
pub fn tuner_by_name(name: &str) -> Option<Box<dyn Tuner>> {
    default_tuners()
        .into_iter()
        .chain(bat_moo::moo_tuners())
        .find(|t| t.name() == name)
}

/// Statistics of one tuning run's evaluator — the single source of truth
/// shared with the wire protocol (`SessionStats`) and the summary's
/// resilience tallies. Defined in `bat-core` next to [`EvalBackend`],
/// whose provided `stats()` builds it from the backend's own counters.
pub use bat_core::EvalStats;

fn run_tuning_impl(
    problem: &dyn TuningProblem,
    tuner: &dyn Tuner,
    protocol: Protocol,
    budget: u64,
    seed: u64,
    energy: bool,
    faults: Option<(FaultModel, RetryPolicy)>,
) -> (TuningRun, EvalStats) {
    let mut eval = Evaluator::with_protocol(problem, protocol).with_budget(budget);
    if energy {
        eval = eval.with_energy();
    }
    if let Some((model, policy)) = faults {
        eval = eval.with_faults(model, policy);
    }
    let run = tuner.tune(&eval, seed);
    let stats = EvalBackend::stats(&eval);
    (run, stats)
}

/// Run one tuner on one problem under the harness measurement discipline:
/// a fresh budgeted [`Evaluator`] per run, everything flowing through the
/// shared protocol. This is the single tuning entry point used by the
/// campaign engine and the `bat tune` subcommand alike.
pub fn run_tuning(
    problem: &dyn TuningProblem,
    tuner: &dyn Tuner,
    protocol: Protocol,
    budget: u64,
    seed: u64,
) -> (TuningRun, EvalStats) {
    run_tuning_impl(problem, tuner, protocol, budget, seed, false, None)
}

/// [`run_tuning`] with energy measurement enabled: measurements carry
/// `energy_mj` whenever the problem prices it. The entry point of every
/// non-`time` objective.
pub fn run_tuning_with_energy(
    problem: &dyn TuningProblem,
    tuner: &dyn Tuner,
    protocol: Protocol,
    budget: u64,
    seed: u64,
) -> (TuningRun, EvalStats) {
    run_tuning_impl(problem, tuner, protocol, budget, seed, true, None)
}

/// [`run_tuning`] under a fault model: evaluations flow through the
/// resilient retry/quarantine pipeline and the returned stats carry its
/// counters. `energy` selects the two-objective measurement path.
pub fn run_tuning_with_faults(
    problem: &dyn TuningProblem,
    tuner: &dyn Tuner,
    protocol: Protocol,
    budget: u64,
    seed: u64,
    energy: bool,
    faults: (FaultModel, RetryPolicy),
) -> (TuningRun, EvalStats) {
    run_tuning_impl(problem, tuner, protocol, budget, seed, energy, Some(faults))
}

/// Execute one compiled trial under its objective.
/// The wire-session description of one compiled trial: same protocol,
/// budget, energy flag, scalarization and fault block the in-process
/// evaluator would get, so the daemon's session is semantically the
/// trial's evaluator.
fn open_session(ct: &CompiledTrial) -> OpenSession {
    let mut open = OpenSession::new(&ct.key.benchmark, &ct.key.architecture, ct.protocol);
    open.budget = Some(ct.budget);
    open.energy = ct.objective.mode != ObjectiveMode::Time;
    open.scalarization = ct.objective.scalarization().map(Into::into);
    open.faults = ct.faults.map(|f| (f.model(), f.retry_policy()).into());
    open
}

/// Execute one trial against an open remote session. The shared ask/tell
/// driver runs against the [`RemoteBackend`] exactly as it runs against
/// the in-process evaluator; the Pareto front (like the rest of the
/// record) is derived client-side from the returned run.
fn execute_trial_remote<S: Read + Write>(
    ct: &CompiledTrial,
    backend: RemoteBackend<S>,
) -> Result<TrialRecord, HarnessError> {
    let tuner = tuner_by_name(&ct.key.tuner)
        .ok_or_else(|| HarnessError::Trial(format!("unknown tuner {:?}", ct.key.tuner)))?;
    let keep_history = ct.record == RecordLevel::Full;
    let names = backend.space().names().to_vec();
    let run = tuner.try_tune(&backend, ct.seed)?;
    let stats = EvalBackend::stats(&backend);
    let mut record = TrialRecord::from_run(&ct.key, ct.seed, &run, &names, stats, keep_history);
    if ct.objective.mode == ObjectiveMode::Pareto {
        let front = bat_moo::front_of_run(&run, ct.objective.front_capacity());
        record.front = Some(front.front().to_vec());
    }
    backend.close()?;
    Ok(record)
}

/// [`execute_trial`] wrapped in a `trial` trace span parented (via
/// explicit id — trials run on pool threads, not under the campaign
/// span's thread stack) to the enclosing `campaign` span.
fn execute_trial_traced(
    ct: &CompiledTrial,
    target: &Target,
    parent: u64,
) -> Result<TrialRecord, HarnessError> {
    let mut sp = bat_obs::trace::span_at("trial", parent);
    sp.record_str("tuner", &ct.key.tuner);
    sp.record_str("benchmark", &ct.key.benchmark);
    sp.record_u64("seed", ct.seed);
    let out = execute_trial(ct, target);
    if let Ok(record) = &out {
        sp.record_u64("evals", record.evals);
    }
    out
}

fn execute_trial(ct: &CompiledTrial, target: &Target) -> Result<TrialRecord, HarnessError> {
    match target {
        Target::InProcess => execute_trial_in_process(ct),
        Target::Loopback(daemon) => execute_trial_remote(
            ct,
            RemoteBackend::open(daemon.connect_loopback(), open_session(ct))?,
        ),
        Target::Tcp(addr) => {
            execute_trial_remote(ct, RemoteBackend::connect(addr, open_session(ct))?)
        }
    }
}

fn execute_trial_in_process(ct: &CompiledTrial) -> Result<TrialRecord, HarnessError> {
    let arch = bat_gpusim::GpuArch::by_name(&ct.key.architecture)
        .ok_or_else(|| HarnessError::Trial(format!("unknown GPU {:?}", ct.key.architecture)))?;
    let problem = bat_kernels::benchmark(&ct.key.benchmark, arch)
        .ok_or_else(|| HarnessError::Trial(format!("unknown benchmark {:?}", ct.key.benchmark)))?;
    let tuner = tuner_by_name(&ct.key.tuner)
        .ok_or_else(|| HarnessError::Trial(format!("unknown tuner {:?}", ct.key.tuner)))?;
    let keep_history = ct.record == RecordLevel::Full;
    let names = bat_core::TuningProblem::space(&problem).names().to_vec();
    // A spec-level `faults` block installs the fault model + retry policy
    // on the trial's evaluator; without one, the evaluation path — and
    // therefore every artifact byte — is exactly the pre-fault one.
    let faults = ct.faults.map(|f| (f.model(), f.retry_policy()));

    let record = match ct.objective.mode {
        // The historical single-objective path, untouched: no energy is
        // measured, so the artifact is byte-identical to the pre-moo suite.
        ObjectiveMode::Time => {
            let (run, stats) = run_tuning_impl(
                &problem,
                tuner.as_ref(),
                ct.protocol,
                ct.budget,
                ct.seed,
                false,
                faults,
            );
            TrialRecord::from_run(&ct.key, ct.seed, &run, &names, stats, keep_history)
        }
        // Scalarized modes: every tuner optimizes the blend through the
        // ordinary evaluator interface; `best_ms` holds the blended
        // objective and `best_energy_mj` the underlying energy.
        ObjectiveMode::Energy
        | ObjectiveMode::Edp
        | ObjectiveMode::Scalarized
        | ObjectiveMode::Chebyshev => {
            let scalarization = ct
                .objective
                .scalarization()
                .expect("blended modes always map to a scalarization");
            let blended = bat_moo::Scalarized::new(problem, scalarization);
            let (run, stats) = run_tuning_impl(
                &blended,
                tuner.as_ref(),
                ct.protocol,
                ct.budget,
                ct.seed,
                true,
                faults,
            );
            TrialRecord::from_run(&ct.key, ct.seed, &run, &names, stats, keep_history)
        }
        // Pareto mode: both objectives are measured and the trial records
        // its bounded non-dominated front.
        ObjectiveMode::Pareto => {
            let (run, stats) = run_tuning_impl(
                &problem,
                tuner.as_ref(),
                ct.protocol,
                ct.budget,
                ct.seed,
                true,
                faults,
            );
            let front = bat_moo::front_of_run(&run, ct.objective.front_capacity());
            let mut record =
                TrialRecord::from_run(&ct.key, ct.seed, &run, &names, stats, keep_history);
            record.front = Some(front.front().to_vec());
            record
        }
    };
    Ok(record)
}

/// How trials are scheduled (internal: callers pick via
/// [`run_campaign`] vs [`run_campaign_serial`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Execution {
    /// Fan trials out over the compat-rayon pool (the default).
    Parallel,
    /// Run trials one by one on the calling thread (determinism oracle).
    Serial,
}

/// How strictly a prior artifact's spec must match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PriorMatch {
    /// Byte-for-byte spec equality — the resume contract. Kept strict on
    /// purpose: resuming a *sharded* spec from an unsharded artifact would
    /// let the checkpoint writer overwrite a complete artifact with the
    /// shard's subset, destroying the other shards' trials.
    Exact,
    /// Equality modulo the shard block — the merge contract, where shard
    /// artifacts deliberately recombine into the unsharded campaign
    /// (per-trial seeds never depend on the shard block).
    IgnoreShard,
}

fn validate_prior(
    spec: &ExperimentSpec,
    prior: &CampaignResult,
    matching: PriorMatch,
) -> Result<(), HarnessError> {
    if prior.schema != RESULT_SCHEMA {
        return Err(HarnessError::ResumeMismatch(format!(
            "prior result schema {:?} is not {RESULT_SCHEMA:?}",
            prior.schema
        )));
    }
    let matches = match matching {
        PriorMatch::Exact => prior.spec == *spec,
        PriorMatch::IgnoreShard => prior.spec.same_campaign(spec),
    };
    if !matches {
        return Err(HarnessError::ResumeMismatch(
            "prior result was produced by a different spec".into(),
        ));
    }
    Ok(())
}

type PriorIndex<'a> = std::collections::HashMap<(&'a str, &'a str, &'a str, u32), &'a TrialRecord>;

/// Index prior records by trial key (first prior holding a key wins) — a
/// linear `find()` per compiled trial would make resuming large campaigns
/// quadratic.
fn index_prior<'a>(priors: &[&'a CampaignResult]) -> PriorIndex<'a> {
    let mut index = PriorIndex::new();
    for p in priors {
        for r in &p.trials {
            index
                .entry((
                    r.tuner.as_str(),
                    r.benchmark.as_str(),
                    r.architecture.as_str(),
                    r.rep,
                ))
                .or_insert(r);
        }
    }
    index
}

/// The prior's record for `ct`, if its key and seed match.
fn reuse_record(index: &PriorIndex<'_>, ct: &CompiledTrial) -> Option<TrialRecord> {
    index
        .get(&(
            ct.key.tuner.as_str(),
            ct.key.benchmark.as_str(),
            ct.key.architecture.as_str(),
            ct.key.rep,
        ))
        .filter(|r| r.seed == ct.seed)
        .map(|r| (*r).clone())
}

fn run_impl(
    spec: &ExperimentSpec,
    priors: &[&CampaignResult],
    matching: PriorMatch,
    execution: Execution,
    limit: Option<usize>,
    endpoint: &Endpoint,
) -> Result<CampaignRun, HarnessError> {
    let target = Target::of(endpoint);
    let compiled = spec.compile()?;
    for p in priors {
        validate_prior(spec, p, matching)?;
    }

    // Slot per compiled trial: resume fills what it can, execution fills
    // the rest. Output order is the canonical compiled order either way.
    let prior_index = index_prior(priors);
    let mut slots: Vec<Option<TrialRecord>> = compiled
        .iter()
        .map(|ct| reuse_record(&prior_index, ct))
        .collect();
    let mut todo: Vec<(usize, &CompiledTrial)> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| (i, &compiled[i]))
        .collect();
    let reused = compiled.len() - todo.len();
    if let Some(limit) = limit {
        todo.truncate(limit);
    }
    let executed = todo.len();

    let mut campaign_span = bat_obs::trace::span("campaign");
    campaign_span.record_str("name", &spec.name);
    campaign_span.record_u64("trials", compiled.len() as u64);
    campaign_span.record_u64("reused", reused as u64);
    let parent = campaign_span.id();

    let start = Instant::now();
    let outcomes: Vec<(usize, Result<TrialRecord, HarnessError>)> = match execution {
        Execution::Parallel => todo
            .into_par_iter()
            .map(|(i, ct)| (i, execute_trial_traced(ct, &target, parent)))
            .collect(),
        Execution::Serial => todo
            .into_iter()
            .map(|(i, ct)| (i, execute_trial_traced(ct, &target, parent)))
            .collect(),
    };
    let wall = start.elapsed();
    let mut executed_evals = 0u64;
    for (i, outcome) in outcomes {
        let record = outcome?;
        executed_evals += record.evals;
        slots[i] = Some(record);
    }

    // Under a `limit`, unexecuted slots stay empty and the result is a
    // canonical-order partial artifact (what checkpointed runs write).
    let complete = slots.iter().all(Option::is_some);
    Ok(CampaignRun {
        result: CampaignResult {
            schema: RESULT_SCHEMA.to_string(),
            spec: spec.clone(),
            trials: slots.into_iter().flatten().collect(),
        },
        complete,
        executed,
        reused,
        executed_evals,
        wall,
    })
}

/// Run a campaign, fanning trials out over the compat-rayon pool.
pub fn run_campaign(spec: &ExperimentSpec) -> Result<CampaignRun, HarnessError> {
    run_campaign_at(spec, &Endpoint::InProcess)
}

/// [`run_campaign`] against an explicit evaluation [`Endpoint`]. The
/// artifact is byte-identical across endpoints; only where evaluations
/// execute changes.
pub fn run_campaign_at(
    spec: &ExperimentSpec,
    endpoint: &Endpoint,
) -> Result<CampaignRun, HarnessError> {
    run_impl(
        spec,
        &[],
        PriorMatch::Exact,
        Execution::Parallel,
        None,
        endpoint,
    )
}

/// Run a campaign strictly sequentially (the determinism oracle: its
/// result must be byte-identical to [`run_campaign`]'s).
pub fn run_campaign_serial(spec: &ExperimentSpec) -> Result<CampaignRun, HarnessError> {
    run_campaign_serial_primed(spec, None)
}

/// [`run_campaign_serial`] with an optional prior (e.g. a cache-synthesized
/// one): matching trials are reused verbatim, the rest execute one by one
/// on the calling thread. The oracle property extends to priors — the
/// artifact is byte-identical to the parallel primed run's.
pub fn run_campaign_serial_primed(
    spec: &ExperimentSpec,
    prior: Option<&CampaignResult>,
) -> Result<CampaignRun, HarnessError> {
    let priors: Vec<&CampaignResult> = prior.into_iter().collect();
    run_impl(
        spec,
        &priors,
        PriorMatch::Exact,
        Execution::Serial,
        None,
        &Endpoint::InProcess,
    )
}

/// Run a campaign, reusing every trial of `prior` that matches the spec
/// (same key and derived seed). `prior` may be partial — e.g. an artifact
/// from an interrupted run — and may even contain no usable trials, in
/// which case this degenerates to a full run.
pub fn resume_campaign(
    spec: &ExperimentSpec,
    prior: &CampaignResult,
) -> Result<CampaignRun, HarnessError> {
    run_impl(
        spec,
        &[prior],
        PriorMatch::Exact,
        Execution::Parallel,
        None,
        &Endpoint::InProcess,
    )
}

/// Merge any number of (typically shard) artifacts into `spec`'s campaign:
/// every compiled trial found in a prior is reused (first prior wins),
/// missing trials execute. Merging the complete shards of a spec therefore
/// reproduces the unsharded artifact byte-for-byte without executing
/// anything.
pub fn merge_campaigns(
    spec: &ExperimentSpec,
    priors: &[CampaignResult],
) -> Result<CampaignRun, HarnessError> {
    let refs: Vec<&CampaignResult> = priors.iter().collect();
    run_impl(
        spec,
        &refs,
        PriorMatch::IgnoreShard,
        Execution::Parallel,
        None,
        &Endpoint::InProcess,
    )
}

/// Execute at most `limit` pending trials of `spec`, reusing everything
/// `prior` already holds. The returned run's result is a canonical-order
/// (possibly partial) artifact; `complete` reports whether every compiled
/// trial is now present.
pub fn advance_campaign(
    spec: &ExperimentSpec,
    prior: Option<&CampaignResult>,
    limit: usize,
) -> Result<CampaignRun, HarnessError> {
    let priors: Vec<&CampaignResult> = prior.into_iter().collect();
    run_impl(
        spec,
        &priors,
        PriorMatch::Exact,
        Execution::Parallel,
        Some(limit),
        &Endpoint::InProcess,
    )
}

/// Run a campaign to completion in `batch`-sized steps, invoking
/// `checkpoint` with the canonical-order partial artifact after each step
/// (and once up front when every trial was already reused). Records
/// accumulate in place — unlike chaining [`advance_campaign`] calls,
/// prior trials are cloned once, not once per batch — so checkpointing a
/// large campaign costs only the periodic serialization.
pub fn run_campaign_checkpointed(
    spec: &ExperimentSpec,
    prior: Option<&CampaignResult>,
    batch: usize,
    checkpoint: &mut dyn FnMut(&CampaignResult) -> Result<(), HarnessError>,
    endpoint: &Endpoint,
) -> Result<CampaignRun, HarnessError> {
    assert!(batch > 0, "checkpoint batch must be positive");
    let target = Target::of(endpoint);
    let compiled = spec.compile()?;
    if let Some(p) = prior {
        validate_prior(spec, p, PriorMatch::Exact)?;
    }
    let priors: Vec<&CampaignResult> = prior.into_iter().collect();
    let prior_index = index_prior(&priors);

    // `present[i]` ⇔ compiled trial `i` is already in `result.trials`
    // (which stays sorted in canonical compiled order throughout).
    let mut present = vec![false; compiled.len()];
    let mut trials = Vec::with_capacity(compiled.len());
    for (i, ct) in compiled.iter().enumerate() {
        if let Some(r) = reuse_record(&prior_index, ct) {
            present[i] = true;
            trials.push(r);
        }
    }
    let reused = trials.len();
    let mut result = CampaignResult {
        schema: RESULT_SCHEMA.to_string(),
        spec: spec.clone(),
        trials,
    };
    let todo: Vec<(usize, &CompiledTrial)> = present
        .iter()
        .enumerate()
        .filter(|(_, p)| !**p)
        .map(|(i, _)| (i, &compiled[i]))
        .collect();
    let executed = todo.len();
    if executed == 0 {
        checkpoint(&result)?;
    }

    let mut campaign_span = bat_obs::trace::span("campaign");
    campaign_span.record_str("name", &spec.name);
    campaign_span.record_u64("trials", compiled.len() as u64);
    campaign_span.record_u64("reused", reused as u64);
    let parent = campaign_span.id();

    let start = Instant::now();
    let mut executed_evals = 0u64;
    // Records arrive in strictly ascending compiled index, so a running
    // cursor yields each insert position in O(1) amortized instead of a
    // per-record prefix scan. Inserts only shift when resuming into holes
    // before reused trials; fresh runs append.
    let mut cursor_i = 0usize;
    let mut cursor_pos = 0usize;
    for chunk in todo.chunks(batch) {
        let outcomes: Vec<(usize, Result<TrialRecord, HarnessError>)> = chunk
            .to_vec()
            .into_par_iter()
            .map(|(i, ct)| (i, execute_trial_traced(ct, &target, parent)))
            .collect();
        for (i, outcome) in outcomes {
            let record = outcome?;
            executed_evals += record.evals;
            while cursor_i < i {
                cursor_pos += usize::from(present[cursor_i]);
                cursor_i += 1;
            }
            result.trials.insert(cursor_pos, record);
            present[i] = true;
        }
        checkpoint(&result)?;
    }

    Ok(CampaignRun {
        result,
        complete: true,
        executed,
        reused,
        executed_evals,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ObjectiveSpec, Selector, ShardSpec};

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into(), "simulated-annealing".into()]),
            benchmarks: Selector::Subset(vec!["nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 3090".into()]),
            budget: 25,
            repetitions: 2,
            ..ExperimentSpec::new("campaign-unit")
        }
    }

    #[test]
    fn parallel_and_serial_runs_are_byte_identical() {
        let s = spec();
        let a = run_campaign(&s).unwrap();
        let b = run_campaign_serial(&s).unwrap();
        assert_eq!(a.result.to_json(), b.result.to_json());
        assert_eq!(a.executed, 4);
        assert_eq!(a.reused, 0);
    }

    #[test]
    fn loopback_campaign_is_byte_identical_to_in_process() {
        let s = spec();
        let local = run_campaign(&s).unwrap();
        let loopback = run_campaign_at(&s, &Endpoint::Loopback).unwrap();
        assert_eq!(loopback.result.to_json(), local.result.to_json());
        assert_eq!(loopback.executed, 4);
    }

    #[test]
    fn loopback_matches_in_process_across_objectives_and_faults() {
        // Every objective mode routes through the daemon differently
        // (energy flag, scalarization block, client-side fronts), and a
        // fault block rides along on the wire — all must reproduce the
        // in-process artifact byte for byte.
        for mode in [
            ObjectiveMode::Energy,
            ObjectiveMode::Edp,
            ObjectiveMode::Scalarized,
            ObjectiveMode::Pareto,
        ] {
            let mut s = ExperimentSpec {
                objective: ObjectiveSpec {
                    mode,
                    weight: (mode == ObjectiveMode::Scalarized).then_some(0.3),
                    front_capacity: (mode == ObjectiveMode::Pareto).then_some(8),
                    ..ObjectiveSpec::default()
                },
                record: crate::spec::RecordLevel::Curve,
                budget: 15,
                repetitions: 1,
                ..spec()
            };
            s.set_fault_rate(0.05);
            let local = run_campaign(&s).unwrap();
            let loopback = run_campaign_at(&s, &Endpoint::Loopback).unwrap();
            assert_eq!(
                loopback.result.to_json(),
                local.result.to_json(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn endpoint_parses_the_connect_argument() {
        assert_eq!(Endpoint::parse("in-process").unwrap(), Endpoint::InProcess);
        assert_eq!(Endpoint::parse("loopback").unwrap(), Endpoint::Loopback);
        assert_eq!(
            Endpoint::parse("10.0.0.1:4780").unwrap(),
            Endpoint::Tcp("10.0.0.1:4780".into())
        );
        assert!(Endpoint::parse("carrier-pigeon").is_err());
    }

    #[test]
    fn remote_failures_are_typed_not_stringly() {
        // A daemonless TCP endpoint fails with a transport error wrapped
        // in the unified hierarchy, not a panic or ad-hoc string.
        let s = spec();
        let err = run_campaign_at(&s, &Endpoint::Tcp("127.0.0.1:1".into())).unwrap_err();
        match err {
            HarnessError::Eval(e) => assert!(matches!(e, Error::Transport(_)), "{e:?}"),
            other => panic!("expected an Eval(transport) error, got {other:?}"),
        }
        let core: Error = HarnessError::Trial("unknown tuner".into()).into();
        assert!(matches!(core, Error::Spec(_)));
    }

    #[test]
    fn trials_spend_their_budget_and_record_order_is_canonical() {
        let s = spec();
        let run = run_campaign(&s).unwrap();
        assert_eq!(run.result.trials.len(), 4);
        for t in &run.result.trials {
            assert_eq!(t.evals, 25);
            assert!(t.best_ms.is_some());
            assert!(t.distinct_evals <= t.evals);
        }
        let keys: Vec<(String, u32)> = run
            .result
            .trials
            .iter()
            .map(|t| (t.tuner.clone(), t.rep))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("random-search".into(), 0),
                ("random-search".into(), 1),
                ("simulated-annealing".into(), 0),
                ("simulated-annealing".into(), 1),
            ]
        );
    }

    #[test]
    fn resume_from_partial_result_reproduces_full_result() {
        let s = spec();
        let full = run_campaign(&s).unwrap();
        let mut partial = full.result.clone();
        partial.trials.truncate(1);
        let resumed = resume_campaign(&s, &partial).unwrap();
        assert_eq!(resumed.reused, 1);
        assert_eq!(resumed.executed, 3);
        assert_eq!(resumed.result.to_json(), full.result.to_json());
    }

    #[test]
    fn resume_rejects_foreign_artifacts() {
        let s = spec();
        let full = run_campaign(&s).unwrap();
        let other = ExperimentSpec { seed: 99, ..spec() };
        assert!(matches!(
            resume_campaign(&other, &full.result),
            Err(HarnessError::ResumeMismatch(_))
        ));
        // Resume is shard-strict: a sharded spec must not resume from (and
        // later overwrite) the unsharded artifact — recombination goes
        // through `merge_campaigns` only.
        let sharded = ExperimentSpec {
            shard: Some(ShardSpec { index: 0, count: 2 }),
            ..spec()
        };
        assert!(matches!(
            resume_campaign(&sharded, &full.result),
            Err(HarnessError::ResumeMismatch(_))
        ));
        // Merge accepts the same pairing by design.
        assert!(merge_campaigns(&sharded, std::slice::from_ref(&full.result)).is_ok());
    }

    #[test]
    fn sharded_runs_merge_to_the_unsharded_artifact() {
        let s = spec();
        let full = run_campaign(&s).unwrap();
        let shards: Vec<CampaignResult> = (0..2)
            .map(|index| {
                run_campaign(&ExperimentSpec {
                    shard: Some(ShardSpec { index, count: 2 }),
                    ..spec()
                })
                .unwrap()
                .result
            })
            .collect();
        assert_eq!(shards[0].trials.len() + shards[1].trials.len(), 4);
        let merged = merge_campaigns(&s, &shards).unwrap();
        assert_eq!(merged.executed, 0);
        assert_eq!(merged.reused, 4);
        assert_eq!(merged.result.to_json(), full.result.to_json());
        // A missing shard degenerates to executing the hole.
        let partial = merge_campaigns(&s, &shards[..1]).unwrap();
        assert_eq!(partial.reused, shards[0].trials.len());
        assert_eq!(partial.result.to_json(), full.result.to_json());
    }

    #[test]
    fn pareto_objective_records_clean_fronts() {
        let s = ExperimentSpec {
            tuners: Selector::Subset(vec!["nsga2".into(), "random-search".into()]),
            objective: ObjectiveSpec {
                mode: ObjectiveMode::Pareto,
                front_capacity: Some(8),
                ..ObjectiveSpec::default()
            },
            record: crate::spec::RecordLevel::Curve,
            budget: 60,
            repetitions: 1,
            ..spec()
        };
        let run = run_campaign(&s).unwrap();
        let serial = run_campaign_serial(&s).unwrap();
        assert_eq!(run.result.to_json(), serial.result.to_json());
        for t in &run.result.trials {
            let front = t.front.as_ref().expect("pareto trials record fronts");
            assert!(!front.is_empty() && front.len() <= 8);
            // Mutually non-dominated, sorted by time.
            for w in front.windows(2) {
                assert!(w[0].time_ms < w[1].time_ms);
                assert!(w[0].energy_mj > w[1].energy_mj);
            }
            assert!(t.best_energy_mj.is_some());
        }
    }

    #[test]
    fn scalarized_objectives_measure_energy_and_stay_deterministic() {
        for mode in [
            ObjectiveMode::Energy,
            ObjectiveMode::Edp,
            ObjectiveMode::Scalarized,
        ] {
            let s = ExperimentSpec {
                objective: ObjectiveSpec {
                    mode,
                    weight: (mode == ObjectiveMode::Scalarized).then_some(0.5),
                    ..ObjectiveSpec::default()
                },
                record: crate::spec::RecordLevel::Curve,
                budget: 20,
                ..spec()
            };
            let a = run_campaign(&s).unwrap();
            let b = run_campaign_serial(&s).unwrap();
            assert_eq!(a.result.to_json(), b.result.to_json(), "{mode:?}");
            for t in &a.result.trials {
                assert!(t.best_ms.is_some(), "{mode:?}");
                assert!(t.best_energy_mj.is_some(), "{mode:?}");
            }
        }
    }

    #[test]
    fn objective_modes_select_different_optima() {
        // On gemm × RTX 3090 with a healthy budget, the time-optimal and
        // energy-optimal configurations should differ (that is the whole
        // point of the second objective).
        let base = ExperimentSpec {
            tuners: Selector::Subset(vec!["greedy-ils".into()]),
            benchmarks: Selector::Subset(vec!["gemm".into()]),
            architectures: Selector::Subset(vec!["RTX 3090".into()]),
            budget: 400,
            repetitions: 1,
            record: crate::spec::RecordLevel::Curve,
            ..ExperimentSpec::new("objective-split")
        };
        let time = run_campaign(&base).unwrap();
        let energy = run_campaign(&ExperimentSpec {
            objective: ObjectiveSpec {
                mode: ObjectiveMode::Energy,
                ..ObjectiveSpec::default()
            },
            ..base.clone()
        })
        .unwrap();
        let t_cfg = &time.result.trials[0].best_config;
        let e_cfg = &energy.result.trials[0].best_config;
        assert_ne!(t_cfg, e_cfg, "time and energy optima coincide");
    }

    #[test]
    fn run_tuning_matches_direct_evaluator_use() {
        let arch = bat_gpusim::GpuArch::rtx_3090();
        let p = bat_kernels::benchmark("nbody", arch).unwrap();
        let tuner = tuner_by_name("random-search").unwrap();
        let (run, stats) = run_tuning(&p, tuner.as_ref(), Protocol::default(), 30, 7);
        let eval = Evaluator::with_protocol(&p, Protocol::default()).with_budget(30);
        let direct = bat_tuners::RandomSearch.tune(&eval, 7);
        assert_eq!(run, direct);
        assert_eq!(stats.evals, 30);
    }
}
