//! Campaign specifications: experiments as data.
//!
//! An [`ExperimentSpec`] names *what* to run — tuners × benchmarks ×
//! architectures × budget × repetitions — and is compiled into a flat list
//! of independent [`CompiledTrial`]s. Every derived quantity (most
//! importantly each trial's RNG seed) is a pure function of the spec, so a
//! campaign is reproducible from its JSON alone, bit-for-bit, on any
//! machine and with any thread count.

use serde::{DeError, Deserialize, Serialize, Value};

use bat_core::{Protocol, RetryPolicy};
use bat_gpusim::{mix, FaultModel, GpuArch};
use bat_tuners::default_tuners;

/// Schema identifier every spec document must carry.
pub const SPEC_SCHEMA: &str = "bat/campaign-spec/v1";

/// A dimension selector: every known value, or an explicit subset.
///
/// Serializes as the JSON string `"all"` or an array of names.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// Every value the suite knows (resolved at compile time).
    All,
    /// An explicit, ordered subset of names.
    Subset(Vec<String>),
}

impl Serialize for Selector {
    fn to_value(&self) -> Value {
        match self {
            Selector::All => Value::String("all".to_string()),
            Selector::Subset(names) => {
                Value::Array(names.iter().map(|n| Value::String(n.clone())).collect())
            }
        }
    }
}

impl Deserialize for Selector {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s == "all" => Ok(Selector::All),
            Value::String(_) => Err(DeError::expected("\"all\" or an array", "Selector")),
            Value::Array(items) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| DeError::expected("string element", "Selector"))
                })
                .collect::<Result<Vec<String>, DeError>>()
                .map(Selector::Subset),
            _ => Err(DeError::expected("\"all\" or an array", "Selector")),
        }
    }
}

impl Selector {
    /// Resolve against `universe` (the known names, in canonical order).
    /// Subset entries must be distinct members of the universe or of
    /// `extra` (opt-in names that `All` deliberately does *not* pick up —
    /// the multi-objective tuners live there, so `"all"` keeps resolving
    /// exactly as it did before they existed); `All` keeps the universe's
    /// own order.
    fn resolve(
        &self,
        universe: &[String],
        extra: &[String],
        dimension: &str,
    ) -> Result<Vec<String>, SpecError> {
        match self {
            Selector::All => Ok(universe.to_vec()),
            Selector::Subset(names) => {
                if names.is_empty() {
                    return Err(SpecError(format!("{dimension}: empty selection")));
                }
                let mut seen = Vec::with_capacity(names.len());
                for n in names {
                    if !universe.contains(n) && !extra.contains(n) {
                        return Err(SpecError(if extra.is_empty() {
                            format!("{dimension}: unknown name {n:?} (known: {universe:?})")
                        } else {
                            format!(
                                "{dimension}: unknown name {n:?} (known: {universe:?} + {extra:?})"
                            )
                        }));
                    }
                    if seen.contains(n) {
                        return Err(SpecError(format!("{dimension}: duplicate name {n:?}")));
                    }
                    seen.push(n.clone());
                }
                Ok(seen)
            }
        }
    }
}

/// How per-trial RNG seeds derive from the campaign seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SeedPolicy {
    /// Hash of `(campaign_seed, tuner, benchmark, architecture, rep)` —
    /// statistically independent streams for every cell of the campaign.
    #[default]
    Derived,
    /// `campaign_seed + rep`: every cell's repetition `r` reuses seed
    /// `seed + r`, matching the suite's historical CLI loops
    /// (`for seed in 0..repeats`).
    Sequential,
}

/// Measurement-protocol block of a spec (mirrors [`Protocol`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ProtocolSpec {
    /// Runs per configuration.
    pub runs: u32,
    /// Relative run-to-run noise (σ of the multiplicative factor).
    pub sigma: f64,
    /// Seed folded into the deterministic measurement noise.
    pub noise_seed: u64,
    /// Measurement parallelism of the ask/tell protocol: step-driven
    /// tuners ask up to this many configurations per round. Absent means
    /// `1` — the classic strictly-serial protocol, under which artifacts
    /// are byte-identical to the pre-batch suite (which is why the default
    /// is skipped during serialization).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub batch: Option<u32>,
}

impl Default for ProtocolSpec {
    fn default() -> Self {
        let p = Protocol::default();
        ProtocolSpec {
            runs: p.runs,
            sigma: p.sigma,
            noise_seed: p.seed,
            batch: None,
        }
    }
}

impl ProtocolSpec {
    /// The evaluator protocol this block describes.
    pub fn protocol(&self) -> Protocol {
        Protocol {
            runs: self.runs,
            sigma: self.sigma,
            seed: self.noise_seed,
            batch: self.batch.unwrap_or(1),
        }
    }

    /// The effective measurement parallelism (≥ 1).
    pub fn batch(&self) -> u32 {
        self.batch.unwrap_or(1).max(1)
    }

    /// Set the batch knob in canonical form: `1` is stored as absent, so
    /// a `batch = 1` override keeps specs (and their embedded artifact
    /// copies) byte-identical to the pre-batch suite.
    pub fn set_batch(&mut self, batch: u32) {
        self.batch = (batch != 1).then_some(batch);
    }
}

/// What each trial optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ObjectiveMode {
    /// Runtime in ms (the suite's historical single objective).
    #[default]
    Time,
    /// Energy in mJ.
    Energy,
    /// Energy–delay product (mJ·ms).
    Edp,
    /// Weighted time–energy blend (`weight` on time, see
    /// [`ObjectiveSpec::weight`]).
    Scalarized,
    /// Chebyshev (max-norm) time–energy blend.
    Chebyshev,
    /// Multi-objective: tuners guide on time, both objectives are measured,
    /// and every trial records its non-dominated (time, energy) front.
    Pareto,
}

/// The objective block of a spec.
///
/// Defaults to plain `time`, in which case the block is skipped during
/// serialization and the evaluator never touches the power model — existing
/// time-only specs and their artifacts are byte-identical to the
/// pre-objective suite.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ObjectiveSpec {
    /// Objective mode (default `time`).
    #[serde(default)]
    pub mode: ObjectiveMode,
    /// Weight on the normalized time objective for
    /// `scalarized`/`chebyshev`, in `[0, 1]` (required there, rejected
    /// elsewhere).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub weight: Option<f64>,
    /// Time normalization scale in ms for the blended modes (default 1.0).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub time_scale_ms: Option<f64>,
    /// Energy normalization scale in mJ for the blended modes
    /// (default 1.0).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub energy_scale_mj: Option<f64>,
    /// Capacity of the recorded Pareto front in `pareto` mode
    /// (default 32).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub front_capacity: Option<u32>,
}

impl ObjectiveSpec {
    /// True for the default (plain time) block — the serialization skip
    /// predicate that keeps time-only artifacts byte-identical.
    pub fn is_default(&self) -> bool {
        *self == ObjectiveSpec::default()
    }

    /// The scalarization this block describes, `None` for `time`/`pareto`.
    pub fn scalarization(&self) -> Option<bat_moo::Scalarization> {
        match self.mode {
            ObjectiveMode::Time | ObjectiveMode::Pareto => None,
            ObjectiveMode::Energy => Some(bat_moo::Scalarization::Energy),
            ObjectiveMode::Edp => Some(bat_moo::Scalarization::Edp),
            ObjectiveMode::Scalarized => Some(bat_moo::Scalarization::Weighted {
                time_weight: self.weight.unwrap_or(0.5),
                time_scale_ms: self.time_scale_ms.unwrap_or(1.0),
                energy_scale_mj: self.energy_scale_mj.unwrap_or(1.0),
            }),
            ObjectiveMode::Chebyshev => Some(bat_moo::Scalarization::Chebyshev {
                time_weight: self.weight.unwrap_or(0.5),
                time_scale_ms: self.time_scale_ms.unwrap_or(1.0),
                energy_scale_mj: self.energy_scale_mj.unwrap_or(1.0),
            }),
        }
    }

    /// Bounded front capacity for `pareto` mode.
    pub fn front_capacity(&self) -> usize {
        self.front_capacity.map_or(32, |c| c.max(1) as usize)
    }

    /// One-line human description (T4 metadata, reports).
    pub fn describe(&self) -> String {
        match self.mode {
            ObjectiveMode::Time => "time (ms, minimized)".into(),
            ObjectiveMode::Energy => "energy (mJ, minimized)".into(),
            ObjectiveMode::Edp => "energy-delay product (mJ*ms, minimized)".into(),
            ObjectiveMode::Scalarized => format!(
                "weighted time-energy blend (time weight {})",
                self.weight.unwrap_or(0.5)
            ),
            ObjectiveMode::Chebyshev => format!(
                "chebyshev time-energy blend (time weight {})",
                self.weight.unwrap_or(0.5)
            ),
            ObjectiveMode::Pareto => format!(
                "pareto time x energy (front capacity {})",
                self.front_capacity()
            ),
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        let blended = matches!(
            self.mode,
            ObjectiveMode::Scalarized | ObjectiveMode::Chebyshev
        );
        if blended && self.weight.is_none() {
            return Err(SpecError(format!(
                "objective.weight is required for {:?}",
                self.mode
            )));
        }
        if let Some(w) = self.weight {
            if !blended {
                return Err(SpecError(format!(
                    "objective.weight only applies to scalarized/chebyshev, not {:?}",
                    self.mode
                )));
            }
            if !(0.0..=1.0).contains(&w) {
                return Err(SpecError(format!("objective.weight {w} outside [0, 1]")));
            }
        }
        for (label, v) in [
            ("time_scale_ms", self.time_scale_ms),
            ("energy_scale_mj", self.energy_scale_mj),
        ] {
            if let Some(s) = v {
                if !blended {
                    return Err(SpecError(format!(
                        "objective.{label} only applies to scalarized/chebyshev"
                    )));
                }
                if !(s.is_finite() && s > 0.0) {
                    return Err(SpecError(format!("objective.{label} must be positive")));
                }
            }
        }
        if self.front_capacity.is_some() && self.mode != ObjectiveMode::Pareto {
            return Err(SpecError(
                "objective.front_capacity only applies to pareto mode".into(),
            ));
        }
        if self.front_capacity == Some(0) {
            return Err(SpecError(
                "objective.front_capacity must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Campaign sharding: run only every `count`-th compiled trial, starting
/// at `index`. Shards of the same spec partition the trial list exactly,
/// and their artifacts merge back through the resume path into the
/// byte-identical unsharded artifact (per-trial seeds ignore the shard
/// block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ShardSpec {
    /// This shard's index, `0..count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

/// Fault-injection block of a spec: a declarative [`FaultModel`] plus the
/// [`RetryPolicy`] knobs of the resilient measurement pipeline. An absent
/// block (the default) installs no fault model at all, so the evaluation
/// path — and every artifact byte — is identical to the pre-fault suite.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultSpec {
    /// Probability one measurement attempt fails transiently, additionally
    /// scaled per architecture by a deterministic factor in `[0.5, 1.5)`.
    #[serde(default)]
    pub transient_rate: f64,
    /// Probability one measurement attempt hangs past the deadline.
    #[serde(default)]
    pub timeout_rate: f64,
    /// Probability an individual run sample comes back corrupted.
    #[serde(default)]
    pub outlier_rate: f64,
    /// Fraction of the configuration space that crashes on every attempt.
    #[serde(default)]
    pub crash_rate: f64,
    /// Measurement deadline in ms a timed-out attempt exceeded
    /// (reporting-only; default 1000).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<f64>,
    /// Multiplier applied to corrupted samples (default 10).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub outlier_factor: Option<f64>,
    /// Seed folded into every fault draw (default 0).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault_seed: Option<u64>,
    /// Retries per evaluation after a retryable failure (default 2).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_retries: Option<u32>,
    /// Backoff: the r-th retry charges `1 + backoff_evals · r` evaluations
    /// against the budget (default 0).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub backoff_evals: Option<u32>,
    /// Quarantine a configuration after this many observed crashes
    /// (default 3).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub quarantine_after: Option<u32>,
}

impl FaultSpec {
    /// The fault model this block describes.
    pub fn model(&self) -> FaultModel {
        let d = FaultModel::disabled();
        FaultModel {
            transient_rate: self.transient_rate,
            timeout_rate: self.timeout_rate,
            deadline_ms: self.deadline_ms.unwrap_or(d.deadline_ms),
            outlier_rate: self.outlier_rate,
            outlier_factor: self.outlier_factor.unwrap_or(d.outlier_factor),
            crash_rate: self.crash_rate,
            seed: self.fault_seed.unwrap_or(0),
        }
    }

    /// The retry policy this block describes.
    pub fn retry_policy(&self) -> RetryPolicy {
        let d = RetryPolicy::default();
        RetryPolicy {
            max_retries: self.max_retries.unwrap_or(d.max_retries),
            backoff_evals: self.backoff_evals.unwrap_or(d.backoff_evals),
            quarantine_after: self.quarantine_after.unwrap_or(d.quarantine_after),
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        for (label, r) in [
            ("transient_rate", self.transient_rate),
            ("timeout_rate", self.timeout_rate),
            ("outlier_rate", self.outlier_rate),
            ("crash_rate", self.crash_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(SpecError(format!("faults.{label} {r} outside [0, 1]")));
            }
        }
        for (label, v) in [
            ("deadline_ms", self.deadline_ms),
            ("outlier_factor", self.outlier_factor),
        ] {
            if let Some(x) = v {
                if !(x.is_finite() && x > 0.0) {
                    return Err(SpecError(format!("faults.{label} must be positive")));
                }
            }
        }
        if self.quarantine_after == Some(0) {
            return Err(SpecError(
                "faults.quarantine_after must be positive (omit the block to disable faults)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// How much per-trial detail the result artifact keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RecordLevel {
    /// Full T4 evaluation history per trial plus the compact summary.
    #[default]
    Full,
    /// Only the compact summary (best-so-far curve, counters, best config).
    Curve,
}

/// A declarative tuning campaign: the suite's unit of experimentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExperimentSpec {
    /// Format version; must equal [`SPEC_SCHEMA`].
    pub schema: String,
    /// Human-readable campaign name (carried into the result artifact).
    pub name: String,
    /// Campaign seed all per-trial seeds derive from.
    #[serde(default)]
    pub seed: u64,
    /// Tuner selection (`"all"` = every suite tuner).
    pub tuners: Selector,
    /// Benchmark selection (`"all"` = all seven kernels).
    pub benchmarks: Selector,
    /// Architecture selection (`"all"` = the four-GPU paper testbed).
    pub architectures: Selector,
    /// Evaluation budget per trial.
    pub budget: u64,
    /// Independent repetitions per (tuner, benchmark, architecture) cell.
    pub repetitions: u32,
    /// Per-trial seed derivation (default: hash-derived).
    #[serde(default)]
    pub seed_policy: SeedPolicy,
    /// Measurement protocol (default: the suite protocol — 5 runs, 1% σ).
    #[serde(default)]
    pub protocol: ProtocolSpec,
    /// Result detail level (default: full T4 histories).
    #[serde(default)]
    pub record: RecordLevel,
    /// Objective block (default: plain time — skipped in serialization, so
    /// time-only specs and artifacts are unchanged).
    #[serde(default, skip_serializing_if = "ObjectiveSpec::is_default")]
    pub objective: ObjectiveSpec,
    /// Campaign shard selector (default: run every trial). Per-trial seeds
    /// ignore this block, so shard artifacts merge byte-exactly.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard: Option<ShardSpec>,
    /// Fault-injection block (default: none — the evaluation path and all
    /// artifacts are byte-identical to the pre-fault suite).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultSpec>,
}

/// Resolved campaign dimensions: `(tuners, benchmarks, architectures)`.
pub type ResolvedDimensions = (Vec<String>, Vec<String>, Vec<String>);

/// A spec that does not describe a runnable campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid campaign spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Identity of one trial within a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialKey {
    /// Tuner name (as in [`default_tuners`]).
    pub tuner: String,
    /// Benchmark (kernel) name.
    pub benchmark: String,
    /// Architecture (GPU) name.
    pub architecture: String,
    /// Repetition index, `0..repetitions`.
    pub rep: u32,
}

/// One fully resolved, independently executable trial.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrial {
    /// Which cell of the campaign this is.
    pub key: TrialKey,
    /// The trial's tuner RNG seed (pure function of spec + key).
    pub seed: u64,
    /// Evaluation budget.
    pub budget: u64,
    /// Measurement protocol.
    pub protocol: Protocol,
    /// Result detail level.
    pub record: RecordLevel,
    /// What the trial optimizes.
    pub objective: ObjectiveSpec,
    /// Fault injection to run the trial under, when the spec asks for it.
    pub faults: Option<FaultSpec>,
}

/// FNV-1a over a string — a stable, platform-independent name hash for
/// seed derivation (must never change, or archived campaigns stop being
/// reproducible).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// All tuner names the suite ships, in canonical (comparison-table) order.
pub fn known_tuners() -> Vec<String> {
    default_tuners()
        .iter()
        .map(|t| t.name().to_string())
        .collect()
}

/// The multi-objective tuner names (`bat_moo::moo_tuners`). Selectable by
/// explicit subset, *not* included in `"all"`: campaigns archived before
/// the moo subsystem must keep resolving to the same trial lists.
pub fn known_moo_tuners() -> Vec<String> {
    bat_moo::moo_tuners()
        .iter()
        .map(|t| t.name().to_string())
        .collect()
}

/// All benchmark names, in the paper's Table VIII order.
pub fn known_benchmarks() -> Vec<String> {
    bat_kernels::BENCHMARK_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// All simulated testbed GPU names.
pub fn known_architectures() -> Vec<String> {
    GpuArch::paper_testbed()
        .iter()
        .map(|a| a.name.to_string())
        .collect()
}

impl ExperimentSpec {
    /// A minimal well-formed spec (callers then adjust the selections).
    pub fn new(name: impl Into<String>) -> ExperimentSpec {
        ExperimentSpec {
            schema: SPEC_SCHEMA.to_string(),
            name: name.into(),
            seed: 0,
            tuners: Selector::All,
            benchmarks: Selector::All,
            architectures: Selector::All,
            budget: 100,
            repetitions: 1,
            seed_policy: SeedPolicy::default(),
            protocol: ProtocolSpec::default(),
            record: RecordLevel::default(),
            objective: ObjectiveSpec::default(),
            shard: None,
            faults: None,
        }
    }

    /// Parse a spec from JSON (unknown fields are rejected).
    pub fn from_json(s: &str) -> Result<ExperimentSpec, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Check the spec describes a runnable campaign and resolve selectors.
    /// Returns `(tuners, benchmarks, architectures)` in execution order.
    pub fn validate(&self) -> Result<ResolvedDimensions, SpecError> {
        if self.schema != SPEC_SCHEMA {
            return Err(SpecError(format!(
                "schema {:?} is not the supported {SPEC_SCHEMA:?}",
                self.schema
            )));
        }
        if self.budget == 0 {
            return Err(SpecError("budget must be positive".into()));
        }
        if self.repetitions == 0 {
            return Err(SpecError("repetitions must be positive".into()));
        }
        if self.protocol.runs == 0 {
            return Err(SpecError("protocol.runs must be positive".into()));
        }
        if self.protocol.sigma.is_nan() || self.protocol.sigma < 0.0 {
            return Err(SpecError("protocol.sigma must be non-negative".into()));
        }
        if self.protocol.batch == Some(0) {
            return Err(SpecError("protocol.batch must be positive".into()));
        }
        if let Some(b) = self.protocol.batch {
            if u64::from(b) > self.budget {
                return Err(SpecError(format!(
                    "protocol.batch {b} exceeds the per-trial budget {}",
                    self.budget
                )));
            }
        }
        self.objective.validate()?;
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        if let Some(shard) = self.shard {
            if shard.count == 0 {
                return Err(SpecError("shard.count must be positive".into()));
            }
            if shard.index >= shard.count {
                return Err(SpecError(format!(
                    "shard.index {} out of range 0..{}",
                    shard.index, shard.count
                )));
            }
        }
        let tuners = self
            .tuners
            .resolve(&known_tuners(), &known_moo_tuners(), "tuners")?;
        let benchmarks = self
            .benchmarks
            .resolve(&known_benchmarks(), &[], "benchmarks")?;
        let architectures =
            self.architectures
                .resolve(&known_architectures(), &[], "architectures")?;
        Ok((tuners, benchmarks, architectures))
    }

    /// The RNG seed of one trial: a pure function of the spec and the
    /// trial's key, so results never depend on execution order.
    pub fn trial_seed(&self, key: &TrialKey) -> u64 {
        match self.seed_policy {
            SeedPolicy::Derived => mix(
                mix(self.seed, fnv1a(&key.tuner)),
                mix(
                    mix(fnv1a(&key.benchmark), fnv1a(&key.architecture)),
                    u64::from(key.rep),
                ),
            ),
            // Wrapping: a near-u64::MAX campaign seed must not make the
            // same spec panic in debug builds but run in release.
            SeedPolicy::Sequential => self.seed.wrapping_add(u64::from(key.rep)),
        }
    }

    /// CLI override for the transient fault rate, in canonical form: a
    /// zero rate on an otherwise-default block removes the block entirely,
    /// so a `--fault-rate 0` override keeps specs (and their embedded
    /// artifact copies) byte-identical to fault-free ones.
    pub fn set_fault_rate(&mut self, rate: f64) {
        let mut block = self.faults.unwrap_or_default();
        block.transient_rate = rate;
        self.faults = (block != FaultSpec::default()).then_some(block);
    }

    /// True when `other` describes the same campaign, shard selection
    /// aside. This is the *merge* compatibility test: a shard artifact may
    /// seed the unsharded campaign (and vice versa) because per-trial
    /// seeds are shard-independent. Resume stays shard-strict — see
    /// the harness's prior validation.
    pub fn same_campaign(&self, other: &ExperimentSpec) -> bool {
        let a = ExperimentSpec {
            shard: None,
            ..self.clone()
        };
        let b = ExperimentSpec {
            shard: None,
            ..other.clone()
        };
        a == b
    }

    /// Compile into the flat list of independent trials, in canonical
    /// order: benchmarks → architectures → tuners → repetitions. A `shard`
    /// block keeps every `count`-th trial of that same canonical list
    /// (starting at `index`), so the shards of a spec partition it exactly.
    pub fn compile(&self) -> Result<Vec<CompiledTrial>, SpecError> {
        let (tuners, benchmarks, architectures) = self.validate()?;
        let protocol = self.protocol.protocol();
        let mut trials = Vec::with_capacity(
            tuners.len() * benchmarks.len() * architectures.len() * self.repetitions as usize,
        );
        for benchmark in &benchmarks {
            for architecture in &architectures {
                for tuner in &tuners {
                    for rep in 0..self.repetitions {
                        let key = TrialKey {
                            tuner: tuner.clone(),
                            benchmark: benchmark.clone(),
                            architecture: architecture.clone(),
                            rep,
                        };
                        trials.push(CompiledTrial {
                            seed: self.trial_seed(&key),
                            key,
                            budget: self.budget,
                            protocol,
                            record: self.record,
                            objective: self.objective,
                            faults: self.faults,
                        });
                    }
                }
            }
        }
        if let Some(shard) = self.shard {
            let (index, count) = (shard.index as usize, shard.count as usize);
            trials = trials
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % count == index)
                .map(|(_, t)| t)
                .collect();
        }
        Ok(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into()]),
            benchmarks: Selector::Subset(vec!["gemm".into(), "nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 3090".into()]),
            budget: 10,
            repetitions: 3,
            ..ExperimentSpec::new("unit")
        }
    }

    #[test]
    fn compile_enumerates_all_cells() {
        let trials = small_spec().compile().unwrap();
        assert_eq!(trials.len(), 6); // 2 benchmarks × 1 arch × 1 tuner × 3 reps
                                     // Canonical order: benchmark-major, rep-minor.
        assert_eq!(trials[0].key.benchmark, "gemm");
        assert_eq!(trials[0].key.rep, 0);
        assert_eq!(trials[2].key.rep, 2);
        assert_eq!(trials[3].key.benchmark, "nbody");
    }

    #[test]
    fn derived_seeds_differ_between_cells_and_reps() {
        let trials = small_spec().compile().unwrap();
        let mut seeds: Vec<u64> = trials.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), trials.len(), "derived seeds must be distinct");
    }

    #[test]
    fn sequential_seeds_are_campaign_seed_plus_rep() {
        let spec = ExperimentSpec {
            seed: 5,
            seed_policy: SeedPolicy::Sequential,
            ..small_spec()
        };
        for t in spec.compile().unwrap() {
            assert_eq!(t.seed, 5 + u64::from(t.key.rep));
        }
    }

    #[test]
    fn trial_seed_is_order_free_and_stable() {
        let spec = small_spec();
        let key = TrialKey {
            tuner: "random-search".into(),
            benchmark: "gemm".into(),
            architecture: "RTX 3090".into(),
            rep: 1,
        };
        assert_eq!(spec.trial_seed(&key), spec.trial_seed(&key));
        // Pinned value: changing the derivation breaks replay of archived
        // campaign artifacts, so it must fail loudly here first.
        assert_eq!(spec.trial_seed(&key), 5971933076532582476);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(ExperimentSpec {
            schema: "bat/campaign-spec/v0".into(),
            ..small_spec()
        }
        .validate()
        .is_err());
        assert!(ExperimentSpec {
            budget: 0,
            ..small_spec()
        }
        .validate()
        .is_err());
        assert!(ExperimentSpec {
            tuners: Selector::Subset(vec!["no-such-tuner".into()]),
            ..small_spec()
        }
        .validate()
        .is_err());
        assert!(ExperimentSpec {
            benchmarks: Selector::Subset(vec![]),
            ..small_spec()
        }
        .validate()
        .is_err());
        assert!(ExperimentSpec {
            benchmarks: Selector::Subset(vec!["gemm".into(), "gemm".into()]),
            ..small_spec()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn batch_knob_is_validated_and_canonically_serialized() {
        // Absent batch serializes without the field (byte-stable specs).
        let spec = small_spec();
        assert!(!spec.to_json().contains("batch"));
        assert_eq!(spec.protocol.batch(), 1);
        // Canonical setter: 1 → absent, n → present.
        let mut batched = small_spec();
        batched.protocol.set_batch(4);
        assert_eq!(batched.protocol.batch, Some(4));
        assert!(batched.to_json().contains("\"batch\": 4"));
        assert!(batched.validate().is_ok());
        let back = ExperimentSpec::from_json(&batched.to_json()).unwrap();
        assert_eq!(back, batched);
        batched.protocol.set_batch(1);
        assert_eq!(batched.protocol.batch, None);
        // Zero is rejected; so is a batch wider than the whole budget.
        let mut zero = small_spec();
        zero.protocol.batch = Some(0);
        assert!(zero.validate().is_err());
        let mut wide = small_spec();
        wide.protocol.batch = Some(11); // budget is 10
        assert!(wide.validate().is_err());
    }

    #[test]
    fn all_selector_resolves_every_dimension() {
        let spec = ExperimentSpec {
            budget: 1,
            ..ExperimentSpec::new("all")
        };
        let (t, b, a) = spec.validate().unwrap();
        assert_eq!(t.len(), default_tuners().len());
        assert_eq!(b.len(), 7);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn default_objective_is_skipped_in_json_and_round_trips() {
        let spec = small_spec();
        assert!(spec.objective.is_default());
        let json = spec.to_json();
        assert!(!json.contains("objective"));
        assert!(!json.contains("shard"));
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), spec);

        let moo = ExperimentSpec {
            objective: ObjectiveSpec {
                mode: ObjectiveMode::Scalarized,
                weight: Some(0.25),
                ..ObjectiveSpec::default()
            },
            shard: Some(ShardSpec { index: 1, count: 2 }),
            ..small_spec()
        };
        let json = moo.to_json();
        assert!(json.contains("\"scalarized\"") && json.contains("\"shard\""));
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), moo);
    }

    #[test]
    fn objective_blocks_are_validated() {
        let with = |objective| ExperimentSpec {
            objective,
            ..small_spec()
        };
        assert!(with(ObjectiveSpec {
            mode: ObjectiveMode::Time,
            weight: Some(0.5),
            ..ObjectiveSpec::default()
        })
        .validate()
        .is_err());
        assert!(with(ObjectiveSpec {
            mode: ObjectiveMode::Scalarized,
            weight: Some(1.5),
            ..ObjectiveSpec::default()
        })
        .validate()
        .is_err());
        // Blended modes require an explicit weight.
        assert!(with(ObjectiveSpec {
            mode: ObjectiveMode::Chebyshev,
            ..ObjectiveSpec::default()
        })
        .validate()
        .is_err());
        assert!(with(ObjectiveSpec {
            mode: ObjectiveMode::Energy,
            front_capacity: Some(8),
            ..ObjectiveSpec::default()
        })
        .validate()
        .is_err());
        assert!(with(ObjectiveSpec {
            mode: ObjectiveMode::Pareto,
            front_capacity: Some(0),
            ..ObjectiveSpec::default()
        })
        .validate()
        .is_err());
        assert!(with(ObjectiveSpec {
            mode: ObjectiveMode::Edp,
            ..ObjectiveSpec::default()
        })
        .validate()
        .is_ok());
    }

    #[test]
    fn shards_partition_the_compiled_trials() {
        let spec = small_spec();
        let all = spec.compile().unwrap();
        let mut rebuilt: Vec<Option<CompiledTrial>> = vec![None; all.len()];
        for index in 0..3 {
            let shard = ExperimentSpec {
                shard: Some(ShardSpec { index, count: 3 }),
                ..small_spec()
            };
            for t in shard.compile().unwrap() {
                let pos = all.iter().position(|a| *a == t).unwrap();
                assert!(rebuilt[pos].is_none(), "trial compiled by two shards");
                rebuilt[pos] = Some(t);
            }
        }
        let rebuilt: Vec<CompiledTrial> = rebuilt.into_iter().map(Option::unwrap).collect();
        assert_eq!(rebuilt, all);
        // Bad shard blocks are rejected.
        assert!(ExperimentSpec {
            shard: Some(ShardSpec { index: 2, count: 2 }),
            ..small_spec()
        }
        .validate()
        .is_err());
        assert!(ExperimentSpec {
            shard: Some(ShardSpec { index: 0, count: 0 }),
            ..small_spec()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn same_campaign_ignores_only_the_shard_block() {
        let a = small_spec();
        let sharded = ExperimentSpec {
            shard: Some(ShardSpec { index: 0, count: 2 }),
            ..small_spec()
        };
        assert!(a.same_campaign(&sharded));
        let other_seed = ExperimentSpec {
            seed: 1,
            ..small_spec()
        };
        assert!(!a.same_campaign(&other_seed));
    }

    #[test]
    fn moo_tuners_resolve_only_by_explicit_subset() {
        // "all" stays exactly the historical registry…
        let (t, _, _) = ExperimentSpec::new("all").validate().unwrap();
        assert_eq!(t, known_tuners());
        assert!(!t.contains(&"nsga2".to_string()));
        // …but subsets may name the moo tuners.
        let spec = ExperimentSpec {
            tuners: Selector::Subset(vec!["nsga2".into(), "random-search".into()]),
            ..small_spec()
        };
        let (t, _, _) = spec.validate().unwrap();
        assert_eq!(t, vec!["nsga2".to_string(), "random-search".to_string()]);
    }

    #[test]
    fn fault_block_is_validated_and_canonically_serialized() {
        // Absent faults serialize without the field (byte-stable specs).
        let spec = small_spec();
        assert!(!spec.to_json().contains("faults"));
        // A populated block round-trips and compiles into every trial.
        let chaotic = ExperimentSpec {
            faults: Some(FaultSpec {
                transient_rate: 0.05,
                crash_rate: 0.02,
                quarantine_after: Some(2),
                ..FaultSpec::default()
            }),
            ..small_spec()
        };
        assert!(chaotic.validate().is_ok());
        let json = chaotic.to_json();
        assert!(json.contains("\"faults\"") && json.contains("\"transient_rate\": 0.05"));
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), chaotic);
        let trials = chaotic.compile().unwrap();
        assert!(trials.iter().all(|t| t.faults == chaotic.faults));
        // Bad blocks are rejected.
        for bad in [
            FaultSpec {
                transient_rate: 1.5,
                ..FaultSpec::default()
            },
            FaultSpec {
                crash_rate: -0.1,
                ..FaultSpec::default()
            },
            FaultSpec {
                deadline_ms: Some(0.0),
                ..FaultSpec::default()
            },
            FaultSpec {
                quarantine_after: Some(0),
                ..FaultSpec::default()
            },
        ] {
            assert!(
                ExperimentSpec {
                    faults: Some(bad),
                    ..small_spec()
                }
                .validate()
                .is_err(),
                "{bad:?} must be rejected"
            );
        }
        // Unknown fault fields are rejected.
        let tampered = json.replacen("\"transient_rate\"", "\"jitter\": 1, \"transient_rate\"", 1);
        assert!(ExperimentSpec::from_json(&tampered).is_err());
    }

    #[test]
    fn fault_rate_override_is_canonical() {
        let mut spec = small_spec();
        spec.set_fault_rate(0.05);
        assert_eq!(
            spec.faults.map(|f| f.transient_rate),
            Some(0.05),
            "{spec:?}"
        );
        // Zero on an otherwise-default block removes it entirely.
        spec.set_fault_rate(0.0);
        assert_eq!(spec.faults, None);
        assert_eq!(spec, small_spec());
        // Zero on a non-default block keeps the block (other faults live).
        let mut chaotic = ExperimentSpec {
            faults: Some(FaultSpec {
                transient_rate: 0.1,
                crash_rate: 0.2,
                ..FaultSpec::default()
            }),
            ..small_spec()
        };
        chaotic.set_fault_rate(0.0);
        let block = chaotic.faults.unwrap();
        assert_eq!(block.transient_rate, 0.0);
        assert_eq!(block.crash_rate, 0.2);
    }

    #[test]
    fn fault_spec_defaults_mirror_core_defaults() {
        let block = FaultSpec::default();
        assert_eq!(block.model(), FaultModel::disabled());
        assert_eq!(block.retry_policy(), RetryPolicy::default());
        assert!(!block.model().is_enabled());
    }

    #[test]
    fn selector_json_forms() {
        let all: Selector = serde_json::from_str("\"all\"").unwrap();
        assert_eq!(all, Selector::All);
        let sub: Selector = serde_json::from_str("[\"gemm\", \"nbody\"]").unwrap();
        assert_eq!(sub, Selector::Subset(vec!["gemm".into(), "nbody".into()]));
        assert!(serde_json::from_str::<Selector>("\"everything\"").is_err());
        assert!(serde_json::from_str::<Selector>("{\"x\": 1}").is_err());
    }
}
