//! Campaign ↔ cache bridge: canonical scenario strings, exact trial
//! fingerprints, and the fold/replay pair that makes `--cache` work.
//!
//! The contract is byte-exactness in both directions. A trial is folded
//! into the cache under a fingerprint of *everything* that determined its
//! record — benchmark, architecture, the full measurement scenario, tuner,
//! rep, derived seed and record level — so a later campaign whose compiled
//! trial carries the same fingerprint can replay the stored record
//! verbatim through the ordinary resume machinery. A warm `--cache` run
//! therefore writes an artifact byte-identical to the cold run's while
//! executing zero trials; anything that would change a single artifact
//! byte changes the fingerprint and misses instead.

use std::fmt::Write as _;

use bat_cache::{CacheStore, CachedTrial};
use serde::{Deserialize, Serialize};

use crate::result::{CampaignResult, TrialRecord, RESULT_SCHEMA};
use crate::spec::{CompiledTrial, ExperimentSpec, ObjectiveMode, ObjectiveSpec, RecordLevel};

/// Canonical objective string for scenario keys: every knob that changes
/// what a measured objective value *means*, resolved through the same
/// defaults the evaluator applies.
fn objective_canon(o: &ObjectiveSpec) -> String {
    match o.mode {
        ObjectiveMode::Time => "time".to_string(),
        ObjectiveMode::Energy => "energy".to_string(),
        ObjectiveMode::Edp => "edp".to_string(),
        ObjectiveMode::Scalarized => format!(
            "scalarized:w={},ts={},es={}",
            o.weight.unwrap_or(0.5),
            o.time_scale_ms.unwrap_or(1.0),
            o.energy_scale_mj.unwrap_or(1.0)
        ),
        ObjectiveMode::Chebyshev => format!(
            "chebyshev:w={},ts={},es={}",
            o.weight.unwrap_or(0.5),
            o.time_scale_ms.unwrap_or(1.0),
            o.energy_scale_mj.unwrap_or(1.0)
        ),
        ObjectiveMode::Pareto => format!("pareto:k={}", o.front_capacity()),
    }
}

/// The canonical measurement-scenario string of a spec: objective, budget,
/// protocol and (when present) the resolved fault plan. Two specs with
/// equal scenario strings measure identical objective values for identical
/// configurations, which is what makes cache cells comparable across
/// campaigns; anything tuner- or trial-specific (tuner, rep, seed, record
/// level, name, shard) is deliberately excluded.
pub fn scenario_of(spec: &ExperimentSpec) -> String {
    let mut s = format!(
        "objective={};budget={};runs={};sigma={};noise_seed={};batch={}",
        objective_canon(&spec.objective),
        spec.budget,
        spec.protocol.runs,
        spec.protocol.sigma,
        spec.protocol.noise_seed,
        spec.protocol.batch()
    );
    if let Some(f) = &spec.faults {
        let model = f.model();
        let retry = f.retry_policy();
        let _ = write!(
            s,
            ";faults=tr={},to={},ol={},cr={},dl={},of={},fs={},mr={},bo={},qa={}",
            model.transient_rate,
            model.timeout_rate,
            model.outlier_rate,
            model.crash_rate,
            model.deadline_ms,
            model.outlier_factor,
            model.seed,
            retry.max_retries,
            retry.backoff_evals,
            retry.quarantine_after
        );
    }
    s
}

fn record_tag(record: RecordLevel) -> &'static str {
    match record {
        RecordLevel::Full => "full",
        RecordLevel::Curve => "curve",
    }
}

fn fingerprint_parts(
    scenario: &str,
    benchmark: &str,
    architecture: &str,
    tuner: &str,
    rep: u32,
    seed: u64,
    record: RecordLevel,
) -> String {
    format!(
        "bench={benchmark};arch={architecture};{scenario};tuner={tuner};rep={rep};seed={seed};record={}",
        record_tag(record)
    )
}

/// The exact-replay fingerprint of one compiled trial: the scenario plus
/// everything trial-specific that shapes its record. Equal fingerprints
/// imply byte-identical trial records.
pub fn trial_fingerprint(spec: &ExperimentSpec, ct: &CompiledTrial) -> String {
    fingerprint_parts(
        &scenario_of(spec),
        &ct.key.benchmark,
        &ct.key.architecture,
        &ct.key.tuner,
        ct.key.rep,
        ct.seed,
        ct.record,
    )
}

/// Fold a finished campaign into a cache store. Idempotent: a trial whose
/// fingerprint is already stored contributes nothing (so re-folding a
/// warm run, or folding the same artifact twice, is a no-op and sharded
/// caches merge cleanly). New trials contribute their successful
/// measurements to the (benchmark, architecture, scenario) cell — the full
/// per-evaluation history when the record level kept it, the best-so-far
/// curve otherwise — plus their evaluation count, and are stored verbatim
/// as replay blobs.
pub fn fold_run_into_cache(store: &mut CacheStore, result: &CampaignResult) {
    let scenario = scenario_of(&result.spec);
    for trial in &result.trials {
        let fingerprint = fingerprint_parts(
            &scenario,
            &trial.benchmark,
            &trial.architecture,
            &trial.tuner,
            trial.rep,
            trial.seed,
            result.spec.record,
        );
        if store.has_trial(&fingerprint) {
            continue;
        }
        match &trial.history {
            Some(t4) => {
                for r in &t4.results {
                    if let Some(ms) = r.time_ms() {
                        store.observe(
                            &trial.benchmark,
                            &trial.architecture,
                            &scenario,
                            &r.configuration,
                            ms,
                            r.energy_mj(),
                        );
                    }
                }
            }
            // Curve-only records know configurations only for the final
            // best; intermediate points still feed the sketch, and the
            // top-k dedup keeps the one correct (config, best) pairing.
            None if !trial.best_config.is_empty() => {
                for p in &trial.curve {
                    let energy = if Some(p.best_ms) == trial.best_ms {
                        trial.best_energy_mj
                    } else {
                        None
                    };
                    store.observe(
                        &trial.benchmark,
                        &trial.architecture,
                        &scenario,
                        &trial.best_config,
                        p.best_ms,
                        energy,
                    );
                }
            }
            None => {}
        }
        store.count_evals(
            &trial.benchmark,
            &trial.architecture,
            &scenario,
            trial.evals,
        );
        store.insert_trial(CachedTrial {
            fingerprint,
            benchmark: trial.benchmark.clone(),
            architecture: trial.architecture.clone(),
            record: trial.to_value(),
        });
    }
}

/// Synthesize a resume prior from the cache: every compiled trial of
/// `spec` whose fingerprint has a stored blob comes back as a verbatim
/// [`TrialRecord`]. The result plugs into the ordinary prior/resume
/// machinery, which is what makes a cache hit byte-exact by construction.
/// `None` when nothing matched (or the spec does not compile — the run
/// itself will surface that error).
pub fn cache_prior(store: &CacheStore, spec: &ExperimentSpec) -> Option<CampaignResult> {
    let compiled = spec.compile().ok()?;
    let scenario = scenario_of(spec);
    let mut trials = Vec::new();
    for ct in &compiled {
        let fingerprint = fingerprint_parts(
            &scenario,
            &ct.key.benchmark,
            &ct.key.architecture,
            &ct.key.tuner,
            ct.key.rep,
            ct.seed,
            ct.record,
        );
        let hit = store
            .trial(&fingerprint)
            .and_then(|cached| TrialRecord::from_value(&cached.record).ok());
        bat_cache::record_lookup(hit.is_some());
        if let Some(record) = hit {
            trials.push(record);
        }
    }
    if trials.is_empty() {
        return None;
    }
    Some(CampaignResult {
        schema: RESULT_SCHEMA.to_string(),
        spec: spec.clone(),
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::spec::{FaultSpec, Selector};

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            tuners: Selector::Subset(vec!["random-search".into()]),
            benchmarks: Selector::Subset(vec!["nbody".into()]),
            architectures: Selector::Subset(vec!["RTX 3090".into()]),
            budget: 15,
            repetitions: 2,
            ..ExperimentSpec::new("cache-integration-unit")
        }
    }

    #[test]
    fn scenario_excludes_trial_identity_but_keys_the_measurement() {
        let base = spec();
        let s = scenario_of(&base);
        assert_eq!(
            s,
            "objective=time;budget=15;runs=5;sigma=0.01;noise_seed=0;batch=1"
        );
        // Renaming or re-sharding never changes the scenario…
        let renamed = ExperimentSpec {
            name: "other".into(),
            ..base.clone()
        };
        assert_eq!(scenario_of(&renamed), s);
        // …but any measurement knob does.
        let noisier = ExperimentSpec {
            protocol: crate::spec::ProtocolSpec {
                sigma: 0.05,
                ..base.protocol
            },
            ..base.clone()
        };
        assert_ne!(scenario_of(&noisier), s);
        let mut faulty = base.clone();
        faulty.set_fault_rate(0.05);
        assert!(scenario_of(&faulty).contains(";faults=tr=0.05"));
    }

    #[test]
    fn fingerprints_separate_trials_and_pin_the_seed() {
        let s = spec();
        let compiled = s.compile().unwrap();
        assert_eq!(compiled.len(), 2);
        let fp0 = trial_fingerprint(&s, &compiled[0]);
        let fp1 = trial_fingerprint(&s, &compiled[1]);
        assert_ne!(fp0, fp1);
        assert!(fp0.contains("bench=nbody;arch=RTX 3090;objective=time"));
        assert!(fp0.contains(&format!("seed={}", compiled[0].seed)));
        assert!(fp0.ends_with(";record=full"));
        // A different campaign seed changes every fingerprint.
        let reseeded = ExperimentSpec { seed: 99, ..s };
        let c2 = reseeded.compile().unwrap();
        assert_ne!(trial_fingerprint(&reseeded, &c2[0]), fp0);
    }

    #[test]
    fn fold_then_prior_replays_every_trial_verbatim() {
        let s = spec();
        let run = run_campaign(&s).unwrap();
        let mut store = CacheStore::new();
        fold_run_into_cache(&mut store, &run.result);
        assert_eq!(store.trials.len(), 2);
        let cell = store
            .cell("nbody", "RTX 3090", &scenario_of(&s))
            .expect("fold created the cell");
        assert_eq!(cell.evals, 30);
        assert!(cell.best().is_some());

        let prior = cache_prior(&store, &s).expect("full hit");
        assert_eq!(prior.trials, run.result.trials);
        // Folding again (or folding the warm run) adds nothing.
        let before = store.to_json();
        fold_run_into_cache(&mut store, &run.result);
        assert_eq!(store.to_json(), before);
    }

    #[test]
    fn foreign_scenarios_and_seeds_miss() {
        let s = spec();
        let run = run_campaign(&s).unwrap();
        let mut store = CacheStore::new();
        fold_run_into_cache(&mut store, &run.result);
        // Same campaign under a different budget: nothing may replay.
        let other = ExperimentSpec { budget: 16, ..s };
        assert!(cache_prior(&store, &other).is_none());
        let reseeded = ExperimentSpec { seed: 1, ..spec() };
        assert!(cache_prior(&store, &reseeded).is_none());
    }

    #[test]
    fn curve_records_fold_without_history() {
        let s = ExperimentSpec {
            record: RecordLevel::Curve,
            ..spec()
        };
        let run = run_campaign(&s).unwrap();
        let mut store = CacheStore::new();
        fold_run_into_cache(&mut store, &run.result);
        let cell = store
            .cell("nbody", "RTX 3090", &scenario_of(&s))
            .expect("curve fold still builds the cell");
        assert_eq!(cell.evals, 30);
        let best = cell.best().unwrap();
        let best_trial = run
            .result
            .trials
            .iter()
            .filter_map(|t| t.best_ms)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best.ms, best_trial);
        let prior = cache_prior(&store, &s).expect("curve records replay too");
        assert_eq!(prior.trials, run.result.trials);
    }

    #[test]
    fn faulty_scenarios_resolve_defaults_deterministically() {
        let mut a = spec();
        a.faults = Some(FaultSpec {
            transient_rate: 0.1,
            ..FaultSpec::default()
        });
        let mut b = a.clone();
        // Explicitly writing the defaults yields the same scenario.
        b.faults = Some(FaultSpec {
            transient_rate: 0.1,
            max_retries: Some(bat_core::RetryPolicy::default().max_retries),
            ..FaultSpec::default()
        });
        assert_eq!(scenario_of(&a), scenario_of(&b));
    }
}
