//! The lock-free read path: an immutable sharded hash index over cache
//! cells, republished wholesale on every write.
//!
//! Readers hold an `Arc<CacheIndex>` and do hash → shard → binary-search
//! lookups against immutable data — no lock, no atomic write, nothing
//! shared mutably — so lookup throughput scales linearly with reader
//! count. Writers go through [`SharedCache`]: mutate the authoritative
//! [`CacheStore`] under a mutex, rebuild the index off to the side, then
//! swap the published `Arc` behind a briefly-held `RwLock`. A reader that
//! grabbed the old `Arc` keeps a consistent (merely stale) view until it
//! re-fetches.

use crate::obs;
use crate::store::{CacheCell, CacheStore};
use std::sync::{Arc, Mutex, RwLock};

/// Number of index shards. Keys spread by the top bits of their hash, so
/// with uniform hashing each shard holds ~1/64th of the cells.
pub const SHARDS: usize = 64;

fn fnv1a_key(benchmark: &str, architecture: &str, scenario: &str) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for part in [benchmark, architecture, scenario] {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // NUL separator so ("ab","c") and ("a","bc") hash differently.
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// An immutable snapshot of a store's cells, arranged for O(log n/64)
/// lock-free lookup.
pub struct CacheIndex {
    cells: Vec<CacheCell>,
    /// Per shard: (key hash, index into `cells`), sorted by hash.
    shards: Vec<Vec<(u64, u32)>>,
}

impl CacheIndex {
    /// Build an index over a store's current cells.
    pub fn build(store: &CacheStore) -> CacheIndex {
        let cells = store.cells.clone();
        let mut shards: Vec<Vec<(u64, u32)>> = vec![Vec::new(); SHARDS];
        for (i, cell) in cells.iter().enumerate() {
            let h = fnv1a_key(&cell.benchmark, &cell.architecture, &cell.scenario);
            shards[(h >> 58) as usize].push((h, i as u32));
        }
        for shard in &mut shards {
            shard.sort_unstable();
        }
        CacheIndex { cells, shards }
    }

    /// Look up the cell for a key. Touches no locks; safe to call from any
    /// number of threads concurrently.
    pub fn lookup(
        &self,
        benchmark: &str,
        architecture: &str,
        scenario: &str,
    ) -> Option<&CacheCell> {
        obs().lookups.inc();
        let h = fnv1a_key(benchmark, architecture, scenario);
        let shard = &self.shards[(h >> 58) as usize];
        let mut at = shard.partition_point(|&(sh, _)| sh < h);
        while let Some(&(sh, i)) = shard.get(at) {
            if sh != h {
                break;
            }
            let cell = &self.cells[i as usize];
            if cell.key() == (benchmark, architecture, scenario) {
                obs().hits.inc();
                return Some(cell);
            }
            at += 1;
        }
        obs().misses.inc();
        None
    }

    /// Number of indexed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the index holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All indexed cells, in store (sorted-key) order.
    pub fn cells(&self) -> &[CacheCell] {
        &self.cells
    }
}

/// Single-writer, many-reader handle pairing the authoritative store with
/// its published index.
pub struct SharedCache {
    store: Mutex<CacheStore>,
    published: RwLock<Arc<CacheIndex>>,
}

impl SharedCache {
    /// Wrap a store, building and publishing its initial index.
    pub fn new(store: CacheStore) -> SharedCache {
        let index = Arc::new(CacheIndex::build(&store));
        SharedCache {
            store: Mutex::new(store),
            published: RwLock::new(index),
        }
    }

    /// The current published index. Cheap (one `Arc` clone); the returned
    /// snapshot stays valid and consistent however long the caller holds
    /// it.
    pub fn index(&self) -> Arc<CacheIndex> {
        self.published
            .read()
            .expect("cache index lock poisoned")
            .clone()
    }

    /// Mutate the store, then rebuild and atomically publish the index.
    /// Serializes writers; readers are never blocked beyond the final
    /// pointer swap.
    pub fn update<R>(&self, f: impl FnOnce(&mut CacheStore) -> R) -> R {
        let mut store = self.store.lock().expect("cache store lock poisoned");
        let out = f(&mut store);
        let rebuilt = Arc::new(CacheIndex::build(&store));
        *self.published.write().expect("cache index lock poisoned") = rebuilt;
        out
    }

    /// A clone of the authoritative store (for saving to disk).
    pub fn snapshot(&self) -> CacheStore {
        self.store
            .lock()
            .expect("cache store lock poisoned")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn store_with(n: i64) -> CacheStore {
        let mut s = CacheStore::new();
        for i in 0..n {
            let mut config = BTreeMap::new();
            config.insert("block_size_x".to_string(), i);
            s.observe(
                &format!("bench-{}", i % 7),
                &format!("arch-{}", i % 3),
                &format!("scenario-{i}"),
                &config,
                1.0 + i as f64,
                None,
            );
        }
        s
    }

    #[test]
    fn index_finds_every_cell_and_misses_cleanly() {
        let store = store_with(200);
        let index = CacheIndex::build(&store);
        assert_eq!(index.len(), store.cells.len());
        for cell in &store.cells {
            let found = index
                .lookup(&cell.benchmark, &cell.architecture, &cell.scenario)
                .expect("indexed cell found");
            assert_eq!(found, cell);
        }
        assert!(index.lookup("bench-0", "arch-0", "scenario-9999").is_none());
        assert!(index.lookup("", "", "").is_none());
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let shared = Arc::new(SharedCache::new(store_with(50)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let index = shared.index();
                        // Whatever snapshot we got, it is internally consistent.
                        for cell in index.cells() {
                            assert!(index
                                .lookup(&cell.benchmark, &cell.architecture, &cell.scenario)
                                .is_some());
                        }
                    }
                })
            })
            .collect();
        for round in 0..20 {
            shared.update(|store| {
                let mut config = BTreeMap::new();
                config.insert("block_size_x".to_string(), round);
                store.observe(
                    "writer-bench",
                    "arch-w",
                    &format!("round-{round}"),
                    &config,
                    0.5,
                    None,
                );
            });
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(
            shared
                .index()
                .lookup("writer-bench", "arch-w", "round-0")
                .map(|c| c.evals),
            Some(0)
        );
        assert_eq!(shared.snapshot().cells.len(), 70);
    }

    #[test]
    fn separator_prevents_key_splicing() {
        let mut s = CacheStore::new();
        let config = BTreeMap::new();
        s.observe("ab", "c", "x", &config, 1.0, None);
        let index = CacheIndex::build(&s);
        assert!(index.lookup("a", "bc", "x").is_none());
        assert!(index.lookup("ab", "c", "x").is_some());
    }
}
