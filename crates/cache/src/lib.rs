//! The shippable autotune cache: a persistent `bat/cache/v1` best-config
//! store with a lock-free read path.
//!
//! Kernel tuning is an expensive search that should be done once and
//! reused. This crate is where the reuse lives:
//!
//! * [`CacheStore`] — the on-disk artifact. One *cell* per
//!   (benchmark, architecture, scenario) holding the best known
//!   configurations, their measured objective(s) and a compact landscape
//!   digest (top-k configs + a mergeable quantile sketch); one *trial
//!   blob* per exact tuning-trial fingerprint so a campaign re-run with
//!   `--cache` replays finished trials instead of re-tuning. The JSON form
//!   is byte-stable: entries are kept sorted, nothing volatile is
//!   recorded, and [`merge`](CacheStore::merge) is commutative and
//!   associative, so shard caches recombine into the unsharded cache
//!   byte-for-byte.
//! * [`CacheIndex`] — an immutable sharded hash index over the cells.
//!   Lookups take `&self`, touch no locks and scale linearly with reader
//!   count; writers go through [`SharedCache`], which rebuilds the index
//!   off to the side and atomically publishes the new `Arc`.
//! * [`transfer`] — deterministic cross-architecture warm starts: cells
//!   recorded on *other* GPUs feed a
//!   [`TransferDatabase`](bat_tuners::TransferDatabase), nearest
//!   architecture first (by a fixed machine-feature distance), so an
//!   unseen GPU starts its search from its closest cached neighbours.

#![warn(missing_docs)]

mod digest;
mod index;
mod store;
pub mod transfer;

pub use digest::{DigestEntry, QuantileSketch, SKETCH_BINS, TOP_K};
pub use index::{CacheIndex, SharedCache, SHARDS};
pub use store::{CacheCell, CacheError, CacheStore, CachedTrial, CACHE_SCHEMA};

/// Observability handles for the cache. Telemetry only: lookup results are
/// never affected by these, and under the `no-obs` feature every call
/// compiles down to a no-op.
pub(crate) struct CacheMetrics {
    pub(crate) lookups: &'static bat_obs::metrics::Counter,
    pub(crate) hits: &'static bat_obs::metrics::Counter,
    pub(crate) misses: &'static bat_obs::metrics::Counter,
    pub(crate) warm_starts: &'static bat_obs::metrics::Counter,
}

/// Record one logical cache lookup in the observability counters. The
/// lock-free [`CacheIndex`] records its own lookups; front-ends that query
/// a [`CacheStore`] directly (the campaign `--cache` exact-hit path) call
/// this so hit rates stay observable regardless of the read path. Under
/// the `no-obs` feature this is a no-op.
pub fn record_lookup(hit: bool) {
    let m = obs();
    m.lookups.inc();
    if hit {
        m.hits.inc();
    } else {
        m.misses.inc();
    }
}

pub(crate) fn obs() -> &'static CacheMetrics {
    use bat_obs::metrics::counter;
    static M: std::sync::OnceLock<CacheMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| CacheMetrics {
        lookups: counter("bat_cache_lookups_total", "Cache index lookups."),
        hits: counter(
            "bat_cache_hits_total",
            "Cache index lookups that found a cell.",
        ),
        misses: counter(
            "bat_cache_misses_total",
            "Cache index lookups that found nothing.",
        ),
        warm_starts: counter(
            "bat_cache_warm_starts_total",
            "Warm-start seed configurations served from the cache.",
        ),
    })
}
