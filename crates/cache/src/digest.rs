//! Compact landscape digests: the top-k configurations of a cell and a
//! mergeable quantile sketch of every observed runtime.
//!
//! Both structures form commutative monoids under [`merge_top`] /
//! [`QuantileSketch::merge`] with the empty digest as identity, which is
//! what makes the whole cache artifact shard-recombinable: folding
//! campaign halves into two caches and merging them yields the same bytes
//! as folding the unsharded campaign into one.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// How many best configurations a cell keeps.
pub const TOP_K: usize = 8;

/// Number of quantile-sketch bins. Bin `i` covers runtimes in
/// `[2^(i-20), 2^(i-19))` milliseconds, so the sketch spans about a
/// microsecond to a quarter hour — beyond that it saturates into the end
/// bins.
pub const SKETCH_BINS: usize = 40;

/// One remembered configuration: the parameter assignment and what it
/// measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigestEntry {
    /// Parameter assignment, keyed by parameter name.
    pub config: BTreeMap<String, i64>,
    /// Measured runtime in milliseconds (the tuning objective's time term).
    pub ms: f64,
    /// Measured energy in millijoules, when the campaign recorded it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub energy_mj: Option<f64>,
}

fn cmp_opt_f64(a: Option<f64>, b: Option<f64>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.total_cmp(&y),
    }
}

/// Total order on digest entries: runtime first (IEEE total order, so NaN
/// sorts deterministically too), then the configuration, then energy.
/// Total-ness is what keeps merged artifacts byte-stable.
pub(crate) fn entry_order(a: &DigestEntry, b: &DigestEntry) -> Ordering {
    a.ms.total_cmp(&b.ms)
        .then_with(|| a.config.cmp(&b.config))
        .then_with(|| cmp_opt_f64(a.energy_mj, b.energy_mj))
}

/// Merge two top-k lists: union, deduplicate by configuration keeping the
/// best-ordered entry, sort by [`entry_order`], keep the first [`TOP_K`].
///
/// Commutative and associative: an entry dropped at the cut can never
/// re-enter a later merge, because the k entries that beat it either
/// persist or are replaced by better entries for the same configurations.
pub(crate) fn merge_top(a: &[DigestEntry], b: &[DigestEntry]) -> Vec<DigestEntry> {
    let mut all: Vec<DigestEntry> = a.iter().chain(b).cloned().collect();
    all.sort_by(entry_order);
    let mut out: Vec<DigestEntry> = Vec::new();
    for e in all {
        if out.len() == TOP_K {
            break;
        }
        if !out.iter().any(|kept| kept.config == e.config) {
            out.push(e);
        }
    }
    out
}

/// A fixed-width log-scale histogram of observed runtimes.
///
/// Binning extracts the IEEE-754 exponent directly (no floating-point
/// `log`), so the same runtime always lands in the same bin on every
/// platform — a requirement for byte-stable artifacts. Bin-wise addition
/// makes merging exact: a merged sketch is identical to the sketch of the
/// concatenated observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Total observations.
    pub count: u64,
    /// Smallest observed runtime in milliseconds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub min_ms: Option<f64>,
    /// Largest observed runtime in milliseconds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_ms: Option<f64>,
    /// Per-bin observation counts; always [`SKETCH_BINS`] long.
    pub bins: Vec<u64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch (the merge identity).
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            count: 0,
            min_ms: None,
            max_ms: None,
            bins: vec![0; SKETCH_BINS],
        }
    }

    /// Bin index for a runtime: biased IEEE-754 exponent, shifted so bin 20
    /// covers `[1, 2)` ms, clamped into range. Zero, subnormals and
    /// negatives land in bin 0; infinities and NaN in the last bin.
    fn bin_of(ms: f64) -> usize {
        let exponent = ((ms.to_bits() >> 52) & 0x7ff) as i64 - 1023;
        (exponent + 20).clamp(0, SKETCH_BINS as i64 - 1) as usize
    }

    /// Record one runtime observation.
    pub fn observe(&mut self, ms: f64) {
        self.count += 1;
        self.bins[Self::bin_of(ms)] += 1;
        self.min_ms = Some(match self.min_ms {
            Some(m) => m.min(ms),
            None => ms,
        });
        self.max_ms = Some(match self.max_ms {
            Some(m) => m.max(ms),
            None => ms,
        });
    }

    /// Fold another sketch into this one (bin-wise sum; exact).
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += *theirs;
        }
        self.min_ms = match (self.min_ms, other.min_ms) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_ms = match (self.max_ms, other.max_ms) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the lower bound of the bin
    /// holding the `ceil(q · count)`-th observation, clamped to the
    /// recorded min/max. `None` when the sketch is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let lower = (2.0f64).powi(i as i32 - 20);
                let lo = self.min_ms.unwrap_or(lower);
                let hi = self.max_ms.unwrap_or(lower);
                return Some(lower.clamp(lo, hi));
            }
        }
        self.max_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ms: f64, tag: i64) -> DigestEntry {
        let mut config = BTreeMap::new();
        config.insert("block_size_x".to_string(), tag);
        DigestEntry {
            config,
            ms,
            energy_mj: None,
        }
    }

    #[test]
    fn top_k_keeps_best_and_dedups_by_config() {
        let a = vec![entry(3.0, 1), entry(1.0, 2)];
        let b = vec![entry(2.0, 1), entry(4.0, 3)];
        let merged = merge_top(&a, &b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].ms, 1.0);
        // Config 1 appears once, at its better measurement.
        let ones: Vec<&DigestEntry> = merged
            .iter()
            .filter(|e| e.config["block_size_x"] == 1)
            .collect();
        assert_eq!(ones.len(), 1);
        assert_eq!(ones[0].ms, 2.0);
    }

    #[test]
    fn top_k_truncates_and_merge_is_commutative() {
        let a: Vec<DigestEntry> = (0..10).map(|i| entry(i as f64, i)).collect();
        let b: Vec<DigestEntry> = (5..15).map(|i| entry(i as f64 * 0.5, 100 + i)).collect();
        let ab = merge_top(&a, &b);
        let ba = merge_top(&b, &a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), TOP_K);
    }

    #[test]
    fn sketch_bins_are_deterministic_and_merge_exactly() {
        let mut s1 = QuantileSketch::new();
        let mut s2 = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 0..100 {
            let ms = 0.1 + i as f64 * 0.37;
            whole.observe(ms);
            if i % 2 == 0 {
                s1.observe(ms);
            } else {
                s2.observe(ms);
            }
        }
        s1.merge(&s2);
        assert_eq!(s1, whole);
        assert_eq!(whole.count, 100);
        assert!(whole.quantile(0.5).is_some());
        assert_eq!(whole.min_ms, Some(0.1));
    }

    #[test]
    fn sketch_quantiles_bracket_the_data() {
        let mut s = QuantileSketch::new();
        for i in 1..=1000 {
            s.observe(i as f64 * 0.01); // 0.01 .. 10.0 ms
        }
        let q10 = s.quantile(0.1).unwrap();
        let q90 = s.quantile(0.9).unwrap();
        assert!(q10 <= q90);
        assert!(q10 >= s.min_ms.unwrap());
        assert!(q90 <= s.max_ms.unwrap());
        assert!(s.quantile(1.0).unwrap() <= 10.0);
        assert!(QuantileSketch::new().quantile(0.5).is_none());
    }

    #[test]
    fn extreme_values_clamp_into_range() {
        let mut s = QuantileSketch::new();
        s.observe(0.0);
        s.observe(f64::INFINITY);
        s.observe(1e-30);
        s.observe(1e30);
        assert_eq!(s.count, 4);
        assert_eq!(s.bins[0], 2);
        assert_eq!(s.bins[SKETCH_BINS - 1], 2);
    }
}
