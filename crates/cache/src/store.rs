//! The persistent `bat/cache/v1` store: cells, trial blobs, deterministic
//! merge and the byte-stable on-disk JSON form.

use crate::digest::{merge_top, DigestEntry, QuantileSketch};
use serde::{Deserialize, Serialize, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// Schema tag of the cache artifact.
pub const CACHE_SCHEMA: &str = "bat/cache/v1";

/// What went wrong loading or saving a cache artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// Filesystem failure (path and OS error).
    Io(String),
    /// The file parsed as JSON but is not a `bat/cache/v1` document, or
    /// did not parse at all.
    Parse(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(msg) => write!(f, "cache io error: {msg}"),
            CacheError::Parse(msg) => write!(f, "cache parse error: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// One cache cell: everything the store knows about tuning one benchmark
/// on one architecture under one measurement scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheCell {
    /// Benchmark (kernel) name, e.g. `"gemm"`.
    pub benchmark: String,
    /// Architecture name, e.g. `"RTX 3090"`.
    pub architecture: String,
    /// Canonical scenario string: objective, budget, measurement protocol
    /// and fault plan — everything that changes what a measurement means.
    pub scenario: String,
    /// Total evaluations folded into this cell.
    pub evals: u64,
    /// The best configurations seen, ordered best-first; at most
    /// [`TOP_K`](crate::TOP_K) entries.
    pub top: Vec<DigestEntry>,
    /// Landscape sketch over every successful measurement folded in.
    pub sketch: QuantileSketch,
}

impl CacheCell {
    /// An empty cell for the given key.
    pub fn new(benchmark: &str, architecture: &str, scenario: &str) -> CacheCell {
        CacheCell {
            benchmark: benchmark.to_string(),
            architecture: architecture.to_string(),
            scenario: scenario.to_string(),
            evals: 0,
            top: Vec::new(),
            sketch: QuantileSketch::new(),
        }
    }

    /// The cell key as a tuple, for ordering and lookup.
    pub fn key(&self) -> (&str, &str, &str) {
        (&self.benchmark, &self.architecture, &self.scenario)
    }

    /// The single best known entry (first of `top`), if any.
    pub fn best(&self) -> Option<&DigestEntry> {
        self.top.first()
    }

    /// Fold one measured configuration into the cell.
    pub fn observe(&mut self, config: &BTreeMap<String, i64>, ms: f64, energy_mj: Option<f64>) {
        let entry = DigestEntry {
            config: config.clone(),
            ms,
            energy_mj,
        };
        self.top = merge_top(&self.top, std::slice::from_ref(&entry));
        self.sketch.observe(ms);
    }

    /// Merge another cell with the same key into this one. Commutative and
    /// associative — every part is (sum, top-k union, bin-wise sum).
    pub fn merge(&mut self, other: &CacheCell) {
        debug_assert_eq!(self.key(), other.key());
        self.evals += other.evals;
        self.top = merge_top(&self.top, &other.top);
        self.sketch.merge(&other.sketch);
    }
}

fn cell_key_order(a: &CacheCell, b: &CacheCell) -> Ordering {
    a.key().cmp(&b.key())
}

/// One finished tuning trial, stored verbatim. The record is an opaque
/// JSON blob (a `bat/result/v1` trial record) keyed by an exact
/// fingerprint of everything that determined it, so a campaign run with
/// `--cache` can replay it byte-for-byte instead of re-tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedTrial {
    /// Canonical fingerprint of (benchmark, architecture, scenario, tuner,
    /// rep, seed, record mode).
    pub fingerprint: String,
    /// Benchmark name, duplicated out of the fingerprint for inspection.
    pub benchmark: String,
    /// Architecture name, duplicated out of the fingerprint for inspection.
    pub architecture: String,
    /// The trial record, verbatim.
    pub record: Value,
}

/// The persistent cache artifact: sorted cells plus sorted trial blobs.
///
/// Invariants (maintained by every constructor and mutator): `cells`
/// sorted by (benchmark, architecture, scenario) with unique keys;
/// `trials` sorted by fingerprint with unique fingerprints. Serialization
/// of the same logical store is therefore always the same bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStore {
    /// Schema tag; always [`CACHE_SCHEMA`].
    pub schema: String,
    /// Landscape cells, sorted by key.
    pub cells: Vec<CacheCell>,
    /// Exact-replay trial blobs, sorted by fingerprint.
    pub trials: Vec<CachedTrial>,
}

impl Default for CacheStore {
    fn default() -> Self {
        CacheStore::new()
    }
}

impl CacheStore {
    /// An empty store (the merge identity).
    pub fn new() -> CacheStore {
        CacheStore {
            schema: CACHE_SCHEMA.to_string(),
            cells: Vec::new(),
            trials: Vec::new(),
        }
    }

    /// Parse a store from its JSON form, validating the schema tag and
    /// re-establishing the sorted invariants (so a hand-edited file still
    /// round-trips to canonical bytes).
    pub fn from_json(s: &str) -> Result<CacheStore, CacheError> {
        let store: CacheStore =
            serde_json::from_str(s).map_err(|e| CacheError::Parse(e.to_string()))?;
        if store.schema != CACHE_SCHEMA {
            return Err(CacheError::Parse(format!(
                "cache schema {:?} is not {CACHE_SCHEMA:?}",
                store.schema
            )));
        }
        let mut normalized = CacheStore::new();
        normalized.merge(&store);
        Ok(normalized)
    }

    /// The canonical JSON form: pretty-printed, fully sorted, byte-stable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("cache store serializes")
    }

    /// Load a store from `path`.
    pub fn load(path: &str) -> Result<CacheStore, CacheError> {
        let contents = std::fs::read_to_string(path)
            .map_err(|e| CacheError::Io(format!("reading {path}: {e}")))?;
        CacheStore::from_json(&contents)
    }

    /// Load a store from `path`, or start empty when the file does not
    /// exist yet (a corrupt existing file is still an error).
    pub fn load_or_empty(path: &str) -> Result<CacheStore, CacheError> {
        match std::fs::read_to_string(path) {
            Ok(contents) => CacheStore::from_json(&contents),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(CacheStore::new()),
            Err(e) => Err(CacheError::Io(format!("reading {path}: {e}"))),
        }
    }

    /// Write the store to `path` atomically (temp file + rename), so a
    /// crash mid-write cannot corrupt a cache other campaigns share.
    pub fn save_atomic(&self, path: &str) -> Result<(), CacheError> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| CacheError::Io(format!("writing {tmp}: {e}")))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CacheError::Io(format!("renaming {tmp} to {path}: {e}")))
    }

    /// The cell for a key, if present (binary search over the sorted list).
    pub fn cell(&self, benchmark: &str, architecture: &str, scenario: &str) -> Option<&CacheCell> {
        self.cells
            .binary_search_by(|c| c.key().cmp(&(benchmark, architecture, scenario)))
            .ok()
            .map(|i| &self.cells[i])
    }

    /// The stored trial for a fingerprint, if present.
    pub fn trial(&self, fingerprint: &str) -> Option<&CachedTrial> {
        self.trials
            .binary_search_by(|t| t.fingerprint.as_str().cmp(fingerprint))
            .ok()
            .map(|i| &self.trials[i])
    }

    /// Whether a trial with this fingerprint is already stored.
    pub fn has_trial(&self, fingerprint: &str) -> bool {
        self.trial(fingerprint).is_some()
    }

    /// Fold one measured configuration into the cell for a key, creating
    /// the cell on first use.
    pub fn observe(
        &mut self,
        benchmark: &str,
        architecture: &str,
        scenario: &str,
        config: &BTreeMap<String, i64>,
        ms: f64,
        energy_mj: Option<f64>,
    ) {
        let key = (benchmark, architecture, scenario);
        let at = self.cells.binary_search_by(|c| c.key().cmp(&key));
        let cell = match at {
            Ok(i) => &mut self.cells[i],
            Err(i) => {
                self.cells
                    .insert(i, CacheCell::new(benchmark, architecture, scenario));
                &mut self.cells[i]
            }
        };
        cell.observe(config, ms, energy_mj);
    }

    /// Count one evaluation against the cell for a key (failed evaluations
    /// spend budget too, but contribute no digest entry).
    pub fn count_evals(&mut self, benchmark: &str, architecture: &str, scenario: &str, n: u64) {
        let key = (benchmark, architecture, scenario);
        let at = self.cells.binary_search_by(|c| c.key().cmp(&key));
        let cell = match at {
            Ok(i) => &mut self.cells[i],
            Err(i) => {
                self.cells
                    .insert(i, CacheCell::new(benchmark, architecture, scenario));
                &mut self.cells[i]
            }
        };
        cell.evals += n;
    }

    /// Insert one trial blob, keeping the sorted invariant. The record is
    /// canonicalized through a JSON round-trip first (e.g. non-negative
    /// `Int` becomes `UInt`, as the parser would produce), so a freshly
    /// folded store compares equal to its reloaded self. A fingerprint
    /// collision keeps the record that serializes lower — an arbitrary but
    /// deterministic tie-break, so merge order never changes the artifact.
    pub fn insert_trial(&mut self, mut trial: CachedTrial) {
        let canonical = serde_json::to_string_pretty(&trial.record).expect("record serializes");
        trial.record = serde_json::from_str(&canonical).expect("canonical record parses");
        let at = self
            .trials
            .binary_search_by(|t| t.fingerprint.cmp(&trial.fingerprint));
        match at {
            Ok(i) => {
                let mine = serde_json::to_string_pretty(&self.trials[i].record)
                    .expect("stored record serializes");
                if canonical < mine {
                    self.trials[i] = trial;
                }
            }
            Err(i) => self.trials.insert(i, trial),
        }
    }

    /// Merge another store into this one. Cells with equal keys merge
    /// component-wise; trials union by fingerprint. Commutative,
    /// associative, with the empty store as identity — so any merge tree
    /// over the same shards yields the same bytes.
    pub fn merge(&mut self, other: &CacheStore) {
        for cell in &other.cells {
            let at = self.cells.binary_search_by(|c| cell_key_order(c, cell));
            match at {
                Ok(i) => self.cells[i].merge(cell),
                Err(i) => self.cells.insert(i, cell.clone()),
            }
        }
        for trial in &other.trials {
            self.insert_trial(trial.clone());
        }
    }

    /// Drop every trial blob, keeping only the landscape cells. Shrinks a
    /// cache for shipping (warm starts and `CacheLookup` still work) at
    /// the cost of exact `--cache` replay and of idempotent re-folding.
    pub fn evict_trials(&mut self) {
        self.trials.clear();
    }

    /// Summary line: cell and trial counts.
    pub fn summary(&self) -> String {
        format!(
            "{} cell{}, {} trial{}",
            self.cells.len(),
            if self.cells.len() == 1 { "" } else { "s" },
            self.trials.len(),
            if self.trials.len() == 1 { "" } else { "s" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(x: i64) -> BTreeMap<String, i64> {
        let mut c = BTreeMap::new();
        c.insert("block_size_x".to_string(), x);
        c
    }

    fn sample_store(salt: i64) -> CacheStore {
        let mut s = CacheStore::new();
        for i in 0..5 {
            s.observe(
                "gemm",
                "RTX 3090",
                "objective=time;budget=40",
                &config(salt * 10 + i),
                1.0 + (salt * 7 + i) as f64 * 0.1,
                None,
            );
            s.count_evals("gemm", "RTX 3090", "objective=time;budget=40", 1);
        }
        s.insert_trial(CachedTrial {
            fingerprint: format!("bench=gemm;salt={salt}"),
            benchmark: "gemm".to_string(),
            architecture: "RTX 3090".to_string(),
            record: Value::Object(vec![("salt".to_string(), Value::Int(salt))]),
        });
        s
    }

    #[test]
    fn round_trip_is_byte_stable() {
        let s = sample_store(1);
        let json = s.to_json();
        let back = CacheStore::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn schema_is_validated() {
        let mut s = sample_store(1);
        s.schema = "bat/cache/v0".to_string();
        let err = CacheStore::from_json(&s.to_json()).unwrap_err();
        assert!(matches!(err, CacheError::Parse(_)));
        assert!(err.to_string().contains("bat/cache/v1"));
    }

    #[test]
    fn merge_is_commutative_in_bytes() {
        let a = sample_store(1);
        let b = sample_store(2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn lookup_and_best() {
        let s = sample_store(3);
        let cell = s
            .cell("gemm", "RTX 3090", "objective=time;budget=40")
            .unwrap();
        assert_eq!(cell.evals, 5);
        assert_eq!(cell.best().unwrap().config, config(30));
        assert!(s.cell("gemm", "RTX 3090", "objective=energy").is_none());
        assert!(s.has_trial("bench=gemm;salt=3"));
        assert!(!s.has_trial("bench=gemm;salt=4"));
    }

    #[test]
    fn evict_keeps_cells_only() {
        let mut s = sample_store(1);
        s.evict_trials();
        assert!(s.trials.is_empty());
        assert_eq!(s.cells.len(), 1);
        assert_eq!(s.summary(), "1 cell, 0 trials");
    }

    #[test]
    fn load_or_empty_handles_missing_file() {
        let s = CacheStore::load_or_empty("/nonexistent/dir/cache.json");
        // Missing parent dir still reads as NotFound on open.
        assert_eq!(s.unwrap(), CacheStore::new());
    }
}
