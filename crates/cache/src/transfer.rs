//! Cross-architecture warm starts from the cache.
//!
//! When a cache holds nothing for the GPU being tuned, its cells for
//! *other* GPUs are still worth money: the paper's portability study shows
//! optimal configurations transfer between architectures at 58.5–99.9% of
//! optimal — lossy, but a far better opening move than a random sample.
//! [`transfer_database`] turns a store into a
//! [`TransferDatabase`](bat_tuners::TransferDatabase) for one benchmark
//! and target architecture, nearest cached neighbour first, ready to feed
//! `WarmStartTuner::from_database` or `Nsga2::warm_started`.

use crate::store::CacheStore;
use bat_gpusim::GpuArch;
use bat_tuners::TransferDatabase;
use std::cmp::Ordering;

/// Deterministic distance between two machine models: the L2 norm of
/// per-feature relative differences over the numeric model constants,
/// plus 1.0 when the micro-architecture families differ (the paper's
/// portability cliff is between families, not within them).
pub fn arch_distance(a: &GpuArch, b: &GpuArch) -> f64 {
    fn rel(x: f64, y: f64) -> f64 {
        let scale = x.abs().max(y.abs()).max(1e-12);
        (x - y).abs() / scale
    }
    let features = [
        (f64::from(a.sm_count), f64::from(b.sm_count)),
        (f64::from(a.fp32_per_sm), f64::from(b.fp32_per_sm)),
        (a.clock_ghz, b.clock_ghz),
        (a.mem_bandwidth_gbs, b.mem_bandwidth_gbs),
        (a.l2_bandwidth_gbs, b.l2_bandwidth_gbs),
        (a.l2_bytes as f64, b.l2_bytes as f64),
        (
            f64::from(a.max_threads_per_sm),
            f64::from(b.max_threads_per_sm),
        ),
        (
            f64::from(a.max_blocks_per_sm),
            f64::from(b.max_blocks_per_sm),
        ),
        (f64::from(a.registers_per_sm), f64::from(b.registers_per_sm)),
        (
            f64::from(a.shared_mem_per_sm),
            f64::from(b.shared_mem_per_sm),
        ),
        (a.smem_bytes_per_cycle, b.smem_bytes_per_cycle),
        (a.dram_latency_cycles, b.dram_latency_cycles),
        (a.launch_overhead_us, b.launch_overhead_us),
    ];
    let l2: f64 = features
        .iter()
        .map(|&(x, y)| rel(x, y).powi(2))
        .sum::<f64>()
        .sqrt();
    l2 + if a.family == b.family { 0.0 } else { 1.0 }
}

/// Build a transfer database for tuning `benchmark` on `target` from a
/// cache's cells for other architectures.
///
/// Cells are visited nearest architecture first ([`arch_distance`] to the
/// target, ties broken by architecture name), and within a cell its top
/// configurations best-first, so the seed order — and therefore every
/// downstream artifact — is deterministic. Configurations are flattened
/// to dense `Vec<i64>` form through `param_names` (the target space's
/// parameter order); entries missing a parameter are skipped, the
/// cross-space case where a shipped cache predates a space change.
pub fn transfer_database(
    store: &CacheStore,
    benchmark: &str,
    target: &GpuArch,
    param_names: &[String],
) -> TransferDatabase {
    let mut donors: Vec<(f64, &str)> = Vec::new();
    for cell in &store.cells {
        if cell.benchmark != benchmark || cell.architecture == target.name {
            continue;
        }
        if donors.iter().any(|&(_, name)| name == cell.architecture) {
            continue;
        }
        if let Some(arch) = GpuArch::by_name(&cell.architecture) {
            donors.push((arch_distance(&arch, target), &cell.architecture));
        }
    }
    donors.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(b.1)));

    let mut db = TransferDatabase::new();
    for (_, donor) in donors {
        for cell in &store.cells {
            if cell.benchmark != benchmark || cell.architecture != donor {
                continue;
            }
            for entry in &cell.top {
                let config: Vec<i64> = param_names
                    .iter()
                    .filter_map(|name| entry.config.get(name).copied())
                    .collect();
                if config.len() != param_names.len() {
                    continue;
                }
                crate::obs().warm_starts.inc();
                db.record(cell.architecture.clone(), config);
            }
        }
    }
    db
}

/// Architectures in a store for one benchmark, nearest the target first —
/// the order [`transfer_database`] visits them in. Exposed for inspection
/// (`bat cache inspect` reports it).
pub fn nearest_architectures(
    store: &CacheStore,
    benchmark: &str,
    target: &GpuArch,
) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for cell in &store.cells {
        if cell.benchmark != benchmark || cell.architecture == target.name {
            continue;
        }
        if out.iter().any(|(name, _)| *name == cell.architecture) {
            continue;
        }
        if let Some(arch) = GpuArch::by_name(&cell.architecture) {
            out.push((cell.architecture.clone(), arch_distance(&arch, target)));
        }
    }
    out.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn config(x: i64, y: i64) -> BTreeMap<String, i64> {
        let mut c = BTreeMap::new();
        c.insert("block_size_x".to_string(), x);
        c.insert("tile_size".to_string(), y);
        c
    }

    #[test]
    fn distance_is_a_metric_like_shape() {
        let a = GpuArch::rtx_3090();
        let b = GpuArch::rtx_3060();
        let c = GpuArch::rtx_2080_ti();
        assert_eq!(arch_distance(&a, &a), 0.0);
        assert_eq!(arch_distance(&a, &b), arch_distance(&b, &a));
        // Cross-family pays the +1 cliff: 3090 (Ampere) is nearer the 3060
        // (Ampere) than the 2080 Ti (Turing) despite the 3090/2080 Ti
        // being closer in raw size.
        assert!(arch_distance(&a, &c) > 1.0);
    }

    #[test]
    fn database_orders_donors_nearest_first() {
        let mut store = CacheStore::new();
        for (arch, x) in [("RTX 2080 Ti", 1), ("RTX 3060", 2), ("RTX Titan", 3)] {
            store.observe("gemm", arch, "s", &config(x, 10), 1.0, None);
        }
        // A cell for another benchmark must not leak in.
        store.observe("nbody", "RTX 3060", "s", &config(9, 9), 1.0, None);
        let target = GpuArch::rtx_3090();
        let names = vec!["block_size_x".to_string(), "tile_size".to_string()];
        let db = transfer_database(&store, "gemm", &target, &names);
        let seeds = db.seeds_for(target.name);
        // Same family (3060) first, then the nearer Turing card.
        assert_eq!(seeds[0], vec![2, 10]);
        assert_eq!(seeds.len(), 3);
        let order = nearest_architectures(&store, "gemm", &target);
        assert_eq!(order[0].0, "RTX 3060");
        assert!(order[0].1 < order[1].1);
    }

    #[test]
    fn target_cells_and_unknown_archs_are_excluded() {
        let mut store = CacheStore::new();
        store.observe("gemm", "RTX 3090", "s", &config(1, 1), 1.0, None);
        store.observe("gemm", "Imaginary GPU", "s", &config(2, 2), 1.0, None);
        let target = GpuArch::rtx_3090();
        let names = vec!["block_size_x".to_string(), "tile_size".to_string()];
        let db = transfer_database(&store, "gemm", &target, &names);
        assert!(db.is_empty());
    }

    #[test]
    fn entries_missing_a_parameter_are_skipped() {
        let mut store = CacheStore::new();
        store.observe("gemm", "RTX 3060", "s", &config(4, 8), 1.0, None);
        let target = GpuArch::rtx_3090();
        let names = vec![
            "block_size_x".to_string(),
            "tile_size".to_string(),
            "unknown_param".to_string(),
        ];
        let db = transfer_database(&store, "gemm", &target, &names);
        assert!(db.is_empty());
    }
}
