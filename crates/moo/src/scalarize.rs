//! Scalarization: multi-objective tuning through single-objective tuners.
//!
//! [`Scalarized`] wraps any [`TuningProblem`] and presents a blended
//! time–energy objective through the ordinary `evaluate_pure` interface.
//! Because every suite tuner optimizes whatever the evaluator measures,
//! this lets *all* existing algorithms (random search, annealing, Bayesian
//! optimization, TPE, SMAC, …) minimize energy, energy-delay product, or a
//! weighted/Chebyshev blend without any modification — the classic
//! decomposition approach to multi-objective optimization.

use bat_core::{EvalFailure, TuningProblem};
use bat_space::ConfigSpace;

/// How the two objectives blend into one scalar (both minimized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalarization {
    /// Pure energy (mJ).
    Energy,
    /// Energy–delay product (mJ·ms) — the scale-free efficiency classic.
    Edp,
    /// Weighted sum `w·t/tˢ + (1−w)·e/eˢ` with normalization scales
    /// `tˢ` (ms) and `eˢ` (mJ).
    Weighted {
        /// Weight on the (scaled) time objective, in `[0, 1]`.
        time_weight: f64,
        /// Time normalization scale in ms.
        time_scale_ms: f64,
        /// Energy normalization scale in mJ.
        energy_scale_mj: f64,
    },
    /// Chebyshev (max-norm) blend `max(w·t/tˢ, (1−w)·e/eˢ)` — reaches
    /// points of non-convex fronts that weighted sums cannot.
    Chebyshev {
        /// Weight on the (scaled) time objective, in `[0, 1]`.
        time_weight: f64,
        /// Time normalization scale in ms.
        time_scale_ms: f64,
        /// Energy normalization scale in mJ.
        energy_scale_mj: f64,
    },
}

impl Scalarization {
    /// Blend `(time_ms, energy_mj)` into the scalar objective.
    pub fn blend(&self, time_ms: f64, energy_mj: f64) -> f64 {
        match *self {
            Scalarization::Energy => energy_mj,
            Scalarization::Edp => energy_mj * time_ms,
            Scalarization::Weighted {
                time_weight,
                time_scale_ms,
                energy_scale_mj,
            } => {
                time_weight * time_ms / time_scale_ms
                    + (1.0 - time_weight) * energy_mj / energy_scale_mj
            }
            Scalarization::Chebyshev {
                time_weight,
                time_scale_ms,
                energy_scale_mj,
            } => (time_weight * time_ms / time_scale_ms)
                .max((1.0 - time_weight) * energy_mj / energy_scale_mj),
        }
    }

    /// A short stable tag (used in problem names and noise salting).
    pub fn tag(&self) -> String {
        match *self {
            Scalarization::Energy => "energy".into(),
            Scalarization::Edp => "edp".into(),
            Scalarization::Weighted { time_weight, .. } => {
                format!("weighted(w={time_weight})")
            }
            Scalarization::Chebyshev { time_weight, .. } => {
                format!("chebyshev(w={time_weight})")
            }
        }
    }
}

/// A [`TuningProblem`] whose objective is a scalarized time–energy blend
/// of the wrapped problem's two objectives.
///
/// The blend is applied to the *pure* model values; the evaluator then
/// layers its usual multiplicative noise on top, so scalarized runs follow
/// exactly the same measurement discipline as time-only runs. Problems
/// that report no energy fall back to time, so wrapping a single-objective
/// problem degrades gracefully instead of failing.
pub struct Scalarized<P: TuningProblem> {
    inner: P,
    scalarization: Scalarization,
    name: String,
    /// Cached at construction: `noise_salt()` sits on the per-measurement
    /// hot path and both inputs are immutable.
    noise_salt: u64,
}

impl<P: TuningProblem> Scalarized<P> {
    /// Wrap `inner` under `scalarization`.
    pub fn new(inner: P, scalarization: Scalarization) -> Scalarized<P> {
        let name = format!("{}+{}", inner.name(), scalarization.tag());
        // Distinct noise stream per scalarization so blends do not reuse
        // the raw problem's sample jitter.
        let mut noise_salt = inner.noise_salt();
        for b in scalarization.tag().bytes() {
            noise_salt ^= u64::from(b);
            noise_salt = noise_salt.wrapping_mul(0x1000_0000_01b3);
        }
        Scalarized {
            inner,
            scalarization,
            name,
            noise_salt,
        }
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The active scalarization.
    pub fn scalarization(&self) -> Scalarization {
        self.scalarization
    }
}

impl<P: TuningProblem> TuningProblem for Scalarized<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn platform(&self) -> &str {
        self.inner.platform()
    }

    fn space(&self) -> &ConfigSpace {
        self.inner.space()
    }

    fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure> {
        let (t, e) = self.inner.evaluate_pure2(config)?;
        Ok(self.scalarization.blend(t, e.unwrap_or(t)))
    }

    fn evaluate_pure2(&self, config: &[i64]) -> Result<(f64, Option<f64>), EvalFailure> {
        let (t, e) = self.inner.evaluate_pure2(config)?;
        let energy = e.unwrap_or(t);
        Ok((self.scalarization.blend(t, energy), Some(energy)))
    }

    fn noise_salt(&self) -> u64 {
        self.noise_salt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::SyntheticProblem;
    use bat_space::Param;

    fn two_objective_problem() -> impl TuningProblem {
        // time = 1 + x, and the synthetic default reports no energy, so the
        // fallback path (energy := time) is exercised.
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        SyntheticProblem::new("toy", "sim", space, |c| Ok(1.0 + c[0] as f64))
    }

    #[test]
    fn blends_compute_the_expected_scalars() {
        let w = Scalarization::Weighted {
            time_weight: 0.25,
            time_scale_ms: 2.0,
            energy_scale_mj: 10.0,
        };
        assert!((w.blend(4.0, 20.0) - (0.25 * 2.0 + 0.75 * 2.0)).abs() < 1e-12);
        let c = Scalarization::Chebyshev {
            time_weight: 0.5,
            time_scale_ms: 1.0,
            energy_scale_mj: 1.0,
        };
        assert_eq!(c.blend(4.0, 6.0), 3.0);
        assert_eq!(Scalarization::Edp.blend(2.0, 5.0), 10.0);
        assert_eq!(Scalarization::Energy.blend(2.0, 5.0), 5.0);
    }

    #[test]
    fn scalarized_problem_blends_and_keeps_space() {
        let p = Scalarized::new(two_objective_problem(), Scalarization::Edp);
        // Energy falls back to time → EDP = t².
        assert_eq!(p.evaluate_pure(&[3]).unwrap(), 16.0);
        assert_eq!(p.evaluate_pure2(&[3]).unwrap(), (16.0, Some(4.0)));
        assert_eq!(p.space().num_params(), 1);
        assert_eq!(p.name(), "toy+edp");
    }

    #[test]
    fn scalarizations_get_distinct_noise_streams() {
        let a = Scalarized::new(two_objective_problem(), Scalarization::Edp);
        let b = Scalarized::new(two_objective_problem(), Scalarization::Energy);
        assert_ne!(a.noise_salt(), b.noise_salt());
        assert_ne!(a.noise_salt(), a.inner().noise_salt());
    }
}
