//! # bat-moo
//!
//! Multi-objective (time × energy) tuning for BAT-rs.
//!
//! The simulator prices every launch in both milliseconds and millijoules
//! ([`bat_gpusim::execute_with_energy`]); this crate supplies the
//! optimization layer on top:
//!
//! * [`ParetoArchive`] — a bounded non-dominated archive with
//!   crowding-distance truncation, the multi-objective analogue of a
//!   best-so-far scalar;
//! * [`Nsga2`] — an elitist non-dominated-sorting population tuner
//!   implementing the suite's ordinary [`bat_tuners::Tuner`] trait, so it
//!   drops into campaigns next to the single-objective algorithms;
//! * [`Scalarized`] — a problem adapter blending the two objectives
//!   (energy, EDP, weighted or Chebyshev) into one scalar, which lets
//!   *every* existing tuner optimize time–energy trade-offs unmodified;
//! * [`hypervolume_2d`] / [`pareto_front_2d`] — the front-quality
//!   primitives the analysis reducers build on.

#![warn(missing_docs)]

mod archive;
mod nsga2;
mod scalarize;

pub use archive::{ParetoArchive, ParetoPoint};
pub use nsga2::{front_of_run, Nsga2};
pub use scalarize::{Scalarization, Scalarized};

use bat_tuners::Tuner;

/// The multi-objective tuners this crate ships (the moo counterpart of
/// [`bat_tuners::default_tuners`]). Kept out of the default registry so
/// time-only comparisons and their archived artifacts are untouched;
/// harness specs name these tuners explicitly.
pub fn moo_tuners() -> Vec<Box<dyn Tuner>> {
    vec![Box::new(Nsga2::default())]
}

/// The non-dominated subset of `points` (both coordinates minimized),
/// sorted by ascending first coordinate. Duplicate objective vectors are
/// kept once.
pub fn pareto_front_2d(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    // Left-to-right sweep: a point joins the front iff it strictly improves
    // the running second-coordinate minimum (equal-or-worse points are
    // weakly dominated by an earlier one).
    let mut front: Vec<(f64, f64)> = Vec::new();
    let mut best_y = f64::INFINITY;
    for p in sorted {
        if p.1 < best_y {
            best_y = p.1;
            front.push(p);
        }
    }
    front
}

/// Hypervolume dominated by `front` w.r.t. `reference` (both coordinates
/// minimized). Points not dominating the reference contribute nothing;
/// dominated/duplicate points in the input are filtered first, so any
/// point set is accepted.
pub fn hypervolume_2d(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    let front = pareto_front_2d(points);
    let (rx, ry) = reference;
    let mut hv = 0.0;
    let mut prev_y = ry;
    for (x, y) in front {
        if x >= rx || y >= prev_y {
            continue;
        }
        hv += (rx - x) * (prev_y - y);
        prev_y = y;
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_filters_dominated_and_duplicate_points() {
        let pts = vec![
            (2.0, 2.0),
            (1.0, 3.0),
            (3.0, 1.0),
            (2.5, 2.5), // dominated by (2,2)
            (1.0, 3.0), // duplicate
            (1.0, 4.0), // same time, worse energy
        ];
        assert_eq!(
            pareto_front_2d(&pts),
            vec![(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        );
    }

    #[test]
    fn hypervolume_matches_hand_computation() {
        let pts = vec![(1.0, 3.0), (2.0, 1.0), (5.0, 0.5)];
        // ref (4,4): (4-1)*(4-3) + (4-2)*(3-1) = 3 + 4; the (5,0.5) point
        // lies beyond the reference time and contributes nothing.
        assert!((hypervolume_2d(&pts, (4.0, 4.0)) - 7.0).abs() < 1e-12);
        // Empty and fully-out-of-reference sets have zero volume.
        assert_eq!(hypervolume_2d(&[], (1.0, 1.0)), 0.0);
        assert_eq!(hypervolume_2d(&[(2.0, 2.0)], (1.0, 1.0)), 0.0);
    }

    #[test]
    fn hypervolume_grows_with_better_fronts() {
        let worse = vec![(2.0, 2.0)];
        let better = vec![(2.0, 2.0), (1.0, 3.5), (3.5, 1.0)];
        let r = (4.0, 4.0);
        assert!(hypervolume_2d(&better, r) > hypervolume_2d(&worse, r));
    }

    #[test]
    fn moo_registry_is_disjoint_from_the_default_one() {
        let defaults: Vec<String> = bat_tuners::default_tuners()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        for t in moo_tuners() {
            assert!(!defaults.contains(&t.name().to_string()), "{}", t.name());
        }
    }
}
