//! NSGA-II: elitist non-dominated-sorting genetic search over (time,
//! energy).
//!
//! The reference multi-objective tuner of the suite (Deb et al., 2002,
//! adapted to discrete tuning spaces): a population evolves under binary
//! tournament selection keyed on (non-domination rank, crowding distance),
//! uniform ordinal crossover and per-gene mutation; survivors are chosen by
//! rank with the last front truncated by crowding. Every measurement flows
//! through the shared [`Evaluator`] protocol, so NSGA-II spends budget
//! exactly like the single-objective tuners and its runs drop into the same
//! campaign artifacts.
//!
//! Failed configurations (restricted or launch-failed) rank behind every
//! feasible one, which steers the population into the valid region without
//! a separate repair step.

use bat_core::{Evaluator, TuningRun};
use bat_space::ConfigSpace;
use bat_tuners::{
    new_run, ordinal, record_eval2, StepCtx, StepTuner, Told, TransferDatabase, Tuner,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::archive::{ParetoArchive, ParetoPoint};

/// The NSGA-II population tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2 {
    /// Population size (and offspring count per generation).
    pub population: usize,
    /// Probability that a child is produced by crossover (otherwise it is a
    /// mutated copy of the first parent).
    pub crossover_rate: f64,
    /// Per-gene probability of mutating to a different value.
    pub mutation_rate: f64,
    /// Warm-start seed configurations evaluated as the head of the initial
    /// population (typically the transfer database's best configurations
    /// from other architectures). Unrepresentable seeds are skipped; with
    /// no seeds the tuner is byte-identical to its historical form.
    pub seeds: Vec<Vec<i64>>,
}

impl Default for Nsga2 {
    fn default() -> Self {
        Nsga2 {
            population: 24,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            seeds: Vec::new(),
        }
    }
}

impl Nsga2 {
    /// A default-parameter NSGA-II whose initial population is seeded from
    /// the warm-start [`TransferDatabase`]: every configuration the
    /// database holds for *other* platforms heads the first generation
    /// (ROADMAP follow-up (j) — multi-objective transfer tuning).
    pub fn warm_started(db: &TransferDatabase, target_platform: &str) -> Nsga2 {
        Nsga2 {
            seeds: db.seeds_for(target_platform),
            ..Nsga2::default()
        }
    }
}

/// One candidate: genome plus (optional) objectives.
#[derive(Clone)]
struct Individual {
    pos: Vec<usize>,
    /// `(time_ms, energy_mj)`; `None` when the evaluation failed.
    objectives: Option<(f64, f64)>,
}

/// Evaluate `pos` through the shared trial-recording protocol and return
/// its objectives (`Err(())` when the budget ran out before the
/// measurement happened).
fn evaluate(
    eval: &Evaluator<'_>,
    space: &ConfigSpace,
    run: &mut TuningRun,
    pos: &[usize],
) -> Result<Option<(f64, f64)>, ()> {
    let index = ordinal::index_of(space, pos);
    match record_eval2(eval, run, index) {
        None => Err(()),
        Some(outcome) => Ok(outcome
            .ok()
            .map(|m| (m.time_ms, m.energy_mj.unwrap_or(m.time_ms)))),
    }
}

/// `a` dominates `b` under minimization (failures dominate nothing and are
/// dominated by every feasible point).
fn dominates(a: &Individual, b: &Individual) -> bool {
    match (a.objectives, b.objectives) {
        (Some((t1, e1)), Some((t2, e2))) => t1 <= t2 && e1 <= e2 && (t1 < t2 || e1 < e2),
        (Some(_), None) => true,
        _ => false,
    }
}

/// Non-domination rank per individual (0 = best front). O(n²) per front,
/// fine at population scale.
fn rank(pop: &[Individual]) -> Vec<u32> {
    let n = pop.len();
    let mut ranks = vec![u32::MAX; n];
    let mut assigned = 0;
    let mut current = 0u32;
    while assigned < n {
        let mut this_front = Vec::new();
        for i in 0..n {
            if ranks[i] != u32::MAX {
                continue;
            }
            let dominated =
                (0..n).any(|j| j != i && ranks[j] == u32::MAX && dominates(&pop[j], &pop[i]));
            if !dominated {
                this_front.push(i);
            }
        }
        // Domination is a strict partial order, so every non-empty
        // remainder has minimal elements.
        debug_assert!(!this_front.is_empty());
        for &i in &this_front {
            ranks[i] = current;
            assigned += 1;
        }
        current += 1;
    }
    ranks
}

/// Crowding distance of each individual within its front (higher =
/// lonelier = preferred). Failures get 0.
fn crowding(pop: &[Individual], ranks: &[u32]) -> Vec<f64> {
    let n = pop.len();
    let mut dist = vec![0.0f64; n];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for r in 0..=max_rank {
        let mut front: Vec<usize> = (0..n)
            .filter(|&i| ranks[i] == r && pop[i].objectives.is_some())
            .collect();
        if front.len() <= 2 {
            for &i in &front {
                dist[i] = f64::INFINITY;
            }
            continue;
        }
        // Sort by time (ties by energy, then list position: deterministic).
        front.sort_by(|&a, &b| {
            let (ta, ea) = pop[a].objectives.unwrap();
            let (tb, eb) = pop[b].objectives.unwrap();
            ta.total_cmp(&tb).then(ea.total_cmp(&eb)).then(a.cmp(&b))
        });
        let (t_min, e_of_first) = pop[front[0]].objectives.unwrap();
        let (t_max, e_of_last) = pop[*front.last().unwrap()].objectives.unwrap();
        let t_span = (t_max - t_min).max(f64::MIN_POSITIVE);
        let e_span = (e_of_first - e_of_last).abs().max(f64::MIN_POSITIVE);
        dist[front[0]] = f64::INFINITY;
        dist[*front.last().unwrap()] = f64::INFINITY;
        for w in 0..front.len() - 2 {
            let (prev, mid, next) = (front[w], front[w + 1], front[w + 2]);
            let (tp, ep) = pop[prev].objectives.unwrap();
            let (tn, en) = pop[next].objectives.unwrap();
            dist[mid] += (tn - tp) / t_span + (ep - en).abs() / e_span;
        }
    }
    dist
}

impl Nsga2 {
    fn tournament<'a, R: Rng>(
        &self,
        pop: &'a [Individual],
        ranks: &[u32],
        dist: &[f64],
        rng: &mut R,
    ) -> &'a Individual {
        let a = rng.random_range(0..pop.len());
        let b = rng.random_range(0..pop.len());
        let better = if ranks[a] != ranks[b] {
            if ranks[a] < ranks[b] {
                a
            } else {
                b
            }
        } else if dist[a] != dist[b] {
            if dist[a] > dist[b] {
                a
            } else {
                b
            }
        } else {
            a.min(b)
        };
        &pop[better]
    }

    fn offspring<R: Rng>(
        &self,
        space: &ConfigSpace,
        parents: (&Individual, &Individual),
        rng: &mut R,
    ) -> Vec<usize> {
        let mut child = parents.0.pos.clone();
        if rng.random::<f64>() < self.crossover_rate {
            for (c, p) in child.iter_mut().zip(&parents.1.pos) {
                if rng.random::<bool>() {
                    *c = *p;
                }
            }
        }
        for (i, g) in child.iter_mut().enumerate() {
            if rng.random::<f64>() < self.mutation_rate {
                let len = space.params()[i].len();
                if len > 1 {
                    let mut alt = rng.random_range(0..len - 1);
                    if alt >= *g {
                        alt += 1;
                    }
                    *g = alt;
                }
            }
        }
        child
    }
}

/// Environmental selection: best ranks first, last front by descending
/// crowding (ties by list position — deterministic). Returns the surviving
/// population in stable age order.
fn environmental_selection(combined: &[Individual], pop_size: usize) -> Vec<Individual> {
    let ranks = rank(combined);
    let dist = crowding(combined, &ranks);
    let mut order: Vec<usize> = (0..combined.len()).collect();
    order.sort_by(|&a, &b| {
        ranks[a]
            .cmp(&ranks[b])
            .then(dist[b].total_cmp(&dist[a]))
            .then(a.cmp(&b))
    });
    order.truncate(pop_size);
    order.sort_unstable(); // keep population in stable age order
    order.into_iter().map(|i| combined[i].clone()).collect()
}

/// Objectives of one told outcome: `(time_ms, energy_mj)` with the time
/// fallback, `None` for failed configurations.
fn objectives_of(told: &Told) -> Option<(f64, f64)> {
    told.outcome
        .as_ref()
        .ok()
        .map(|m| (m.time_ms, m.energy_mj.unwrap_or(m.time_ms)))
}

/// In-flight generation state of the step session.
struct GenState {
    ranks: Vec<u32>,
    dist: Vec<f64>,
    /// Parents plus the offspring told so far.
    combined: Vec<Individual>,
    /// Offspring asked so far this generation.
    produced: usize,
}

struct Nsga2Step<'a> {
    cfg: &'a Nsga2,
    space: &'a ConfigSpace,
    rng: StdRng,
    pop_size: usize,
    /// Representable warm-start seeds still to inject into the initial
    /// population (FIFO).
    seeds: std::collections::VecDeque<Vec<usize>>,
    pop: Vec<Individual>,
    gen: Option<GenState>,
    /// Genomes asked but not yet told, in ask order.
    pending: Vec<Vec<usize>>,
}

impl StepTuner for Nsga2Step<'_> {
    fn ask(&mut self, ctx: &StepCtx) -> Vec<u64> {
        self.pending.clear();
        if self.pop.len() < self.pop_size {
            // Initial population: warm-start seeds head the generation,
            // the remainder is random (RNG-identical to the classic loop
            // when no seeds are present).
            let want = (self.pop_size - self.pop.len()).min(ctx.batch);
            for _ in 0..want {
                let pos = match self.seeds.pop_front() {
                    Some(pos) => pos,
                    None => ordinal::random_positions(self.space, &mut self.rng),
                };
                self.pending.push(pos);
            }
        } else {
            if self.gen.is_none() {
                let ranks = rank(&self.pop);
                let dist = crowding(&self.pop, &ranks);
                self.gen = Some(GenState {
                    ranks,
                    dist,
                    combined: self.pop.clone(),
                    produced: 0,
                });
            }
            let g = self.gen.as_mut().expect("generation state initialized");
            let want = (self.pop_size - g.produced).min(ctx.batch);
            g.produced += want;
            for _ in 0..want {
                let g = self.gen.as_ref().expect("generation state initialized");
                let p1 = self
                    .cfg
                    .tournament(&self.pop, &g.ranks, &g.dist, &mut self.rng);
                let p2 = self
                    .cfg
                    .tournament(&self.pop, &g.ranks, &g.dist, &mut self.rng);
                let pos = self.cfg.offspring(self.space, (p1, p2), &mut self.rng);
                self.pending.push(pos);
            }
        }
        self.pending
            .iter()
            .map(|pos| ordinal::index_of(self.space, pos))
            .collect()
    }

    fn tell(&mut self, results: &[Told]) {
        let initializing = self.pop.len() < self.pop_size;
        for (pos, r) in self.pending.drain(..).zip(results) {
            let objectives = objectives_of(r);
            let ind = Individual { pos, objectives };
            if initializing {
                self.pop.push(ind);
            } else {
                let g = self.gen.as_mut().expect("offspring belong to a generation");
                g.combined.push(ind);
            }
        }
        if let Some(g) = &self.gen {
            if g.combined.len() == 2 * self.pop_size {
                let survivors = environmental_selection(&g.combined, self.pop_size);
                self.pop = survivors;
                self.gen = None;
            }
        }
    }
}

impl Nsga2 {
    /// Representable seed configurations as position vectors, in seed
    /// order (unrepresentable ones are skipped for free, as in
    /// [`bat_tuners::WarmStartTuner`]).
    fn seed_positions(&self, space: &ConfigSpace) -> Vec<Vec<usize>> {
        self.seeds
            .iter()
            .filter_map(|cfg| space.index_of(cfg))
            .map(|idx| ordinal::positions_of(space, idx))
            .collect()
    }

    /// The pre-ask/tell pull loop, kept verbatim as the equivalence oracle
    /// for the step driver (property-tested bit-identical at `batch = 1`).
    pub fn reference_tune(&self, eval: &Evaluator<'_>, seed: u64) -> TuningRun {
        let space = eval.problem().space();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut run = new_run(eval, self.name(), seed);
        let pop_size = self.population.max(2);
        let mut seeds: std::collections::VecDeque<Vec<usize>> = self.seed_positions(space).into();

        let mut pop: Vec<Individual> = Vec::with_capacity(pop_size);
        for _ in 0..pop_size {
            let pos = match seeds.pop_front() {
                Some(pos) => pos,
                None => ordinal::random_positions(space, &mut rng),
            };
            match evaluate(eval, space, &mut run, &pos) {
                Ok(objectives) => pop.push(Individual { pos, objectives }),
                Err(()) => return run,
            }
        }

        loop {
            let ranks = rank(&pop);
            let dist = crowding(&pop, &ranks);
            // Produce and evaluate one generation of offspring.
            let mut combined = pop.clone();
            for _ in 0..pop_size {
                if !eval.has_budget() {
                    return run;
                }
                let p1 = self.tournament(&pop, &ranks, &dist, &mut rng);
                let p2 = self.tournament(&pop, &ranks, &dist, &mut rng);
                let pos = self.offspring(space, (p1, p2), &mut rng);
                match evaluate(eval, space, &mut run, &pos) {
                    Ok(objectives) => combined.push(Individual { pos, objectives }),
                    Err(()) => return run,
                }
            }
            pop = environmental_selection(&combined, pop_size);
        }
    }
}

impl Tuner for Nsga2 {
    fn name(&self) -> &str {
        "nsga2"
    }

    fn start<'a>(&'a self, space: &'a ConfigSpace, seed: u64) -> Box<dyn StepTuner + 'a> {
        Box::new(Nsga2Step {
            cfg: self,
            space,
            rng: StdRng::seed_from_u64(seed),
            pop_size: self.population.max(2),
            seeds: self.seed_positions(space).into(),
            pop: Vec::new(),
            gen: None,
            pending: Vec::new(),
        })
    }
}

/// The non-dominated front of a finished run's successful trials, bounded
/// by `capacity`. Trials without a measured energy fall back to time as the
/// second objective, so the front degrades to the best-time singleton on
/// single-objective histories.
pub fn front_of_run(run: &TuningRun, capacity: usize) -> ParetoArchive {
    let mut archive = ParetoArchive::new(capacity);
    for t in &run.trials {
        if let Ok(m) = &t.outcome {
            archive.insert(ParetoPoint {
                index: t.index,
                time_ms: m.time_ms,
                energy_mj: m.energy_mj.unwrap_or(m.time_ms),
            });
        }
    }
    archive
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{EvalFailure, Protocol, SyntheticProblem};
    use bat_space::{ConfigSpace, Param};

    struct TwoObjective {
        space: ConfigSpace,
    }

    impl bat_core::TuningProblem for TwoObjective {
        fn name(&self) -> &str {
            "trade-off"
        }
        fn platform(&self) -> &str {
            "sim"
        }
        fn space(&self) -> &ConfigSpace {
            &self.space
        }
        fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure> {
            // Time falls with x…
            Ok(1.0 + (20 - config[0]) as f64)
        }
        fn evaluate_pure2(&self, config: &[i64]) -> Result<(f64, Option<f64>), EvalFailure> {
            // …while energy rises with x: a pure trade-off, every x is
            // Pareto-optimal.
            let t = self.evaluate_pure(config)?;
            Ok((t, Some(1.0 + config[0] as f64)))
        }
    }

    fn problem() -> TwoObjective {
        TwoObjective {
            space: ConfigSpace::builder()
                .param(Param::int_range("x", 0, 20))
                .param(Param::int_range("y", 0, 4))
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let p = problem();
        let tuner = Nsga2::default();
        let eval1 = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(100);
        let run1 = tuner.tune(&eval1, 9);
        assert_eq!(run1.trials.len(), 100);
        let eval2 = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(100);
        let run2 = tuner.tune(&eval2, 9);
        assert_eq!(run1, run2);
    }

    #[test]
    fn discovers_a_spread_front_on_a_trade_off() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(300);
        let run = Nsga2::default().tune(&eval, 3);
        let front = front_of_run(&run, 32);
        front.check_invariants().unwrap();
        // The trade-off has 21 Pareto-optimal time levels; a working MOO
        // tuner should find a wide spread of them, including both extremes.
        assert!(front.len() >= 10, "front has only {} points", front.len());
        let times: Vec<f64> = front.front().iter().map(|q| q.time_ms).collect();
        assert_eq!(times.first().copied(), Some(1.0));
        assert_eq!(times.last().copied(), Some(21.0));
    }

    #[test]
    fn survives_all_failing_configurations() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 7))
            .build()
            .unwrap();
        let p = SyntheticProblem::new("doomed", "sim", space, |_| {
            Err(EvalFailure::Launch("nope".into()))
        });
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(40);
        let run = Nsga2::default().tune(&eval, 1);
        assert_eq!(run.trials.len(), 40);
        assert_eq!(run.successes(), 0);
        assert!(front_of_run(&run, 8).is_empty());
    }

    #[test]
    fn step_driver_matches_reference_loop_at_batch_one() {
        let p = problem();
        let tuner = Nsga2::default();
        for seed in 0..4 {
            let e1 = Evaluator::with_protocol(&p, Protocol::noiseless())
                .with_energy()
                .with_budget(120);
            let e2 = Evaluator::with_protocol(&p, Protocol::noiseless())
                .with_energy()
                .with_budget(120);
            assert_eq!(tuner.tune(&e1, seed), tuner.reference_tune(&e2, seed));
        }
    }

    #[test]
    fn whole_generation_batches_are_deterministic_and_spread_the_front() {
        let p = problem();
        // batch == population: every generation is asked at once.
        let protocol = Protocol::noiseless().with_batch(24);
        let e1 = Evaluator::with_protocol(&p, protocol)
            .with_energy()
            .with_budget(300);
        let e2 = Evaluator::with_protocol(&p, protocol)
            .with_energy()
            .with_budget(300);
        let a = Nsga2::default().tune(&e1, 3);
        let b = Nsga2::default().tune(&e2, 3);
        assert_eq!(a, b);
        assert_eq!(a.trials.len(), 300);
        // Offspring RNG is independent of in-generation results, so the
        // whole-generation batch replays the serial trial sequence exactly.
        let e3 = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(300);
        let serial = Nsga2::default().tune(&e3, 3);
        assert_eq!(a, serial);
        let front = front_of_run(&a, 32);
        front.check_invariants().unwrap();
        assert!(front.len() >= 10);
    }

    #[test]
    fn transfer_seeds_head_the_initial_population() {
        let p = problem();
        let mut db = bat_tuners::TransferDatabase::new();
        db.record("other-gpu", vec![20, 3]);
        db.record("sim", vec![0, 0]); // same platform: not a transfer seed
        db.record("third-gpu", vec![99, 99]); // unrepresentable: skipped free
        db.record("third-gpu", vec![5, 1]);
        let tuner = Nsga2::warm_started(&db, "sim");
        assert_eq!(tuner.seeds, vec![vec![20, 3], vec![99, 99], vec![5, 1]]);

        let eval = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(60);
        let run = tuner.tune(&eval, 7);
        assert_eq!(run.trials[0].config, vec![20, 3]);
        assert_eq!(run.trials[1].config, vec![5, 1]);
        // Driver and reference agree with seeds present too.
        let e2 = Evaluator::with_protocol(&p, Protocol::noiseless())
            .with_energy()
            .with_budget(60);
        assert_eq!(run, tuner.reference_tune(&e2, 7));
    }

    #[test]
    fn front_of_run_falls_back_to_time_without_energy() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        let p = SyntheticProblem::new("mono", "sim", space, |c| Ok(1.0 + c[0] as f64));
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(30);
        let run = Nsga2::default().tune(&eval, 2);
        let front = front_of_run(&run, 8);
        // energy := time collapses the front to the single best point.
        assert_eq!(front.len(), 1);
        assert_eq!(front.front()[0].time_ms, 1.0);
    }
}
