//! A bounded non-dominated archive over the (time, energy) plane.
//!
//! The archive is the multi-objective analogue of a best-so-far scalar:
//! tuners and reducers feed every successful measurement through
//! [`ParetoArchive::insert`] and the archive maintains the set of mutually
//! non-dominated points, truncated to a capacity bound by NSGA-II crowding
//! distance (interior points in the densest region go first; the extremes
//! of the front are never evicted).
//!
//! Everything is deterministic: insertion order, domination pruning and
//! crowding eviction resolve ties by fixed keys, so archives built from the
//! same measurement stream are identical — which is what lets campaign
//! artifacts embed fronts and stay byte-identical across thread counts.

use serde::{Deserialize, Serialize};

/// One point of a Pareto front: a configuration and its two objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ParetoPoint {
    /// Dense configuration index in the problem's space.
    pub index: u64,
    /// Time objective in milliseconds.
    pub time_ms: f64,
    /// Energy objective in millijoules.
    pub energy_mj: f64,
}

impl ParetoPoint {
    /// True when `self` dominates `other`: no worse on both objectives and
    /// strictly better on at least one (both minimized).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.time_ms <= other.time_ms
            && self.energy_mj <= other.energy_mj
            && (self.time_ms < other.time_ms || self.energy_mj < other.energy_mj)
    }

    /// True when `self` is at least as good as `other` on both objectives
    /// (domination *or* objective-for-objective equality).
    fn covers(&self, other: &ParetoPoint) -> bool {
        self.time_ms <= other.time_ms && self.energy_mj <= other.energy_mj
    }
}

/// A bounded archive of mutually non-dominated points, kept sorted by
/// ascending time (hence descending energy — the canonical 2-D front
/// order).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoArchive {
    capacity: usize,
    points: Vec<ParetoPoint>,
}

impl ParetoArchive {
    /// An empty archive holding at most `capacity` points.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> ParetoArchive {
        assert!(capacity > 0, "archive capacity must be positive");
        ParetoArchive {
            capacity,
            points: Vec::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current front, sorted by ascending time.
    pub fn front(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of archived points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Offer a point. Returns `true` when the point is in the archive
    /// afterwards — i.e. it is not covered by any member (members it
    /// covers are evicted) and it survived any capacity truncation.
    ///
    /// Duplicate objective vectors are kept singly: the incumbent wins, so
    /// re-offering an archived measurement is a no-op.
    pub fn insert(&mut self, p: ParetoPoint) -> bool {
        debug_assert!(
            p.time_ms.is_finite() && p.energy_mj.is_finite(),
            "archive points must be finite"
        );
        if self.points.iter().any(|m| m.covers(&p)) {
            return false;
        }
        self.points.retain(|m| !p.covers(m));
        // Insert in front order. After pruning no member shares p's time
        // coordinate (an equal-time member either covered p or was covered
        // by p), so ascending time is a strict order.
        let at = self.points.partition_point(|m| m.time_ms < p.time_ms);
        self.points.insert(at, p);
        if self.points.len() > self.capacity {
            let evicted = self.evict_most_crowded();
            // The newcomer itself may have been the most crowded point.
            return evicted != at;
        }
        true
    }

    /// Drop the interior point with the smallest crowding distance (the
    /// first such point in front order on ties); returns its position.
    /// Extreme points have infinite distance and survive; capacity 1
    /// keeps the fastest point.
    fn evict_most_crowded(&mut self) -> usize {
        let n = self.points.len();
        if n <= 2 {
            // Over capacity with ≤ 2 points means capacity 1: drop the
            // slower extreme.
            self.points.truncate(self.capacity.max(1));
            return self.points.len();
        }
        let t_span = (self.points[n - 1].time_ms - self.points[0].time_ms).max(f64::MIN_POSITIVE);
        let e_span =
            (self.points[0].energy_mj - self.points[n - 1].energy_mj).max(f64::MIN_POSITIVE);
        let mut evict = 1;
        let mut min_d = f64::INFINITY;
        for i in 1..n - 1 {
            let d = (self.points[i + 1].time_ms - self.points[i - 1].time_ms) / t_span
                + (self.points[i - 1].energy_mj - self.points[i + 1].energy_mj) / e_span;
            if d < min_d {
                min_d = d;
                evict = i;
            }
        }
        self.points.remove(evict);
        evict
    }

    /// Hypervolume dominated by the front w.r.t. `reference`
    /// (both objectives minimized; points beyond the reference contribute
    /// nothing). The standard 2-D sweep: rectangles between consecutive
    /// front points.
    pub fn hypervolume(&self, reference: (f64, f64)) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.time_ms, p.energy_mj))
            .collect();
        crate::hypervolume_2d(&pts, reference)
    }

    /// Debug invariant: no member covers another and the front is sorted.
    /// Cheap enough for property tests; not called on the hot path.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, a) in self.points.iter().enumerate() {
            for (j, b) in self.points.iter().enumerate() {
                if i != j && a.covers(b) {
                    return Err(format!("point {i} covers point {j}: {a:?} vs {b:?}"));
                }
            }
        }
        for w in self.points.windows(2) {
            if !(w[0].time_ms < w[1].time_ms && w[0].energy_mj > w[1].energy_mj) {
                return Err(format!("front order violated: {:?} then {:?}", w[0], w[1]));
            }
        }
        if self.points.len() > self.capacity {
            return Err(format!(
                "over capacity: {} > {}",
                self.points.len(),
                self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(index: u64, t: f64, e: f64) -> ParetoPoint {
        ParetoPoint {
            index,
            time_ms: t,
            energy_mj: e,
        }
    }

    #[test]
    fn dominated_points_are_rejected() {
        let mut a = ParetoArchive::new(8);
        assert!(a.insert(p(0, 1.0, 10.0)));
        assert!(!a.insert(p(1, 2.0, 20.0)));
        assert!(!a.insert(p(2, 1.0, 10.0))); // duplicate objectives
        assert_eq!(a.len(), 1);
        a.check_invariants().unwrap();
    }

    #[test]
    fn dominating_point_evicts_the_dominated() {
        let mut a = ParetoArchive::new(8);
        a.insert(p(0, 2.0, 20.0));
        a.insert(p(1, 3.0, 10.0));
        assert!(a.insert(p(2, 1.5, 12.0))); // dominates point 0, coexists with point 1
        assert_eq!(a.len(), 2);
        assert!(a.front().iter().all(|m| m.index != 0));
        a.check_invariants().unwrap();
    }

    #[test]
    fn front_is_sorted_by_time() {
        let mut a = ParetoArchive::new(8);
        a.insert(p(0, 3.0, 1.0));
        a.insert(p(1, 1.0, 3.0));
        a.insert(p(2, 2.0, 2.0));
        let times: Vec<f64> = a.front().iter().map(|m| m.time_ms).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        a.check_invariants().unwrap();
    }

    #[test]
    fn crowding_truncation_keeps_extremes() {
        let mut a = ParetoArchive::new(3);
        // A dense front of 5 mutually non-dominated points.
        for (i, (t, e)) in [(1.0, 5.0), (1.1, 4.9), (1.2, 4.8), (3.0, 2.0), (5.0, 1.0)]
            .iter()
            .enumerate()
        {
            a.insert(p(i as u64, *t, *e));
        }
        assert_eq!(a.len(), 3);
        // The two extremes always survive.
        assert_eq!(a.front().first().unwrap().time_ms, 1.0);
        assert_eq!(a.front().last().unwrap().time_ms, 5.0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn insertion_is_deterministic() {
        let pts: Vec<ParetoPoint> = (0u32..200)
            .map(|i| {
                let t = 1.0 + f64::from((i * 37) % 101) / 10.0;
                let e = 1.0 + f64::from((i * 61) % 97) / 10.0;
                p(u64::from(i), t, e)
            })
            .collect();
        let mut a = ParetoArchive::new(16);
        let mut b = ParetoArchive::new(16);
        for q in &pts {
            a.insert(*q);
            b.insert(*q);
        }
        assert_eq!(a, b);
        a.check_invariants().unwrap();
    }

    #[test]
    fn capacity_one_keeps_the_fastest_point() {
        let mut a = ParetoArchive::new(1);
        a.insert(p(0, 2.0, 1.0));
        assert!(a.insert(p(1, 1.0, 5.0)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.front()[0].time_ms, 1.0);
        // A non-dominated but slower point is truncated straight back out
        // — insert must report that it did not stay.
        assert!(!a.insert(p(2, 3.0, 0.5)));
        assert_eq!(a.front()[0].time_ms, 1.0);
    }

    #[test]
    fn insert_reports_false_when_crowded_straight_back_out() {
        let mut a = ParetoArchive::new(3);
        for (i, (t, e)) in [(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)].iter().enumerate() {
            assert!(a.insert(p(i as u64, *t, *e)));
        }
        // (2.9, 3.1) is non-dominated but lands in the densest region and
        // is the crowding-eviction victim itself.
        assert!(!a.insert(p(9, 2.9, 3.1)));
        assert_eq!(a.len(), 3);
        assert!(a.front().iter().all(|m| m.index != 9));
        a.check_invariants().unwrap();
    }

    #[test]
    fn hypervolume_of_a_simple_front() {
        let mut a = ParetoArchive::new(8);
        a.insert(p(0, 1.0, 3.0));
        a.insert(p(1, 2.0, 1.0));
        // Reference (4, 4): rectangles (4-1)×(4-3) + (4-2)×(3-1) = 3 + 4.
        assert!((a.hypervolume((4.0, 4.0)) - 7.0).abs() < 1e-12);
    }
}
