//! CUDA occupancy calculation.
//!
//! Reimplements the classic occupancy calculator: the number of thread
//! blocks resident on one SM is the minimum over four limits (warp slots,
//! registers, shared memory, block slots), with register allocation rounded
//! to the hardware granularity. Occupancy cliffs caused by register pressure
//! and shared-memory usage are the dominant source of structure in GPU
//! tuning landscapes, so this calculation is load-bearing for the whole
//! reproduction.

use std::fmt;

use serde::Serialize;

use crate::arch::GpuArch;

/// Per-block resource demands of a compiled kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BlockResources {
    /// Threads per block (must be 1..=arch limit).
    pub threads: u32,
    /// Registers per thread as allocated by the compiler.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub smem_bytes: u32,
    /// `__launch_bounds__` minimum-blocks hint (0 = unset). The compiler
    /// limits register usage to honour it; the runtime does not schedule
    /// more blocks than other limits allow.
    pub launch_bounds_blocks: u32,
}

/// Why a configuration cannot be launched on an architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum LaunchError {
    /// Block has zero threads.
    ZeroThreads,
    /// Threads per block exceed the hardware limit.
    TooManyThreads {
        /// Requested threads per block.
        requested: u32,
        /// Hardware limit.
        limit: u32,
    },
    /// Shared memory per block exceeds the hardware limit.
    SharedMemExceeded {
        /// Requested bytes.
        requested: u32,
        /// Hardware limit in bytes.
        limit: u32,
    },
    /// Register file cannot hold even one block.
    RegistersExceeded {
        /// Registers needed by one block.
        requested: u32,
        /// Register file size.
        limit: u32,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::ZeroThreads => f.write_str("block has zero threads"),
            LaunchError::TooManyThreads { requested, limit } => {
                write!(f, "{requested} threads/block exceeds limit {limit}")
            }
            LaunchError::SharedMemExceeded { requested, limit } => {
                write!(f, "{requested} B shared memory exceeds limit {limit} B")
            }
            LaunchError::RegistersExceeded { requested, limit } => {
                write!(f, "{requested} registers/block exceeds file size {limit}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Which resource limits the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Limiter {
    /// Warp slots per SM.
    Warps,
    /// Register file.
    Registers,
    /// Shared memory.
    SharedMem,
    /// Block slots per SM.
    Blocks,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps: u32,
    /// `active_warps / max_warps` in 0..=1.
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

/// Compute occupancy of `res` on `arch`.
pub fn occupancy(arch: &GpuArch, res: &BlockResources) -> Result<Occupancy, LaunchError> {
    if res.threads == 0 {
        return Err(LaunchError::ZeroThreads);
    }
    if res.threads > arch.max_threads_per_block {
        return Err(LaunchError::TooManyThreads {
            requested: res.threads,
            limit: arch.max_threads_per_block,
        });
    }
    if res.smem_bytes > arch.shared_mem_per_block {
        return Err(LaunchError::SharedMemExceeded {
            requested: res.smem_bytes,
            limit: arch.shared_mem_per_block,
        });
    }

    let warps_per_block = res.threads.div_ceil(arch.warp_size);

    // Warp-slot limit.
    let max_warps = arch.max_warps_per_sm();
    let by_warps = max_warps / warps_per_block;

    // Register limit: allocation is per warp, rounded up to the granularity.
    let regs = res.regs_per_thread.max(16); // hardware minimum allocation
    let regs_per_warp = (regs * arch.warp_size).div_ceil(arch.register_alloc_granularity)
        * arch.register_alloc_granularity;
    let regs_per_block = regs_per_warp * warps_per_block;
    if regs_per_block > arch.registers_per_sm {
        return Err(LaunchError::RegistersExceeded {
            requested: regs_per_block,
            limit: arch.registers_per_sm,
        });
    }
    let by_regs = arch.registers_per_sm / regs_per_block;

    // Shared-memory limit (a block with no shared memory is unconstrained).
    let by_smem = arch
        .shared_mem_per_sm
        .checked_div(res.smem_bytes)
        .unwrap_or(u32::MAX);

    // Block-slot limit.
    let by_blocks = arch.max_blocks_per_sm;

    let mut blocks = by_warps.min(by_regs).min(by_smem).min(by_blocks);
    if blocks == 0 {
        // by_warps can be zero when a block has more warps than an SM can
        // hold resident; but threads<=1024 and max_threads_per_sm>=1024 on
        // all modeled parts, so this cannot happen. Defensive:
        blocks = 1;
    }

    let limiter = if blocks == by_warps {
        Limiter::Warps
    } else if blocks == by_regs {
        Limiter::Registers
    } else if blocks == by_smem {
        Limiter::SharedMem
    } else {
        Limiter::Blocks
    };

    let active_warps = blocks * warps_per_block;
    Ok(Occupancy {
        blocks_per_sm: blocks,
        active_warps,
        occupancy: f64::from(active_warps) / f64::from(max_warps),
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(threads: u32, regs: u32, smem: u32) -> BlockResources {
        BlockResources {
            threads,
            regs_per_thread: regs,
            smem_bytes: smem,
            launch_bounds_blocks: 0,
        }
    }

    #[test]
    fn full_occupancy_small_kernel() {
        let arch = GpuArch::rtx_2080_ti();
        let o = occupancy(&arch, &res(256, 32, 0)).unwrap();
        // 256 threads = 8 warps; 32 warps max -> 4 blocks; regs: 32*32=1024
        // regs/warp -> 8192/block -> 8 blocks; warps bind.
        assert_eq!(o.blocks_per_sm, 4);
        assert_eq!(o.active_warps, 32);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
        assert_eq!(o.limiter, Limiter::Warps);
    }

    #[test]
    fn register_pressure_reduces_occupancy() {
        let arch = GpuArch::rtx_2080_ti();
        let low = occupancy(&arch, &res(256, 32, 0)).unwrap();
        let high = occupancy(&arch, &res(256, 128, 0)).unwrap();
        assert!(high.active_warps < low.active_warps);
        assert_eq!(high.limiter, Limiter::Registers);
        // 128 regs * 32 = 4096/warp, 8 warps -> 32768/block -> 2 blocks.
        assert_eq!(high.blocks_per_sm, 2);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        let arch = GpuArch::rtx_2080_ti();
        let o = occupancy(&arch, &res(128, 32, 48 * 1024)).unwrap();
        // 64 KiB/SM with 48 KiB blocks -> 1 block.
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::SharedMem);
    }

    #[test]
    fn ampere_holds_more_warps() {
        let turing = GpuArch::rtx_2080_ti();
        let ampere = GpuArch::rtx_3090();
        let r = res(128, 32, 0);
        let ot = occupancy(&turing, &r).unwrap();
        let oa = occupancy(&ampere, &r).unwrap();
        assert!(oa.active_warps > ot.active_warps);
    }

    #[test]
    fn too_many_threads_is_launch_error() {
        let arch = GpuArch::rtx_3090();
        assert!(matches!(
            occupancy(&arch, &res(2048, 32, 0)),
            Err(LaunchError::TooManyThreads { .. })
        ));
    }

    #[test]
    fn smem_over_block_limit_is_launch_error() {
        let arch = GpuArch::rtx_2080_ti();
        assert!(matches!(
            occupancy(&arch, &res(128, 32, 128 * 1024)),
            Err(LaunchError::SharedMemExceeded { .. })
        ));
    }

    #[test]
    fn regs_over_file_is_launch_error() {
        let arch = GpuArch::rtx_2080_ti();
        // 255 regs * 1024 threads ≈ 261k > 64k file.
        assert!(matches!(
            occupancy(&arch, &res(1024, 255, 0)),
            Err(LaunchError::RegistersExceeded { .. })
        ));
    }

    #[test]
    fn partial_warp_blocks_round_up() {
        let arch = GpuArch::rtx_2080_ti();
        let o = occupancy(&arch, &res(48, 32, 0)).unwrap();
        // 48 threads -> 2 warp slots per block.
        assert_eq!(o.active_warps % 2, 0);
    }

    #[test]
    fn block_slot_limit_binds_tiny_blocks() {
        let arch = GpuArch::rtx_2080_ti();
        let o = occupancy(&arch, &res(32, 16, 0)).unwrap();
        // 1 warp/block: warps allow 32 blocks but slots cap at 16.
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.limiter, Limiter::Blocks);
    }
}
