//! The analytical timing model.
//!
//! Prices one kernel launch on one architecture as the maximum of three
//! throughput bounds — FP/INT issue, DRAM/L2 bandwidth, shared-memory
//! bandwidth — where the memory bound is additionally capped by a
//! Little's-law concurrency limit (low occupancy cannot keep enough bytes in
//! flight to reach peak bandwidth) and the compute bound by pipeline
//! utilization (few warps × low ILP cannot hide ALU latency). Wave
//! quantization rounds the block count up to whole waves.
//!
//! This is a descendant of the Hong–Kim MWP/CWP model and the roofline
//! model, specialized to what GPU *tuning parameters* actually move:
//! occupancy, coalescing, vector widths, unrolling (ILP and register
//! pressure), shared-memory staging and bank conflicts, divergence, and
//! wave/tail effects.

use serde::Serialize;

use crate::arch::{Family, GpuArch};
use crate::kernel_model::KernelModel;
use crate::occupancy::{occupancy, LaunchError, Occupancy};

/// Which bound dominates the predicted runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Bound {
    /// Arithmetic issue rate.
    Compute,
    /// DRAM / L2 bandwidth (possibly concurrency-capped).
    Memory,
    /// Shared-memory bandwidth (incl. bank conflicts).
    SharedMem,
    /// Fixed overhead dominates (tiny grids).
    Overhead,
}

/// Breakdown of one priced kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelTiming {
    /// Predicted wall time of the launch in milliseconds (no noise).
    pub time_ms: f64,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Dominant bound.
    pub bound: Bound,
    /// Number of block waves (ceil of grid / resident blocks).
    pub waves: u64,
    /// Compute-bound time (ms).
    pub compute_ms: f64,
    /// Memory-bound time (ms).
    pub memory_ms: f64,
    /// Shared-memory-bound time (ms).
    pub smem_ms: f64,
}

/// Price one launch of `model` on `arch`.
///
/// Returns a [`LaunchError`] when the configuration cannot run on this
/// architecture at all (too many threads, shared memory or registers) —
/// this is what populates the architecture-dependent "Valid" column of
/// Table VIII.
pub fn execute(arch: &GpuArch, model: &KernelModel) -> Result<KernelTiming, LaunchError> {
    debug_assert_eq!(model.validate(), Ok(()));
    let occ = occupancy(arch, &model.block_resources())?;

    let blocks_in_flight = u64::from(occ.blocks_per_sm) * u64::from(arch.sm_count);
    let waves = model.grid_blocks.div_ceil(blocks_in_flight);
    // Effective parallelism of the final (partial) wave is included by
    // pricing whole waves: total work of `waves * blocks_in_flight` blocks.
    let wave_quantization = (waves * blocks_in_flight) as f64 / model.grid_blocks as f64;

    let total_threads = model.total_threads();

    // ---- Compute bound -------------------------------------------------
    // FP32 pipe: FMA retires 2 FLOPs per lane-cycle.
    let fp_cycles_per_sm_thread = model.flops_per_thread / 2.0;
    // INT pipe: Turing has an independent INT32 datapath (int overlaps with
    // fp); Ampere shares half of its FP32 lanes with INT32, so integer
    // instructions steal fp issue slots.
    let (fp_lane_cycles, int_lane_cycles) = match arch.family {
        Family::Turing => {
            let fp = fp_cycles_per_sm_thread;
            let int = model.int_ops_per_thread;
            // Independent pipes: the slower one binds.
            (fp.max(int), 0.0)
        }
        Family::Ampere => (fp_cycles_per_sm_thread, model.int_ops_per_thread),
    };
    // Execution is warp-granular: a block of fewer than 32 threads (or a
    // ragged tail warp) still occupies full warp issue slots, so partial
    // warps waste lanes proportionally.
    let warps_per_block = model.threads_per_block.div_ceil(arch.warp_size);
    let lane_util =
        f64::from(model.threads_per_block) / f64::from(warps_per_block * arch.warp_size);
    let lane_cycles_per_thread = (fp_lane_cycles + int_lane_cycles) * model.divergence_factor;
    let total_lane_cycles = lane_cycles_per_thread * total_threads * wave_quantization / lane_util;
    let lanes = f64::from(arch.sm_count) * f64::from(arch.fp32_per_sm);
    // Pipeline utilization: enough warps×ILP must be in flight to cover ALU
    // latency. Warps needed per SM = (lanes/warp) × latency.
    let warps_needed =
        f64::from(arch.fp32_per_sm) / f64::from(arch.warp_size) * arch.alu_latency_cycles;
    let issue_util = ((f64::from(occ.active_warps) * model.ilp) / warps_needed).min(1.0);
    let compute_s = total_lane_cycles / (lanes * arch.clock_ghz * 1e9 * issue_util.max(1e-3));

    // ---- Memory bound ---------------------------------------------------
    let dram_bytes = model.gmem_bytes_per_thread * (1.0 - model.l2_hit_rate) * total_threads;
    let l2_bytes = model.gmem_bytes_per_thread * model.l2_hit_rate * total_threads;
    let spill_bytes = model.spill_bytes_per_thread * total_threads;
    // Little's law: achievable bandwidth = bytes-in-flight / latency.
    let latency_cycles = if model.uses_readonly_cache {
        arch.dram_latency_cycles * 0.75
    } else {
        arch.dram_latency_cycles
    };
    let latency_s = latency_cycles / (arch.clock_ghz * 1e9);
    // Each active warp keeps roughly min(ilp, 8) 32-byte sectors in flight
    // per outstanding load instruction.
    let mlp = model.ilp.clamp(1.0, 8.0);
    let inflight_bytes = f64::from(occ.active_warps)
        * f64::from(arch.sm_count)
        * f64::from(arch.warp_size)
        * mlp
        * 4.0; // bytes per lane-access kept in flight
    let achievable_bw = (inflight_bytes / latency_s).min(arch.mem_bandwidth_gbs * 1e9);
    let eff_dram_bw = achievable_bw * model.coalescing;
    let memory_s = if dram_bytes + l2_bytes + spill_bytes > 0.0 {
        dram_bytes * wave_quantization / eff_dram_bw.max(1.0)
            + l2_bytes * wave_quantization / (arch.l2_bandwidth_gbs * 1e9)
            + spill_bytes * wave_quantization / (arch.l2_bandwidth_gbs * 1e9 * 0.5)
    } else {
        0.0
    };

    // ---- Shared-memory bound ---------------------------------------------
    let smem_bytes_total = model.smem_accesses_per_thread
        * 4.0
        * model.bank_conflict_factor
        * total_threads
        * wave_quantization
        / lane_util;
    let smem_bw = f64::from(arch.sm_count) * arch.smem_bytes_per_cycle * arch.clock_ghz * 1e9;
    let smem_s = smem_bytes_total / smem_bw;

    // ---- Combine ----------------------------------------------------------
    let overhead_s = arch.launch_overhead_us * 1e-6;
    let body_s = compute_s.max(memory_s).max(smem_s);
    // Bounds overlap imperfectly in real hardware; add a small fraction of
    // the non-dominant bounds to avoid knife-edge max() artifacts.
    let secondary = (compute_s + memory_s + smem_s - body_s) * 0.15;
    let time_s = body_s + secondary + overhead_s;

    let bound = if overhead_s > body_s {
        Bound::Overhead
    } else if body_s == compute_s {
        Bound::Compute
    } else if body_s == memory_s {
        Bound::Memory
    } else {
        Bound::SharedMem
    };

    Ok(KernelTiming {
        time_ms: time_s * 1e3,
        occupancy: occ,
        bound,
        waves,
        compute_ms: compute_s * 1e3,
        memory_ms: memory_s * 1e3,
        smem_ms: smem_s * 1e3,
    })
}

/// Price `launches` back-to-back launches of the same kernel (used by
/// iterative applications such as Hotspot, where temporal tiling trades
/// fewer launches for redundant computation).
pub fn execute_repeated(
    arch: &GpuArch,
    model: &KernelModel,
    launches: u64,
) -> Result<f64, LaunchError> {
    let t = execute(arch, model)?;
    Ok(t.time_ms * launches as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_kernel() -> KernelModel {
        let mut m = KernelModel::new("flops", 1 << 14, 256);
        m.flops_per_thread = 20_000.0;
        m.ilp = 4.0;
        m
    }

    fn memory_kernel() -> KernelModel {
        let mut m = KernelModel::new("stream", 1 << 14, 256);
        m.gmem_bytes_per_thread = 1024.0;
        m.gmem_transactions_per_thread = 256.0;
        m.ilp = 4.0;
        m
    }

    #[test]
    fn compute_kernel_is_compute_bound() {
        let t = execute(&GpuArch::rtx_3090(), &compute_kernel()).unwrap();
        assert_eq!(t.bound, Bound::Compute);
        assert!(t.time_ms > 0.0);
    }

    #[test]
    fn memory_kernel_is_memory_bound() {
        let t = execute(&GpuArch::rtx_3090(), &memory_kernel()).unwrap();
        assert_eq!(t.bound, Bound::Memory);
    }

    #[test]
    fn compute_kernel_near_peak_flops() {
        let arch = GpuArch::rtx_3090();
        let m = compute_kernel();
        let t = execute(&arch, &m).unwrap();
        let flops = m.flops_per_thread * m.total_threads();
        let gflops = flops / (t.time_ms * 1e-3) / 1e9;
        // Within 50%..100% of peak (secondary terms and launch overhead eat some).
        assert!(gflops < arch.peak_gflops());
        assert!(
            gflops > 0.5 * arch.peak_gflops(),
            "{gflops} vs peak {}",
            arch.peak_gflops()
        );
    }

    #[test]
    fn memory_kernel_near_peak_bandwidth() {
        let arch = GpuArch::rtx_3090();
        let m = memory_kernel();
        let t = execute(&arch, &m).unwrap();
        let bytes = m.gmem_bytes_per_thread * m.total_threads();
        let gbs = bytes / (t.time_ms * 1e-3) / 1e9;
        assert!(gbs < arch.mem_bandwidth_gbs);
        assert!(
            gbs > 0.5 * arch.mem_bandwidth_gbs,
            "{gbs} vs peak {}",
            arch.mem_bandwidth_gbs
        );
    }

    #[test]
    fn poor_coalescing_slows_memory_kernels() {
        let arch = GpuArch::rtx_3090();
        let good = execute(&arch, &memory_kernel()).unwrap();
        let mut bad_model = memory_kernel();
        bad_model.coalescing = 0.25;
        let bad = execute(&arch, &bad_model).unwrap();
        assert!(bad.time_ms > 2.0 * good.time_ms);
    }

    #[test]
    fn low_occupancy_throttles_bandwidth() {
        let arch = GpuArch::rtx_3090();
        let mut m = memory_kernel();
        m.regs_per_thread = 255; // crushes occupancy
        m.threads_per_block = 32;
        m.ilp = 1.0; // no memory-level parallelism to compensate
        let starved = execute(&arch, &m).unwrap();
        let healthy = execute(&arch, &memory_kernel()).unwrap();
        let b_starved = m.gmem_bytes_per_thread * m.total_threads() / (starved.time_ms * 1e-3);
        let healthy_model = memory_kernel();
        let b_healthy = healthy_model.gmem_bytes_per_thread * healthy_model.total_threads()
            / (healthy.time_ms * 1e-3);
        assert!(b_starved < b_healthy);
    }

    #[test]
    fn bank_conflicts_slow_smem_kernels() {
        let arch = GpuArch::rtx_2080_ti();
        let mut m = KernelModel::new("smem", 1 << 14, 256);
        m.smem_accesses_per_thread = 4096.0;
        m.ilp = 4.0;
        let clean = execute(&arch, &m).unwrap();
        m.bank_conflict_factor = 8.0;
        let conflicted = execute(&arch, &m).unwrap();
        assert!(conflicted.time_ms > 4.0 * clean.time_ms);
        assert_eq!(conflicted.bound, Bound::SharedMem);
    }

    #[test]
    fn tiny_grids_pay_launch_overhead() {
        let arch = GpuArch::rtx_3090();
        let mut m = KernelModel::new("tiny", 1, 32);
        m.flops_per_thread = 10.0;
        let t = execute(&arch, &m).unwrap();
        assert_eq!(t.bound, Bound::Overhead);
        assert!(t.time_ms >= arch.launch_overhead_us * 1e-3);
    }

    #[test]
    fn wave_quantization_counts_whole_waves() {
        let arch = GpuArch::rtx_3090();
        let m = compute_kernel();
        let t = execute(&arch, &m).unwrap();
        assert!(t.waves >= 1);
        let blocks_in_flight = u64::from(t.occupancy.blocks_per_sm) * u64::from(arch.sm_count);
        assert_eq!(t.waves, m.grid_blocks.div_ceil(blocks_in_flight));
    }

    #[test]
    fn faster_gpu_is_faster_on_both_bounds() {
        let slow = GpuArch::rtx_3060();
        let fast = GpuArch::rtx_3090();
        for m in [compute_kernel(), memory_kernel()] {
            let ts = execute(&slow, &m).unwrap();
            let tf = execute(&fast, &m).unwrap();
            assert!(tf.time_ms < ts.time_ms, "{}", m.name);
        }
    }

    #[test]
    fn repeated_execution_scales_linearly() {
        let arch = GpuArch::rtx_3090();
        let m = compute_kernel();
        let one = execute_repeated(&arch, &m, 1).unwrap();
        let ten = execute_repeated(&arch, &m, 10).unwrap();
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn launch_error_propagates() {
        let arch = GpuArch::rtx_2080_ti();
        let mut m = KernelModel::new("huge-smem", 16, 256);
        m.smem_per_block = 90 * 1024; // fits Ampere (99 KiB) but not Turing
        assert!(execute(&arch, &m).is_err());
        assert!(execute(&GpuArch::rtx_3090(), &m).is_ok());
    }
}
