//! Deterministic measurement noise.
//!
//! Real benchmarking observes run-to-run variation from clocks, DVFS and
//! scheduling. We reproduce that with a *deterministic* multiplicative noise
//! keyed by (architecture, kernel, configuration, run index): the suite
//! stays perfectly reproducible while per-run samples still scatter, so the
//! measurement protocol (multiple runs, take a robust aggregate) is
//! exercised for real.

/// SplitMix64: tiny, high-quality 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combine hash keys.
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// Uniform f64 in [0, 1) from a hash key.
#[inline]
pub(crate) fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard-normal-ish variate from a hash key (sum of 4 uniforms,
/// Irwin–Hall; cheap, bounded to ±~3.5σ which suits runtime noise).
#[inline]
fn gaussish(x: u64) -> f64 {
    let s = unit(x) + unit(x.wrapping_add(1)) + unit(x.wrapping_add(2)) + unit(x.wrapping_add(3));
    // Irwin-Hall(4): mean 2, var 4/12 -> standardize.
    (s - 2.0) / (4.0f64 / 12.0).sqrt()
}

/// Apply multiplicative measurement noise to a pure model time.
///
/// `sigma` is the relative standard deviation (~0.01 for a well-cooled GPU).
/// The noise floor is clamped so times never go non-positive.
#[inline]
pub fn noisy_time_ms(pure_ms: f64, sigma: f64, key: u64) -> f64 {
    let factor = (1.0 + sigma * gaussish(key)).max(0.5);
    pure_ms * factor
}

/// Build a noise key from architecture salt, a configuration identifier and
/// a run index.
#[inline]
pub fn noise_key(arch_salt: u64, config_key: u64, run: u32) -> u64 {
    mix(mix(arch_salt, config_key), u64::from(run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let a = noisy_time_ms(10.0, 0.01, noise_key(1, 2, 3));
        let b = noisy_time_ms(10.0, 0.01, noise_key(1, 2, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn noise_differs_across_runs() {
        let a = noisy_time_ms(10.0, 0.01, noise_key(1, 2, 0));
        let b = noisy_time_ms(10.0, 0.01, noise_key(1, 2, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn noise_is_small_and_positive() {
        for run in 0..10_000 {
            let t = noisy_time_ms(10.0, 0.01, noise_key(42, 7, run));
            assert!(t > 0.0);
            assert!((t - 10.0).abs() < 10.0 * 0.10, "noise too large: {t}");
        }
    }

    #[test]
    fn noise_has_roughly_right_spread() {
        let n = 20_000u32;
        let sigma = 0.02;
        let samples: Vec<f64> = (0..n)
            .map(|r| noisy_time_ms(1.0, sigma, noise_key(9, 9, r)))
            .collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!((mean - 1.0).abs() < 0.002, "mean {mean}");
        let sd = var.sqrt();
        assert!((sd - sigma).abs() < 0.004, "sd {sd}");
    }

    #[test]
    fn zero_sigma_is_exact() {
        assert_eq!(noisy_time_ms(3.25, 0.0, noise_key(1, 2, 3)), 3.25);
    }
}
