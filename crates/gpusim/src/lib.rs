//! # bat-gpusim
//!
//! The hardware substrate of BAT-rs: an analytical GPU performance simulator
//! standing in for the paper's physical testbed (RTX 2080 Ti, RTX 3060,
//! RTX 3090, RTX Titan).
//!
//! A benchmark maps each tuning configuration to a [`KernelModel`] (launch
//! geometry, per-block resources, per-thread work profile); [`execute`]
//! prices that launch on a [`GpuArch`] by combining
//!
//! * a faithful CUDA **occupancy calculation** ([`occupancy`]),
//! * a roofline of **compute / DRAM / shared-memory** bounds,
//! * a **Little's-law** concurrency cap that makes low occupancy starve
//!   memory bandwidth, and
//! * **wave quantization** and launch overhead.
//!
//! Configurations that exceed hardware limits return a [`LaunchError`] —
//! these populate the architecture-dependent "Valid" counts of the paper's
//! Table VIII. Deterministic multiplicative noise ([`noisy_time_ms`]) stands
//! in for run-to-run measurement variation without sacrificing
//! reproducibility.
//!
//! [`execute_with_energy`] additionally prices the launch's electrical cost
//! (static + occupancy-scaled background power plus per-operation switching
//! energy), giving every configuration a deterministic `energy_mj` next to
//! its `time_ms` — the second objective of the suite's multi-objective
//! tuning scenarios.
//!
//! [`FaultModel`] layers seeded, deterministic *fault injection* on top:
//! transient launch flakes, measurement timeouts, corrupted outlier
//! samples and sticky crashed configurations, all drawn from the same
//! counter-based discipline as the measurement noise — off by default.

#![warn(missing_docs)]

mod arch;
mod fault;
mod kernel_model;
mod noise;
mod occupancy;
mod power;
mod timing;

pub use arch::{Family, GpuArch};
pub use fault::FaultModel;
pub use kernel_model::KernelModel;
pub use noise::{mix, noise_key, noisy_time_ms};
pub use occupancy::{occupancy, BlockResources, LaunchError, Limiter, Occupancy};
pub use power::{execute_with_energy, execute_with_energy_repeated, launch_power, KernelPower};
pub use timing::{execute, execute_repeated, Bound, KernelTiming};
