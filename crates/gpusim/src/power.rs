//! The analytical power/energy model.
//!
//! Prices the electrical cost of one kernel launch the same way
//! [`crate::execute`] prices its wall time: deterministically, from the
//! architecture constants and the launch's work profile. The model splits
//! draw into
//!
//! * **static/idle power** — leakage and always-on infrastructure, scaling
//!   with SM count (burns for the whole launch, so slow configurations pay
//!   it longest);
//! * **active background power** — clock trees, schedulers and register
//!   files of busy SMs, scaling with occupancy and clock (high-occupancy
//!   configurations finish sooner but draw more while running);
//! * **dynamic switching energy** — per-operation energy for FP/INT issue,
//!   DRAM, L2 and shared-memory traffic, scaling with the *total* work
//!   (redundant computation, register spills and uncoalesced overfetch cost
//!   energy even when latency hiding keeps them off the critical path).
//!
//! Together these make runtime and energy genuinely distinct objectives:
//! a configuration that trades extra arithmetic for fewer memory stalls can
//! win on time while losing on energy, which is exactly the trade-off the
//! multi-objective tuners in `bat-moo` explore.
//!
//! Per-op energies follow the standard CMOS scaling argument (switching
//! energy ∝ V² with V roughly tracking clock, so pJ/op ∝ (clock/1.5 GHz)²)
//! with a process factor separating Samsung 8 nm Ampere from TSMC 12 nm
//! Turing. Constants are calibrated so sustained draw on the modeled parts
//! lands near their board-power envelopes (RTX 3090 ≈ 320 W flat-out,
//! RTX 3060 ≈ 170 W), not fitted to any measured trace.

use serde::Serialize;

use crate::arch::{Family, GpuArch};
use crate::kernel_model::KernelModel;
use crate::occupancy::LaunchError;
use crate::timing::{execute, KernelTiming};

/// Base dynamic energy per FP32 FLOP in pJ, at 1.5 GHz on 12 nm.
const E_FLOP_PJ: f64 = 4.6;
/// Base dynamic energy per INT32 op in pJ, at 1.5 GHz on 12 nm.
const E_INT_PJ: f64 = 2.2;
/// DRAM access energy per byte actually fetched, in pJ (GDDR6 device + PHY
/// + on-die traversal).
const E_DRAM_PJ_PER_BYTE: f64 = 105.0;
/// L2 access energy per byte, in pJ.
const E_L2_PJ_PER_BYTE: f64 = 14.0;
/// Shared-memory access energy per byte, in pJ.
const E_SMEM_PJ_PER_BYTE: f64 = 5.0;
/// Idle board power independent of GPU size, in W (VRAM refresh, VRM loss,
/// display/PCIe infrastructure).
const P_IDLE_BASE_W: f64 = 18.0;
/// Idle leakage per SM, in W.
const P_IDLE_PER_SM_W: f64 = 0.38;
/// Active background power per fully-occupied SM at 1.5 GHz on 12 nm, in W
/// (clock distribution, warp schedulers, register-file standby).
const P_ACTIVE_PER_SM_W: f64 = 1.15;

/// Process/design energy factor relative to 12 nm Turing.
fn family_factor(family: Family) -> f64 {
    match family {
        Family::Turing => 1.0,
        // Samsung 8 nm: denser, lower switching energy per op.
        Family::Ampere => 0.82,
    }
}

/// Electrical breakdown of one priced kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelPower {
    /// Total energy of the launch in millijoules (no noise).
    pub energy_mj: f64,
    /// Average power over the launch in watts.
    pub avg_power_w: f64,
    /// Static/idle draw in watts.
    pub static_w: f64,
    /// Occupancy-scaled active background draw in watts.
    pub active_w: f64,
    /// Dynamic switching energy in millijoules (work-proportional part).
    pub dynamic_mj: f64,
}

/// Price the energy of a launch whose timing is already known.
///
/// Split out from [`execute_with_energy`] so callers that already priced
/// the launch (or want to price many energy scenarios against one timing)
/// do not pay the occupancy/roofline walk twice.
pub fn launch_power(arch: &GpuArch, model: &KernelModel, timing: &KernelTiming) -> KernelPower {
    let fam = family_factor(arch.family);
    let clock_scale = arch.clock_ghz / 1.5;
    let per_op_scale = clock_scale * clock_scale * fam;
    let total_threads = model.total_threads();

    // ---- Dynamic switching energy (work-proportional) -------------------
    let e_flop = model.flops_per_thread * E_FLOP_PJ * per_op_scale;
    let e_int = model.int_ops_per_thread * E_INT_PJ * per_op_scale;
    // Poorly coalesced loads fetch whole sectors for few useful bytes: the
    // DRAM pays for everything fetched, not everything used.
    let fetched_bytes =
        model.gmem_bytes_per_thread * (1.0 - model.l2_hit_rate) / model.coalescing.max(1e-3);
    let e_dram = fetched_bytes * E_DRAM_PJ_PER_BYTE;
    let l2_bytes = model.gmem_bytes_per_thread * model.l2_hit_rate + model.spill_bytes_per_thread;
    let e_l2 = l2_bytes * E_L2_PJ_PER_BYTE;
    // Bank conflicts serialize *and* re-drive the banks.
    let smem_bytes = model.smem_accesses_per_thread * 4.0 * model.bank_conflict_factor;
    let e_smem = smem_bytes * E_SMEM_PJ_PER_BYTE;
    // pJ → mJ is 1e-9.
    let dynamic_mj = (e_flop + e_int + e_dram + e_l2 + e_smem) * total_threads * 1e-9;

    // ---- Background power (time-proportional) ---------------------------
    let static_w = P_IDLE_BASE_W + P_IDLE_PER_SM_W * f64::from(arch.sm_count);
    let active_w = P_ACTIVE_PER_SM_W
        * f64::from(arch.sm_count)
        * timing.occupancy.occupancy
        * clock_scale
        * fam;
    // W × ms = mJ.
    let background_mj = (static_w + active_w) * timing.time_ms;

    let energy_mj = dynamic_mj + background_mj;
    KernelPower {
        energy_mj,
        avg_power_w: energy_mj / timing.time_ms.max(1e-12),
        static_w,
        active_w,
        dynamic_mj,
    }
}

/// Price one launch of `model` on `arch` for both time and energy.
pub fn execute_with_energy(
    arch: &GpuArch,
    model: &KernelModel,
) -> Result<(KernelTiming, KernelPower), LaunchError> {
    let timing = execute(arch, model)?;
    let power = launch_power(arch, model, &timing);
    Ok((timing, power))
}

/// Price `launches` back-to-back launches: `(time_ms, energy_mj)` totals.
/// The time component is identical to [`crate::execute_repeated`].
pub fn execute_with_energy_repeated(
    arch: &GpuArch,
    model: &KernelModel,
    launches: u64,
) -> Result<(f64, f64), LaunchError> {
    let (timing, power) = execute_with_energy(arch, model)?;
    Ok((
        timing.time_ms * launches as f64,
        power.energy_mj * launches as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_kernel() -> KernelModel {
        let mut m = KernelModel::new("flops", 1 << 14, 256);
        m.flops_per_thread = 20_000.0;
        m.ilp = 4.0;
        m
    }

    fn memory_kernel() -> KernelModel {
        let mut m = KernelModel::new("stream", 1 << 14, 256);
        m.gmem_bytes_per_thread = 1024.0;
        m.gmem_transactions_per_thread = 256.0;
        m.ilp = 4.0;
        m
    }

    #[test]
    fn energy_is_positive_and_deterministic() {
        let arch = GpuArch::rtx_3090();
        let (_, a) = execute_with_energy(&arch, &compute_kernel()).unwrap();
        let (_, b) = execute_with_energy(&arch, &compute_kernel()).unwrap();
        assert!(a.energy_mj > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sustained_power_lands_near_board_envelopes() {
        // Flat-out compute on the 3090 should draw ballpark-TDP power, and
        // the small 3060 clearly less than the big 3090.
        let big = execute_with_energy(&GpuArch::rtx_3090(), &compute_kernel())
            .unwrap()
            .1;
        let small = execute_with_energy(&GpuArch::rtx_3060(), &compute_kernel())
            .unwrap()
            .1;
        assert!(
            big.avg_power_w > 200.0 && big.avg_power_w < 400.0,
            "3090 draws {:.0} W",
            big.avg_power_w
        );
        assert!(small.avg_power_w < big.avg_power_w);
    }

    #[test]
    fn memory_kernels_spend_energy_on_dram() {
        let arch = GpuArch::rtx_3090();
        let (_, mem) = execute_with_energy(&arch, &memory_kernel()).unwrap();
        let bytes = memory_kernel().gmem_bytes_per_thread * memory_kernel().total_threads();
        // Dynamic energy is at least the DRAM traffic priced at the DRAM rate.
        assert!(mem.dynamic_mj >= bytes * E_DRAM_PJ_PER_BYTE * 1e-9 * 0.99);
    }

    #[test]
    fn uncoalesced_access_costs_energy_not_just_time() {
        let arch = GpuArch::rtx_3090();
        let good = launch_power(
            &arch,
            &memory_kernel(),
            &execute(&arch, &memory_kernel()).unwrap(),
        );
        let mut bad_model = memory_kernel();
        bad_model.coalescing = 0.25;
        let bad_timing = execute(&arch, &bad_model).unwrap();
        let bad = launch_power(&arch, &bad_model, &bad_timing);
        assert!(bad.dynamic_mj > 3.0 * good.dynamic_mj);
    }

    #[test]
    fn slower_run_pays_more_static_energy() {
        // Same work profile, but the launch that takes longer burns more
        // background energy: static energy scales with time.
        let arch = GpuArch::rtx_3090();
        let m = memory_kernel();
        let t = execute(&arch, &m).unwrap();
        let mut slow = t.clone();
        slow.time_ms *= 2.0;
        let p_fast = launch_power(&arch, &m, &t);
        let p_slow = launch_power(&arch, &m, &slow);
        assert!(p_slow.energy_mj > p_fast.energy_mj);
        assert_eq!(p_slow.dynamic_mj, p_fast.dynamic_mj);
    }

    #[test]
    fn occupancy_scales_active_power() {
        let arch = GpuArch::rtx_3090();
        let full = memory_kernel();
        let mut starved = memory_kernel();
        starved.regs_per_thread = 255;
        starved.threads_per_block = 32;
        let p_full = execute_with_energy(&arch, &full).unwrap().1;
        let p_starved = execute_with_energy(&arch, &starved).unwrap().1;
        assert!(p_starved.active_w < p_full.active_w);
    }

    #[test]
    fn repeated_launches_scale_linearly() {
        let arch = GpuArch::rtx_titan();
        let m = compute_kernel();
        let (t1, e1) = execute_with_energy_repeated(&arch, &m, 1).unwrap();
        let (t5, e5) = execute_with_energy_repeated(&arch, &m, 5).unwrap();
        assert!((t5 / t1 - 5.0).abs() < 1e-9);
        assert!((e5 / e1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn launch_errors_propagate() {
        let mut m = KernelModel::new("huge-smem", 16, 256);
        m.smem_per_block = 90 * 1024;
        assert!(execute_with_energy(&GpuArch::rtx_2080_ti(), &m).is_err());
    }
}
