//! GPU architecture machine models.
//!
//! The paper evaluates on four NVIDIA GPUs: RTX 2080 Ti and RTX Titan
//! (Turing, TU102) and RTX 3060 / RTX 3090 (Ampere, GA106/GA102). The
//! figures below come from the public specification sheets and whitepapers;
//! they are the per-architecture constants that drive the analytical timing
//! model. The family split matters for reproducing the paper's portability
//! result (configs move well *within* a family, poorly across).

use serde::Serialize;

/// GPU micro-architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Family {
    /// Turing (TU10x): 64 FP32 lanes/SM + independent INT32 pipe,
    /// 1024 threads/SM, 64 KiB shared memory/SM.
    Turing,
    /// Ampere (GA10x): 128 FP32 lanes/SM (half shared with INT32),
    /// 1536 threads/SM, up to 100 KiB shared memory/SM.
    Ampere,
}

/// A machine model of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GpuArch {
    /// Marketing name, e.g. `"RTX 3090"`.
    pub name: &'static str,
    /// Micro-architecture family.
    pub family: Family,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// FP32 lanes per SM (FMA counts as two FLOPs per lane-cycle).
    pub fp32_per_sm: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Aggregate L2 bandwidth in GB/s (≈3× DRAM on these parts).
    pub l2_bandwidth_gbs: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Warp width (32 on all NVIDIA parts).
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers addressable per thread (compiler spills beyond).
    pub max_registers_per_thread: u32,
    /// Register allocation granularity per warp (registers round up to this).
    pub register_alloc_granularity: u32,
    /// Maximum shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Maximum shared memory per block in bytes (opt-in carve-out).
    pub shared_mem_per_block: u32,
    /// Number of shared-memory banks.
    pub smem_banks: u32,
    /// Shared-memory bytes served per SM per cycle (conflict-free).
    pub smem_bytes_per_cycle: f64,
    /// Average DRAM access latency in cycles.
    pub dram_latency_cycles: f64,
    /// Arithmetic pipeline latency in cycles.
    pub alu_latency_cycles: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl GpuArch {
    /// NVIDIA GeForce RTX 2080 Ti (TU102, 68 SMs, 616 GB/s).
    pub fn rtx_2080_ti() -> Self {
        GpuArch {
            name: "RTX 2080 Ti",
            family: Family::Turing,
            sm_count: 68,
            fp32_per_sm: 64,
            clock_ghz: 1.545,
            mem_bandwidth_gbs: 616.0,
            l2_bandwidth_gbs: 1850.0,
            l2_bytes: 5_767_168, // 5.5 MiB
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_alloc_granularity: 256,
            shared_mem_per_sm: 65_536,
            shared_mem_per_block: 65_536,
            smem_banks: 32,
            smem_bytes_per_cycle: 128.0,
            dram_latency_cycles: 500.0,
            alu_latency_cycles: 4.0,
            launch_overhead_us: 6.0,
        }
    }

    /// NVIDIA Titan RTX (TU102, 72 SMs, 672 GB/s).
    pub fn rtx_titan() -> Self {
        GpuArch {
            name: "RTX Titan",
            family: Family::Turing,
            sm_count: 72,
            fp32_per_sm: 64,
            clock_ghz: 1.770,
            mem_bandwidth_gbs: 672.0,
            l2_bandwidth_gbs: 2000.0,
            l2_bytes: 6_291_456, // 6 MiB
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_alloc_granularity: 256,
            shared_mem_per_sm: 65_536,
            shared_mem_per_block: 65_536,
            smem_banks: 32,
            smem_bytes_per_cycle: 128.0,
            dram_latency_cycles: 500.0,
            alu_latency_cycles: 4.0,
            launch_overhead_us: 6.0,
        }
    }

    /// NVIDIA GeForce RTX 3060 (GA106, 28 SMs, 360 GB/s).
    pub fn rtx_3060() -> Self {
        GpuArch {
            name: "RTX 3060",
            family: Family::Ampere,
            sm_count: 28,
            fp32_per_sm: 128,
            clock_ghz: 1.777,
            mem_bandwidth_gbs: 360.0,
            l2_bandwidth_gbs: 1100.0,
            l2_bytes: 3_145_728, // 3 MiB
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_alloc_granularity: 256,
            shared_mem_per_sm: 102_400,
            shared_mem_per_block: 101_376, // 99 KiB opt-in limit
            smem_banks: 32,
            smem_bytes_per_cycle: 128.0,
            dram_latency_cycles: 470.0,
            alu_latency_cycles: 4.0,
            launch_overhead_us: 6.0,
        }
    }

    /// NVIDIA GeForce RTX 3090 (GA102, 82 SMs, 936 GB/s).
    pub fn rtx_3090() -> Self {
        GpuArch {
            name: "RTX 3090",
            family: Family::Ampere,
            sm_count: 82,
            fp32_per_sm: 128,
            clock_ghz: 1.695,
            mem_bandwidth_gbs: 936.0,
            l2_bandwidth_gbs: 2800.0,
            l2_bytes: 6_291_456, // 6 MiB
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_alloc_granularity: 256,
            shared_mem_per_sm: 102_400,
            shared_mem_per_block: 101_376,
            smem_banks: 32,
            smem_bytes_per_cycle: 128.0,
            dram_latency_cycles: 470.0,
            alu_latency_cycles: 4.0,
            launch_overhead_us: 6.0,
        }
    }

    /// The four GPUs of the paper's testbed, in the paper's order.
    pub fn paper_testbed() -> Vec<GpuArch> {
        vec![
            Self::rtx_2080_ti(),
            Self::rtx_3060(),
            Self::rtx_3090(),
            Self::rtx_titan(),
        ]
    }

    /// Look up one of the testbed GPUs by (case-insensitive, punctuation
    /// insensitive) name, e.g. `"rtx3090"` or `"RTX 3090"`.
    pub fn by_name(name: &str) -> Option<GpuArch> {
        let norm: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Self::paper_testbed().into_iter().find(|a| {
            a.name
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase()
                == norm
        })
    }

    /// Peak single-precision throughput in GFLOP/s (FMA = 2 FLOPs).
    pub fn peak_gflops(&self) -> f64 {
        f64::from(self.sm_count) * f64::from(self.fp32_per_sm) * 2.0 * self.clock_ghz
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// A stable small integer identifying this architecture (used to salt
    /// the deterministic measurement noise).
    pub fn noise_salt(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_four_distinct_gpus() {
        let t = GpuArch::paper_testbed();
        assert_eq!(t.len(), 4);
        let mut names: Vec<_> = t.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn families_are_paired() {
        assert_eq!(GpuArch::rtx_2080_ti().family, Family::Turing);
        assert_eq!(GpuArch::rtx_titan().family, Family::Turing);
        assert_eq!(GpuArch::rtx_3060().family, Family::Ampere);
        assert_eq!(GpuArch::rtx_3090().family, Family::Ampere);
    }

    #[test]
    fn peak_flops_ordering_matches_reality() {
        // 3090 > 3060; Titan > 2080 Ti.
        assert!(GpuArch::rtx_3090().peak_gflops() > GpuArch::rtx_3060().peak_gflops());
        assert!(GpuArch::rtx_titan().peak_gflops() > GpuArch::rtx_2080_ti().peak_gflops());
        // 3090 is the fastest of the four.
        let t = GpuArch::paper_testbed();
        let best = t
            .iter()
            .max_by(|a, b| a.peak_gflops().partial_cmp(&b.peak_gflops()).unwrap())
            .unwrap();
        assert_eq!(best.name, "RTX 3090");
    }

    #[test]
    fn lookup_by_name_is_fuzzy() {
        assert_eq!(GpuArch::by_name("rtx3090").unwrap().name, "RTX 3090");
        assert_eq!(GpuArch::by_name("RTX 2080 Ti").unwrap().name, "RTX 2080 Ti");
        assert!(GpuArch::by_name("A100").is_none());
    }

    #[test]
    fn max_warps() {
        assert_eq!(GpuArch::rtx_2080_ti().max_warps_per_sm(), 32);
        assert_eq!(GpuArch::rtx_3090().max_warps_per_sm(), 48);
    }

    #[test]
    fn noise_salts_differ() {
        let t = GpuArch::paper_testbed();
        let mut salts: Vec<_> = t.iter().map(GpuArch::noise_salt).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 4);
    }
}
