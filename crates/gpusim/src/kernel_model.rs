//! The abstract "compiled kernel" description consumed by the timing model.
//!
//! Each benchmark maps a configuration to a [`KernelModel`]: launch geometry,
//! per-block resource demands and an average per-thread work profile. The
//! timing model then prices the launch on a concrete [`crate::GpuArch`].

use serde::Serialize;

use crate::occupancy::BlockResources;

/// Work profile and launch geometry of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelModel {
    /// Kernel name (diagnostics only). A static string: benchmarks build
    /// one model per `evaluate_pure` call, and landscape evaluation makes
    /// millions of those — a per-call `String` would be a hot-path
    /// allocation for a label that never varies at runtime.
    pub name: &'static str,
    /// Total thread blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread after compilation.
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub smem_per_block: u32,
    /// `__launch_bounds__` min-blocks hint (0 = unset). A non-zero hint asks
    /// the compiler to cap register usage so that this many blocks fit.
    pub launch_bounds_blocks: u32,
    /// Floating-point operations per thread (FMA = 2 FLOPs).
    pub flops_per_thread: f64,
    /// Integer/address/loop-overhead instructions per thread.
    pub int_ops_per_thread: f64,
    /// DRAM traffic per thread in bytes (after coalescing accounting,
    /// before L2 hits are removed).
    pub gmem_bytes_per_thread: f64,
    /// Number of global load/store *instructions* issued per thread.
    pub gmem_transactions_per_thread: f64,
    /// Memory coalescing efficiency in (0, 1]: fraction of each DRAM
    /// transaction that carries useful bytes.
    pub coalescing: f64,
    /// Fraction of global traffic served from L2 (0..=1).
    pub l2_hit_rate: f64,
    /// Shared-memory transactions per thread.
    pub smem_accesses_per_thread: f64,
    /// Bank-conflict multiplier on shared-memory cycles (1 = conflict-free,
    /// `n` = n-way serialization).
    pub bank_conflict_factor: f64,
    /// Independent in-flight instructions per thread (from unrolling /
    /// multiple output elements per thread).
    pub ilp: f64,
    /// Branch-divergence multiplier on compute (≥ 1).
    pub divergence_factor: f64,
    /// Local-memory traffic per thread in bytes caused by register spills.
    pub spill_bytes_per_thread: f64,
    /// Whether loads go through the read-only (texture/L1) path, which
    /// shortens average latency.
    pub uses_readonly_cache: bool,
}

impl KernelModel {
    /// A neutral model for `grid_blocks × threads` doing nothing; benchmarks
    /// start from this and fill in their profile.
    pub fn new(name: &'static str, grid_blocks: u64, threads_per_block: u32) -> Self {
        KernelModel {
            name,
            grid_blocks,
            threads_per_block,
            regs_per_thread: 32,
            smem_per_block: 0,
            launch_bounds_blocks: 0,
            flops_per_thread: 0.0,
            int_ops_per_thread: 0.0,
            gmem_bytes_per_thread: 0.0,
            gmem_transactions_per_thread: 0.0,
            coalescing: 1.0,
            l2_hit_rate: 0.0,
            smem_accesses_per_thread: 0.0,
            bank_conflict_factor: 1.0,
            ilp: 1.0,
            divergence_factor: 1.0,
            spill_bytes_per_thread: 0.0,
            uses_readonly_cache: false,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> f64 {
        self.grid_blocks as f64 * f64::from(self.threads_per_block)
    }

    /// Per-block resources for the occupancy calculator.
    pub fn block_resources(&self) -> BlockResources {
        BlockResources {
            threads: self.threads_per_block,
            regs_per_thread: self.regs_per_thread,
            smem_bytes: self.smem_per_block,
            launch_bounds_blocks: self.launch_bounds_blocks,
        }
    }

    /// Basic sanity checks; benchmarks call this in debug builds.
    pub fn validate(&self) -> Result<(), String> {
        if self.grid_blocks == 0 {
            return Err("grid has zero blocks".into());
        }
        if !(0.0..=1.0).contains(&self.l2_hit_rate) {
            return Err(format!("l2_hit_rate {} out of range", self.l2_hit_rate));
        }
        if !(self.coalescing > 0.0 && self.coalescing <= 1.0) {
            return Err(format!("coalescing {} out of range", self.coalescing));
        }
        if self.bank_conflict_factor < 1.0 {
            return Err("bank_conflict_factor below 1".into());
        }
        if self.divergence_factor < 1.0 {
            return Err("divergence_factor below 1".into());
        }
        if self.ilp < 1.0 {
            return Err("ilp below 1".into());
        }
        for (label, v) in [
            ("flops", self.flops_per_thread),
            ("int_ops", self.int_ops_per_thread),
            ("gmem_bytes", self.gmem_bytes_per_thread),
            ("gmem_transactions", self.gmem_transactions_per_thread),
            ("smem_accesses", self.smem_accesses_per_thread),
            ("spill_bytes", self.spill_bytes_per_thread),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{label} is {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(KernelModel::new("k", 10, 128).validate().is_ok());
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut m = KernelModel::new("k", 10, 128);
        m.coalescing = 0.0;
        assert!(m.validate().is_err());
        m.coalescing = 0.5;
        m.l2_hit_rate = 1.5;
        assert!(m.validate().is_err());
        m.l2_hit_rate = 0.2;
        m.bank_conflict_factor = 0.5;
        assert!(m.validate().is_err());
        m.bank_conflict_factor = 2.0;
        m.flops_per_thread = f64::NAN;
        assert!(m.validate().is_err());
    }

    #[test]
    fn total_threads() {
        let m = KernelModel::new("k", 100, 256);
        assert_eq!(m.total_threads(), 25_600.0);
    }
}
