//! Deterministic fault injection.
//!
//! Real kernel benchmarking is failure-ridden: configurations crash,
//! measurements hang past a deadline, launches fail transiently under
//! driver pressure, and the occasional sample comes back corrupted.
//! This module reproduces those failure modes with the same counter-based
//! discipline as [`crate::noisy_time_ms`]: every fault is a pure function
//! of `(fault seed, problem salt, configuration index, attempt/run)`, so a
//! chaos campaign is byte-reproducible across runs, thread counts and
//! resume boundaries — while still exercising retry, timeout and
//! quarantine machinery for real.
//!
//! All rates default to zero; a disabled model injects nothing and costs
//! nothing, keeping fault-free runs byte-identical to the pre-fault suite.

use crate::noise::{mix, unit};

/// Stream salt for transient launch-failure draws.
const TRANSIENT_STREAM: u64 = 0x7472_616e_7369; // "transi"
/// Stream salt for measurement-timeout draws.
const TIMEOUT_STREAM: u64 = 0x7469_6d65_6f75; // "timeou"
/// Stream salt for the sticky crashed-configuration set.
const CRASH_STREAM: u64 = 0x0063_7261_7368; // "crash"
/// Stream salt for corrupted-outlier sample draws.
const OUTLIER_STREAM: u64 = 0x6f75_746c_6965; // "outlie"
/// Stream salt for the per-architecture transient-rate scaling factor.
const ARCH_SCALE_STREAM: u64 = 0x6172_6368; // "arch"

/// A seeded, deterministic fault model for simulated measurements.
///
/// Rates are probabilities in `[0, 1]`. The transient rate is additionally
/// scaled by a deterministic per-architecture factor in `[0.5, 1.5)`
/// derived from the problem salt, mirroring how flakiness differs between
/// physical testbed machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that one measurement attempt fails transiently
    /// (launch-level flake; retryable).
    pub transient_rate: f64,
    /// Probability that one measurement attempt hangs past the deadline
    /// (retryable).
    pub timeout_rate: f64,
    /// The measurement deadline in ms a timed-out attempt exceeded
    /// (reporting only; the simulator never actually sleeps).
    pub deadline_ms: f64,
    /// Probability that an individual run sample comes back corrupted
    /// (multiplied by `outlier_factor`; the measurement still "succeeds").
    pub outlier_rate: f64,
    /// Multiplicative corruption applied to outlier samples.
    pub outlier_factor: f64,
    /// Fraction of the configuration space that crashes *every* time it is
    /// executed (the sticky "crashed config" set; not retryable).
    pub crash_rate: f64,
    /// Seed folded into every fault draw.
    pub seed: u64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::disabled()
    }
}

impl FaultModel {
    /// A model that injects nothing (all rates zero).
    pub fn disabled() -> FaultModel {
        FaultModel {
            transient_rate: 0.0,
            timeout_rate: 0.0,
            deadline_ms: 1_000.0,
            outlier_rate: 0.0,
            outlier_factor: 10.0,
            crash_rate: 0.0,
            seed: 0,
        }
    }

    /// True when any fault can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.transient_rate > 0.0
            || self.timeout_rate > 0.0
            || self.outlier_rate > 0.0
            || self.crash_rate > 0.0
    }

    /// The model's draw salt for a problem: fold the fault seed into the
    /// problem's noise salt so every (benchmark, architecture) pair sees
    /// its own independent fault streams.
    pub fn salt_for(&self, problem_salt: u64) -> u64 {
        mix(problem_salt, self.seed)
    }

    /// Deterministic per-architecture scaling of the transient rate, in
    /// `[0.5, 1.5)`: some machines flake more than others.
    fn arch_scale(salt: u64) -> f64 {
        0.5 + unit(mix(salt, ARCH_SCALE_STREAM))
    }

    /// Does measurement attempt `attempt` of configuration `index` fail
    /// transiently?
    pub fn transient_fires(&self, salt: u64, index: u64, attempt: u64) -> bool {
        self.transient_rate > 0.0
            && unit(mix(mix(salt, TRANSIENT_STREAM), mix(index, attempt)))
                < self.transient_rate * Self::arch_scale(salt)
    }

    /// Does measurement attempt `attempt` of configuration `index` hang
    /// past the deadline?
    pub fn timeout_fires(&self, salt: u64, index: u64, attempt: u64) -> bool {
        self.timeout_rate > 0.0
            && unit(mix(mix(salt, TIMEOUT_STREAM), mix(index, attempt))) < self.timeout_rate
    }

    /// Is configuration `index` a member of the sticky crash set? Keyed by
    /// the configuration alone — a crasher crashes on every attempt, which
    /// is what makes crash-counting quarantine meaningful.
    pub fn is_crasher(&self, salt: u64, index: u64) -> bool {
        self.crash_rate > 0.0 && unit(mix(mix(salt, CRASH_STREAM), index)) < self.crash_rate
    }

    /// Corrupt one run sample, when the outlier draw for `(index, run)`
    /// fires. Keyed independently of the attempt counter so a retried
    /// measurement reproduces the same samples the first attempt would
    /// have produced.
    pub fn corrupt_sample(&self, salt: u64, index: u64, run: u32, sample_ms: f64) -> f64 {
        if self.outlier_rate > 0.0
            && unit(mix(mix(salt, OUTLIER_STREAM), mix(index, u64::from(run)))) < self.outlier_rate
        {
            sample_ms * self.outlier_factor
        } else {
            sample_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultModel {
        FaultModel {
            transient_rate: 0.2,
            timeout_rate: 0.1,
            outlier_rate: 0.1,
            crash_rate: 0.1,
            seed: 7,
            ..FaultModel::disabled()
        }
    }

    #[test]
    fn disabled_model_never_fires() {
        let m = FaultModel::disabled();
        assert!(!m.is_enabled());
        for idx in 0..1_000 {
            assert!(!m.transient_fires(1, idx, 0));
            assert!(!m.timeout_fires(1, idx, 0));
            assert!(!m.is_crasher(1, idx));
            assert_eq!(m.corrupt_sample(1, idx, 0, 3.5), 3.5);
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let m = chaotic();
        for idx in 0..200 {
            assert_eq!(m.transient_fires(9, idx, 3), m.transient_fires(9, idx, 3));
            assert_eq!(m.is_crasher(9, idx), m.is_crasher(9, idx));
            assert_eq!(
                m.corrupt_sample(9, idx, 1, 2.0),
                m.corrupt_sample(9, idx, 1, 2.0)
            );
        }
    }

    #[test]
    fn crashers_are_sticky_and_roughly_rate_sized() {
        let m = chaotic();
        let crashers = (0..10_000).filter(|&i| m.is_crasher(3, i)).count();
        // 10% ± generous slack.
        assert!((700..1_300).contains(&crashers), "{crashers} crashers");
        // Stickiness: membership does not depend on any attempt counter.
        for idx in 0..100 {
            let member = m.is_crasher(3, idx);
            for _ in 0..3 {
                assert_eq!(m.is_crasher(3, idx), member);
            }
        }
    }

    #[test]
    fn transient_faults_vary_by_attempt_and_rate_is_respected() {
        let m = chaotic();
        let fires = (0..10_000).filter(|&a| m.transient_fires(5, 42, a)).count();
        // Base rate 20% scaled by the arch factor in [0.5, 1.5).
        assert!((500..3_500).contains(&fires), "{fires} transients");
        // Different attempts of the same config draw independently.
        let all_same = (0..50).all(|a| m.transient_fires(5, 42, a) == m.transient_fires(5, 42, 0));
        assert!(!all_same);
    }

    #[test]
    fn arch_salts_scale_transient_rates_differently() {
        let m = FaultModel {
            transient_rate: 0.2,
            seed: 1,
            ..FaultModel::disabled()
        };
        let rate = |salt: u64| {
            (0..20_000)
                .filter(|&a| m.transient_fires(salt, 7, a))
                .count() as f64
                / 20_000.0
        };
        let (a, b) = (rate(101), rate(202));
        assert!((a - b).abs() > 0.01, "arch scaling indistinct: {a} vs {b}");
    }

    #[test]
    fn outliers_hit_some_runs_and_not_others() {
        let m = chaotic();
        let corrupted = (0..1_000u32)
            .filter(|&r| m.corrupt_sample(11, 3, r, 1.0) != 1.0)
            .count();
        assert!((30..250).contains(&corrupted), "{corrupted} outliers");
        // Corruption multiplies by the configured factor.
        let hit = (0..1_000u32)
            .find(|&r| m.corrupt_sample(11, 3, r, 1.0) != 1.0)
            .unwrap();
        assert_eq!(m.corrupt_sample(11, 3, hit, 2.0), 2.0 * m.outlier_factor);
    }
}
