//! Gradient-boosted regression trees (least-squares boosting).
//!
//! Stands in for the paper's CatBoost regressor: for squared error, the
//! negative gradient is the residual, so each stage fits a
//! [`RegressionTree`] to the current residuals and the ensemble adds it
//! scaled by the learning rate. Optional row subsampling (stochastic
//! gradient boosting) decorrelates stages.
//!
//! The boosting loop is built for throughput: the dataset is binned once
//! and every stage trains from histograms, all row/residual/histogram
//! buffers are allocated once and reused across stages, and each stage's
//! prediction update is folded into tree growth (leaves add their value to
//! the in-sample predictions directly; only out-of-bag rows of a
//! subsampled stage take the explicit predict walk).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeParams, TreeScratch};

/// Hyperparameters for [`Gbdt`].
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Number of boosting stages.
    pub n_trees: usize,
    /// Shrinkage applied to every stage.
    pub learning_rate: f64,
    /// Per-tree settings.
    pub tree: TreeParams,
    /// Fraction of rows sampled per stage (1.0 = all).
    pub subsample: f64,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 200,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            subsample: 1.0,
            seed: 0,
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl Gbdt {
    /// Fit to a dataset (targets from the dataset's own target column).
    /// Trains from per-bin histograms whenever the dataset is binnable
    /// (≤ 256 distinct values per feature).
    pub fn fit(data: &Dataset, params: &GbdtParams) -> Self {
        Self::fit_impl(data, params, false)
    }

    /// Fit with the exact sort-based splitter regardless of binnability —
    /// the equivalence-test oracle and benchmark baseline for [`Gbdt::fit`].
    pub fn fit_exact(data: &Dataset, params: &GbdtParams) -> Self {
        Self::fit_impl(data, params, true)
    }

    fn fit_impl(data: &Dataset, params: &GbdtParams, exact: bool) -> Self {
        assert!(params.n_trees > 0, "need at least one tree");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        let y = data.targets();
        let n = data.n_rows();
        let base = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut residual = vec![0.0f64; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let all_rows: Vec<usize> = (0..n).collect();
        let sample_size = ((n as f64) * params.subsample).ceil() as usize;
        let full = sample_size >= n;
        // Stage-invariant buffers, hoisted out of the boosting loop.
        let mut scratch = TreeScratch::default();
        let mut rows_buf: Vec<usize> = Vec::with_capacity(if full { 0 } else { n });
        let mut in_sample = vec![false; if full { 0 } else { n }];

        for _ in 0..params.n_trees {
            for i in 0..n {
                residual[i] = y[i] - pred[i];
            }
            let rows: &[usize] = if full {
                &all_rows
            } else {
                rows_buf.clear();
                rows_buf.extend_from_slice(&all_rows);
                rows_buf.partial_shuffle(&mut rng, sample_size);
                rows_buf.truncate(sample_size);
                &rows_buf
            };
            // Leaves fold `learning_rate * value` into `pred` for every
            // in-sample row as the tree grows.
            let tree = RegressionTree::fit_with_scratch(
                data,
                &residual,
                rows,
                &params.tree,
                &mut scratch,
                Some((&mut pred, params.learning_rate)),
                exact,
            );
            if !full {
                // Out-of-bag rows still need the explicit predict walk.
                for &r in rows {
                    in_sample[r] = true;
                }
                for (i, p) in pred.iter_mut().enumerate() {
                    if !in_sample[i] {
                        *p += params.learning_rate * tree.predict(data.row(i));
                    }
                }
                for &r in rows {
                    in_sample[r] = false;
                }
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees,
        }
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predict every row of a dataset.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<f64> {
        (0..data.n_rows())
            .map(|i| self.predict(data.row(i)))
            .collect()
    }

    /// Number of stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn friedman_like(n: usize) -> Dataset {
        // y = 3*x0 + x1^2 - 2*x0*x2 (interaction!), discrete features.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = f64::from((i * 7 % 13) as u32);
                let b = f64::from((i * 5 % 7) as u32);
                let c = f64::from((i * 3 % 4) as u32);
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] + r[1] * r[1] - 2.0 * r[0] * r[2])
            .collect();
        Dataset::new(&rows, y, vec!["a".into(), "b".into(), "c".into()])
    }

    #[test]
    fn fits_nonlinear_function_with_high_r2() {
        let data = friedman_like(2000);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let pred = model.predict_dataset(&data);
        let r2 = r2_score(data.targets(), &pred);
        assert!(r2 > 0.99, "R² = {r2}");
    }

    #[test]
    fn more_trees_fit_better() {
        let data = friedman_like(800);
        let small = Gbdt::fit(
            &data,
            &GbdtParams {
                n_trees: 5,
                ..GbdtParams::default()
            },
        );
        let large = Gbdt::fit(
            &data,
            &GbdtParams {
                n_trees: 150,
                ..GbdtParams::default()
            },
        );
        let r2s = r2_score(data.targets(), &small.predict_dataset(&data));
        let r2l = r2_score(data.targets(), &large.predict_dataset(&data));
        assert!(r2l > r2s);
    }

    #[test]
    fn subsampling_still_converges() {
        let data = friedman_like(1500);
        let model = Gbdt::fit(
            &data,
            &GbdtParams {
                subsample: 0.7,
                seed: 3,
                ..GbdtParams::default()
            },
        );
        let r2 = r2_score(data.targets(), &model.predict_dataset(&data));
        assert!(r2 > 0.97, "R² = {r2}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i as u32)]).collect();
        let data = Dataset::new(&rows, vec![4.2; 50], vec!["x".into()]);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        assert!((model.predict(&[25.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_fit_matches_exact_fit() {
        let data = friedman_like(800);
        for subsample in [1.0, 0.7] {
            let p = GbdtParams {
                n_trees: 30,
                subsample,
                seed: 5,
                ..GbdtParams::default()
            };
            let hist = Gbdt::fit(&data, &p).predict_dataset(&data);
            let exact = Gbdt::fit_exact(&data, &p).predict_dataset(&data);
            for (h, e) in hist.iter().zip(&exact) {
                assert!(
                    (h - e).abs() <= 1e-9 * (1.0 + e.abs()),
                    "hist {h} vs exact {e} (subsample {subsample})"
                );
            }
        }
    }

    #[test]
    fn newton_leaves_still_converge_and_match_exact() {
        use crate::tree::TreeParams;
        let data = friedman_like(1000);
        let p = GbdtParams {
            n_trees: 60,
            tree: TreeParams {
                leaf_lambda: 1.0,
                ..TreeParams::default()
            },
            ..GbdtParams::default()
        };
        let model = Gbdt::fit(&data, &p);
        let r2 = r2_score(data.targets(), &model.predict_dataset(&data));
        assert!(r2 > 0.98, "R² = {r2}");
        // The hist ≡ exact guarantee carries over to Newton leaves.
        let exact = Gbdt::fit_exact(&data, &p).predict_dataset(&data);
        for (h, e) in model.predict_dataset(&data).iter().zip(&exact) {
            assert!((h - e).abs() <= 1e-9 * (1.0 + e.abs()), "{h} vs {e}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = friedman_like(500);
        let p = GbdtParams {
            subsample: 0.5,
            seed: 9,
            n_trees: 20,
            ..GbdtParams::default()
        };
        let a = Gbdt::fit(&data, &p).predict_dataset(&data);
        let b = Gbdt::fit(&data, &p).predict_dataset(&data);
        assert_eq!(a, b);
    }
}
