//! # bat-ml
//!
//! Machine-learning substrate for BAT-rs analyses and model-based tuners:
//! CART regression trees, least-squares gradient boosting (the paper's
//! CatBoost stand-in for Fig. 6), random forests with predictive variance
//! (SMAC3's surrogate), exact Gaussian-process regression (the model behind
//! Bayesian-optimization tuners, paper ref \[22\]), regression metrics, and
//! Permutation Feature Importance.
//!
//! ## The binned training pipeline
//!
//! Tuning-parameter features take ≤ 37 distinct values, so [`Dataset`]
//! bins every feature once into a column-major `u8` code matrix
//! ([`BinnedMatrix`], lossless below 257 distinct values). Trees then
//! train from per-bin (sum, sum², count) histograms with the
//! parent-minus-sibling subtraction trick, reusing one scratch-buffer set
//! across all nodes, trees and boosting stages, and folding boosting
//! prediction updates into leaf creation. The old per-node sort-based
//! splitter survives as [`RegressionTree::fit_exact`] / [`Gbdt::fit_exact`]
//! — the equivalence oracle (property-tested to produce the same trees)
//! and the benchmark baseline it beats by well over an order of magnitude.
//!
//! ```
//! use bat_ml::{Dataset, Gbdt, GbdtParams, permutation_importance, r2_score};
//!
//! let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
//! let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
//! let data = Dataset::new(&rows, y, vec!["x".into(), "noise".into()]);
//! let model = Gbdt::fit(&data, &GbdtParams::default());
//! let r2 = r2_score(data.targets(), &model.predict_dataset(&data));
//! assert!(r2 > 0.99);
//! let pfi = permutation_importance(&model, &data, 3, 0);
//! assert!(pfi.importances[0] > pfi.importances[1]);
//! ```

#![warn(missing_docs)]

mod dataset;
mod forest;
mod gbdt;
mod gp;
pub mod linalg;
mod metrics;
mod pfi;
pub mod stats;
mod tree;

pub use dataset::{BinnedMatrix, Dataset, MAX_BINS};
pub use forest::{ForestParams, ForestPrediction, RandomForest};
pub use gbdt::{Gbdt, GbdtParams};
pub use gp::{GaussianProcess, GpParams, GpPrediction, KernelKind};
pub use metrics::{mae, r2_score, rmse};
pub use pfi::{permutation_importance, PfiResult};
pub use tree::{RegressionTree, TreeParams};
