//! Scalar probability helpers for acquisition functions and uncertainty
//! estimates: standard-normal PDF/CDF built on an `erf` approximation.

use std::f64::consts::PI;

/// Error function, Abramowitz–Stegun 7.1.26 (max abs error 1.5e-7 — far
/// below the measurement noise of any tuning run).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal density φ(x).
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal CDF Φ(x).
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let c = norm_cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        // The A&S polynomial has ~1e-9 residual at the origin.
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!(norm_cdf(6.0) > 0.999999);
        assert!(norm_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid over [-8, 8].
        let n = 4000;
        let h = 16.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * norm_pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry() {
        for i in 0..20 {
            let x = i as f64 / 5.0;
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-8);
        }
    }
}
