//! Random-forest regression with predictive uncertainty.
//!
//! SMAC3 — one of the tuners the paper's shared interface targets — models
//! the objective with a random forest and uses the spread between trees as
//! a predictive variance for Expected Improvement. This module reproduces
//! that model: bootstrap-bagged [`RegressionTree`]s, mean/variance
//! prediction across trees, and an out-of-bag R² estimate for free model
//! validation.
//!
//! The dataset is binned once (shared immutably by every bagged tree), so
//! the rayon-parallel tree fits all train from per-bin histograms; each
//! worker owns its per-tree scratch.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::dataset::Dataset;
use crate::metrics::r2_score;
use crate::tree::{RegressionTree, TreeParams, TreeScratch};

thread_local! {
    /// One histogram/scratch pool per worker thread: every bagged tree a
    /// worker fits reuses the same buffers instead of allocating per-tree
    /// scratch (ROADMAP follow-up (d)). Scratch reuse is bit-neutral — the
    /// buffers are (re)sized and cleared per fit — so forests are
    /// identical to the per-tree-scratch ones.
    static FOREST_SCRATCH: RefCell<TreeScratch> = RefCell::new(TreeScratch::default());
}

/// Hyperparameters for [`RandomForest`].
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Per-tree settings. Forest trees are typically grown deeper than
    /// boosted trees since bagging, not shrinkage, controls variance.
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the dataset (sampling is
    /// with replacement, as in Breiman's original formulation).
    pub bootstrap: f64,
    /// RNG seed for the bootstrap draws.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 40,
            tree: TreeParams {
                max_depth: 10,
                min_samples_leaf: 2,
                ..TreeParams::default()
            },
            bootstrap: 1.0,
            seed: 0,
        }
    }
}

/// Mean/variance prediction of a forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestPrediction {
    /// Mean of the per-tree predictions.
    pub mean: f64,
    /// Population variance of the per-tree predictions (SMAC's
    /// uncertainty proxy).
    pub variance: f64,
}

impl ForestPrediction {
    /// Standard deviation across trees.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    oob_r2: Option<f64>,
}

impl RandomForest {
    /// Fit a forest to the dataset's target column.
    pub fn fit(data: &Dataset, params: &ForestParams) -> Self {
        assert!(params.n_trees > 0, "need at least one tree");
        assert!(
            params.bootstrap > 0.0 && params.bootstrap <= 1.0,
            "bootstrap fraction must be in (0, 1]"
        );
        let n = data.n_rows();
        let sample_size = ((n as f64) * params.bootstrap).ceil() as usize;
        let y = data.targets();

        // Draw every tree's bootstrap rows up-front from one seeded RNG so
        // the fit is deterministic regardless of rayon's schedule.
        let mut rng = StdRng::seed_from_u64(params.seed);
        let samples: Vec<Vec<usize>> = (0..params.n_trees)
            .map(|_| (0..sample_size).map(|_| rng.random_range(0..n)).collect())
            .collect();

        // Bin once on this thread; the workers below only read the cache
        // and train through their per-worker shared scratch pool.
        let _ = data.binned();
        let trees: Vec<RegressionTree> = samples
            .par_iter()
            .map(|rows| {
                FOREST_SCRATCH.with(|scratch| {
                    RegressionTree::fit_with_scratch(
                        data,
                        y,
                        rows,
                        &params.tree,
                        &mut scratch.borrow_mut(),
                        None,
                        false,
                    )
                })
            })
            .collect();

        // Out-of-bag estimate: predict each row only with trees whose
        // bootstrap missed it.
        let mut in_bag = vec![vec![false; n]; params.n_trees];
        for (t, rows) in samples.iter().enumerate() {
            for &r in rows {
                in_bag[t][r] = true;
            }
        }
        let mut oob_pred = Vec::with_capacity(n);
        let mut oob_true = Vec::with_capacity(n);
        for i in 0..n {
            let (mut s, mut c) = (0.0, 0usize);
            for (t, tree) in trees.iter().enumerate() {
                if !in_bag[t][i] {
                    s += tree.predict(data.row(i));
                    c += 1;
                }
            }
            if c > 0 {
                oob_pred.push(s / c as f64);
                oob_true.push(y[i]);
            }
        }
        let oob_r2 = if oob_true.len() >= 2 {
            Some(r2_score(&oob_true, &oob_pred))
        } else {
            None
        };

        RandomForest { trees, oob_r2 }
    }

    /// Mean/variance prediction for one row.
    pub fn predict(&self, row: &[f64]) -> ForestPrediction {
        let m = self.trees.len() as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for t in &self.trees {
            let p = t.predict(row);
            sum += p;
            sum_sq += p * p;
        }
        let mean = sum / m;
        ForestPrediction {
            mean,
            variance: (sum_sq / m - mean * mean).max(0.0),
        }
    }

    /// Mean prediction for every row of a dataset.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<f64> {
        (0..data.n_rows())
            .map(|i| self.predict(data.row(i)).mean)
            .collect()
    }

    /// Out-of-bag R² (None when every row was in every bag, e.g. a
    /// one-row dataset).
    pub fn oob_r2(&self) -> Option<f64> {
        self.oob_r2
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> Dataset {
        // Smooth 2-D bowl on a 15×15 grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                rows.push(vec![i as f64, j as f64]);
                y.push((i as f64 - 7.0).powi(2) + (j as f64 - 7.0).powi(2));
            }
        }
        Dataset::new(&rows, y, vec!["i".into(), "j".into()])
    }

    #[test]
    fn fits_bowl_with_high_r2() {
        let data = grid_data();
        let forest = RandomForest::fit(&data, &ForestParams::default());
        let r2 = r2_score(data.targets(), &forest.predict_dataset(&data));
        assert!(r2 > 0.95, "R² = {r2}");
    }

    #[test]
    fn oob_r2_is_reported_and_reasonable() {
        let data = grid_data();
        let forest = RandomForest::fit(&data, &ForestParams::default());
        let oob = forest.oob_r2().expect("bootstrap leaves OOB rows");
        assert!(oob > 0.7, "OOB R² = {oob}");
        // OOB is an honest estimate: it must not exceed the in-bag fit.
        let in_bag = r2_score(data.targets(), &forest.predict_dataset(&data));
        assert!(oob <= in_bag + 1e-9);
    }

    #[test]
    fn variance_positive_off_grid_and_small_on_training_plateau() {
        // A step function: trees agree inside plateaus, disagree at the step.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..60).map(|i| if i < 30 { 1.0 } else { 9.0 }).collect();
        let data = Dataset::new(&rows, y, vec!["x".into()]);
        let forest = RandomForest::fit(&data, &ForestParams::default());
        let plateau = forest.predict(&[10.0]);
        let step = forest.predict(&[29.6]);
        assert!(plateau.variance <= step.variance + 1e-12);
        assert!(plateau.std_dev() >= 0.0);
    }

    #[test]
    fn shared_worker_scratch_is_bit_neutral() {
        // The pooled-scratch forest must equal trees fit with fresh
        // per-tree scratch from the same bootstrap rows.
        let data = grid_data();
        let params = ForestParams {
            n_trees: 8,
            seed: 5,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&data, &params);
        // Re-derive the bootstrap rows exactly as `fit` does.
        let n = data.n_rows();
        let sample_size = ((n as f64) * params.bootstrap).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let samples: Vec<Vec<usize>> = (0..params.n_trees)
            .map(|_| (0..sample_size).map(|_| rng.random_range(0..n)).collect())
            .collect();
        for (tree_rows, i) in samples.iter().zip(0..) {
            let fresh = RegressionTree::fit(&data, data.targets(), tree_rows, &params.tree);
            for r in 0..n {
                let row = data.row(r);
                assert_eq!(
                    forest.trees[i].predict(row),
                    fresh.predict(row),
                    "tree {i} diverged under pooled scratch"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = grid_data();
        let p = ForestParams {
            seed: 11,
            n_trees: 12,
            ..ForestParams::default()
        };
        let a = RandomForest::fit(&data, &p).predict_dataset(&data);
        let b = RandomForest::fit(&data, &p).predict_dataset(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let data = grid_data();
        let a = RandomForest::fit(
            &data,
            &ForestParams {
                seed: 1,
                ..ForestParams::default()
            },
        );
        let b = RandomForest::fit(
            &data,
            &ForestParams {
                seed: 2,
                ..ForestParams::default()
            },
        );
        // Predictions differ somewhere (bootstraps differ).
        let pa = a.predict_dataset(&data);
        let pb = b.predict_dataset(&data);
        assert!(pa.iter().zip(&pb).any(|(x, y)| (x - y).abs() > 1e-12));
    }

    #[test]
    fn single_tree_forest_has_zero_variance() {
        let data = grid_data();
        let forest = RandomForest::fit(
            &data,
            &ForestParams {
                n_trees: 1,
                ..ForestParams::default()
            },
        );
        let p = forest.predict(&[3.0, 3.0]);
        assert_eq!(p.variance, 0.0);
        assert_eq!(forest.n_trees(), 1);
    }

    #[test]
    fn constant_target_predicts_constant_with_zero_variance() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let data = Dataset::new(&rows, vec![3.3; 30], vec!["x".into()]);
        let forest = RandomForest::fit(&data, &ForestParams::default());
        let p = forest.predict(&[15.0]);
        assert!((p.mean - 3.3).abs() < 1e-12);
        assert!(p.variance < 1e-18);
    }
}
