//! Dense symmetric linear algebra for the Gaussian-process substrate.
//!
//! Gaussian-process regression needs exactly one factorization — the
//! Cholesky decomposition of a symmetric positive-definite kernel matrix —
//! plus triangular solves against it. Kernel matrices in the tuning setting
//! are small (hundreds of observations), so a cache-friendly dense
//! implementation is the right tool; no sparse or blocked machinery is
//! warranted.

/// A dense symmetric matrix stored row-major in full (not packed) form.
///
/// Full storage keeps row access contiguous, which is what the
/// Cholesky inner loops traverse.
#[derive(Debug, Clone)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a row-major buffer; `data.len()` must equal `n*n` and the
    /// buffer must be symmetric (debug-asserted).
    pub fn from_raw(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer/dimension mismatch");
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..i {
                debug_assert!(
                    (data[i * n + j] - data[j * n + i]).abs()
                        <= 1e-9 * (1.0 + data[i * n + j].abs()),
                    "matrix is not symmetric at ({i},{j})"
                );
            }
        }
        SymMatrix { n, data }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set `(i,j)` and `(j,i)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Add `v` to every diagonal element (jitter / noise variance).
    pub fn add_diagonal(&mut self, v: f64) {
        for i in 0..self.n {
            self.data[i * self.n + i] += v;
        }
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| dot(&self.data[i * self.n..(i + 1) * self.n], x))
            .collect()
    }
}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower triangle; entries above the diagonal are zero.
    l: Vec<f64>,
}

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the factorization broke down.
    pub pivot: usize,
    /// The offending diagonal value after elimination.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Uses the (row-oriented) Cholesky–Banachiewicz scheme: each row of
    /// `L` is computed from previously finished rows with contiguous dot
    /// products.
    pub fn factor(a: &SymMatrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.n();
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let s = dot(&l[i * n..i * n + j], &l[j * n..j * n + j]);
                if i == j {
                    let d = a.get(i, i) - s;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(NotPositiveDefinite { pivot: i, value: d });
                    }
                    l[i * n + i] = d.sqrt();
                } else {
                    l[i * n + j] = (a.get(i, j) - s) / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `L[i][j]` for `j <= i`.
    #[inline]
    pub fn l(&self, i: usize, j: usize) -> f64 {
        self.l[i * self.n + j]
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let s = dot(&self.l[i * self.n..i * self.n + i], &y[..i]);
            y[i] = (b[i] - s) / self.l[i * self.n + i];
        }
        y
    }

    /// Solve `Lᵀ x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.n);
        let n = self.n;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = 0.0;
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s += self.l[k * n + i] * xk;
            }
            x[i] = (y[i] - s) / self.l[i * n + i];
        }
        x
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log det A = 2 Σ log L[i][i]` — the determinant term of the
    /// Gaussian log-marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Dense dot product. The explicit loop vectorizes well; slices keep the
/// bounds check out of the loop.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

/// Squared Euclidean distance between two feature vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> SymMatrix {
        // A = B Bᵀ + n·I is SPD for any B.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = dot(&b[i * n..(i + 1) * n], &b[j * n..(j + 1) * n]);
                a.set(i, j, v);
            }
        }
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        for n in [1, 2, 3, 7, 20] {
            let a = spd(n, n as u64);
            let ch = Cholesky::factor(&a).unwrap();
            for i in 0..n {
                for j in 0..=i {
                    let mut s = 0.0;
                    for k in 0..=j {
                        s += ch.l(i, k) * ch.l(j, k);
                    }
                    assert!(
                        (s - a.get(i, j)).abs() < 1e-8 * (1.0 + a.get(i, j).abs()),
                        "n={n} ({i},{j}): {s} vs {}",
                        a.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn solve_inverts_matvec() {
        for n in [1, 3, 9, 25] {
            let a = spd(n, 100 + n as u64);
            let ch = Cholesky::factor(&a).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b = a.matvec(&x_true);
            let x = ch.solve(&b);
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8, "n={n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 4.0);
        a.set(1, 1, 9.0);
        a.set(0, 1, 2.0);
        let ch = Cholesky::factor(&a).unwrap();
        let det: f64 = 4.0 * 9.0 - 2.0 * 2.0;
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        a.set(0, 1, 2.0); // eigenvalues 3 and -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
    }

    #[test]
    fn zero_matrix_is_rejected() {
        let a = SymMatrix::zeros(3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn triangular_solves_agree_with_full_solve() {
        let a = spd(6, 42);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let y = ch.solve_lower(&b);
        let x = ch.solve_upper(&y);
        let direct = ch.solve(&b);
        for (a, b) in x.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn sq_dist_and_dot_basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = spd(4, 7);
        let before = a.clone();
        a.add_diagonal(2.5);
        for i in 0..4 {
            for j in 0..4 {
                let expect = before.get(i, j) + if i == j { 2.5 } else { 0.0 };
                assert_eq!(a.get(i, j), expect);
            }
        }
    }
}
