//! Tabular dataset representation, plus the pre-binned column-major view
//! the histogram tree trainer runs on.

use std::sync::OnceLock;

/// Maximum distinct values per feature for lossless `u8` binning. Tuning
/// parameters take ≤ 37 distinct values in the BAT spaces, so the cap is
/// never hit there; datasets that exceed it fall back to the exact
/// sort-based splitter.
pub const MAX_BINS: usize = 256;

/// A dense tabular regression dataset: `n` rows × `d` features plus a
/// target column. Feature matrices are stored row-major; a column-major
/// binned view is built lazily (once per dataset) for histogram training.
#[derive(Debug, Clone)]
pub struct Dataset {
    n_rows: usize,
    n_features: usize,
    x: Vec<f64>,
    y: Vec<f64>,
    feature_names: Vec<String>,
    binned: OnceLock<Option<BinnedMatrix>>,
}

/// Column-major pre-binned feature matrix.
///
/// Each feature's values are mapped to the rank of the value among the
/// feature's sorted distinct values, stored as one contiguous `u8` column
/// per feature. Because every distinct value keeps its own bin, the mapping
/// is lossless: a histogram split on bin boundaries enumerates exactly the
/// candidate thresholds of the exact sort-based splitter.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    n_rows: usize,
    n_features: usize,
    /// Per-feature sorted distinct values; `values[f][b]` is the value
    /// represented by bin `b` of feature `f`.
    values: Vec<Vec<f64>>,
    /// Exclusive prefix offsets into the concatenated bin axis: feature `f`
    /// owns global bins `offsets[f]..offsets[f + 1]`.
    offsets: Vec<usize>,
    /// Column-major bin codes: `codes[f * n_rows + i]` is row `i`'s bin in
    /// feature `f`.
    codes: Vec<u8>,
}

impl BinnedMatrix {
    /// Bin every feature of `data`, or `None` if some feature has more than
    /// [`MAX_BINS`] distinct values.
    fn build(data: &Dataset) -> Option<BinnedMatrix> {
        let n = data.n_rows;
        let d = data.n_features;
        let mut values = Vec::with_capacity(d);
        let mut offsets = Vec::with_capacity(d + 1);
        offsets.push(0usize);
        let mut codes = vec![0u8; n * d];
        for f in 0..d {
            let uniq = data.unique_values(f);
            if uniq.len() > MAX_BINS {
                return None;
            }
            let col = &mut codes[f * n..(f + 1) * n];
            for (i, slot) in col.iter_mut().enumerate() {
                let v = data.value(i, f);
                // `v` is a member of `uniq`, so partition_point finds its rank.
                *slot = uniq.partition_point(|&u| u < v) as u8;
            }
            offsets.push(offsets[f] + uniq.len());
            values.push(uniq);
        }
        Some(BinnedMatrix {
            n_rows: n,
            n_features: d,
            values,
            offsets,
            codes,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total bins across all features (the histogram buffer length).
    #[inline]
    pub fn total_bins(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// Start of feature `f`'s bins on the concatenated bin axis.
    #[inline]
    pub fn bin_offset(&self, feature: usize) -> usize {
        self.offsets[feature]
    }

    /// Number of bins (distinct values) of feature `f`.
    #[inline]
    pub fn n_bins(&self, feature: usize) -> usize {
        self.offsets[feature + 1] - self.offsets[feature]
    }

    /// The sorted distinct values of feature `f` (bin → value).
    #[inline]
    pub fn bin_values(&self, feature: usize) -> &[f64] {
        &self.values[feature]
    }

    /// Feature `f`'s contiguous per-row bin codes.
    #[inline]
    pub fn feature_codes(&self, feature: usize) -> &[u8] {
        &self.codes[feature * self.n_rows..(feature + 1) * self.n_rows]
    }
}

impl Dataset {
    /// Build a dataset from rows. Every row must have the same length.
    pub fn new(rows: &[Vec<f64>], y: Vec<f64>, feature_names: Vec<String>) -> Self {
        assert_eq!(rows.len(), y.len(), "row/target count mismatch");
        assert!(!rows.is_empty(), "dataset needs at least one row");
        let d = rows[0].len();
        assert_eq!(feature_names.len(), d, "feature-name count mismatch");
        let mut x = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            x.extend_from_slice(r);
        }
        Dataset {
            n_rows: rows.len(),
            n_features: d,
            x,
            y,
            feature_names,
            binned: OnceLock::new(),
        }
    }

    /// Build from a flat row-major matrix.
    pub fn from_flat(
        x: Vec<f64>,
        y: Vec<f64>,
        n_features: usize,
        feature_names: Vec<String>,
    ) -> Self {
        assert_eq!(x.len(), y.len() * n_features, "matrix shape mismatch");
        assert_eq!(feature_names.len(), n_features);
        Dataset {
            n_rows: y.len(),
            n_features,
            x,
            y,
            feature_names,
            binned: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Feature value (row, feature).
    #[inline]
    pub fn value(&self, row: usize, feature: usize) -> f64 {
        self.x[row * self.n_features + feature]
    }

    /// Target column.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// The column-major binned view, built on first use and cached for the
    /// dataset's lifetime (one binning pass serves every boosting stage and
    /// every bagged tree). `None` when some feature exceeds [`MAX_BINS`]
    /// distinct values.
    pub fn binned(&self) -> Option<&BinnedMatrix> {
        self.binned
            .get_or_init(|| BinnedMatrix::build(self))
            .as_ref()
    }

    /// A copy with one feature column replaced (used by permutation
    /// importance). The bin cache is not carried over (it would describe
    /// the pre-replacement column, and the permuted copies are only ever
    /// predicted on).
    pub fn with_column(&self, feature: usize, column: &[f64]) -> Dataset {
        assert_eq!(column.len(), self.n_rows);
        let mut x = self.x.clone();
        for (i, v) in column.iter().enumerate() {
            x[i * self.n_features + feature] = *v;
        }
        Dataset {
            n_rows: self.n_rows,
            n_features: self.n_features,
            x,
            y: self.y.clone(),
            feature_names: self.feature_names.clone(),
            binned: OnceLock::new(),
        }
    }

    /// Extract one feature column.
    pub fn column(&self, feature: usize) -> Vec<f64> {
        (0..self.n_rows).map(|i| self.value(i, feature)).collect()
    }

    /// Sorted unique values of a feature column.
    pub fn unique_values(&self, feature: usize) -> Vec<f64> {
        let mut v = self.column(feature);
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            &[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 10.0]],
            vec![0.1, 0.2, 0.3],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn shape_accessors() {
        let d = toy();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[2.0, 20.0]);
        assert_eq!(d.value(2, 1), 10.0);
    }

    #[test]
    fn unique_values_sorted() {
        let d = toy();
        assert_eq!(d.unique_values(1), vec![10.0, 20.0]);
    }

    #[test]
    fn column_replacement() {
        let d = toy();
        let swapped = d.with_column(0, &[9.0, 8.0, 7.0]);
        assert_eq!(swapped.value(0, 0), 9.0);
        assert_eq!(swapped.value(0, 1), 10.0); // other column untouched
        assert_eq!(d.value(0, 0), 1.0); // original untouched
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(
            &[vec![1.0], vec![1.0, 2.0]],
            vec![0.0, 0.0],
            vec!["a".into()],
        );
    }

    #[test]
    fn binning_is_lossless() {
        let d = toy();
        let b = d.binned().expect("≤256 distinct values");
        assert_eq!(b.n_rows(), 3);
        assert_eq!(b.n_features(), 2);
        // Feature 0: values 1, 2, 3 → bins 0, 1, 2.
        assert_eq!(b.feature_codes(0), &[0, 1, 2]);
        // Feature 1: values 10, 20, 10 → bins 0, 1, 0.
        assert_eq!(b.feature_codes(1), &[0, 1, 0]);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.n_bins(1), 2);
        assert_eq!(b.total_bins(), 5);
        assert_eq!(b.bin_offset(1), 3);
        // Round-trip: bin value of each row's code equals the raw value.
        for f in 0..2 {
            for (i, &code) in b.feature_codes(f).iter().enumerate() {
                assert_eq!(b.bin_values(f)[code as usize], d.value(i, f));
            }
        }
    }

    #[test]
    fn binned_cache_resets_on_column_replacement() {
        let d = toy();
        let _ = d.binned();
        let swapped = d.with_column(1, &[5.0, 5.0, 5.0]);
        let b = swapped.binned().unwrap();
        assert_eq!(b.n_bins(1), 1);
        assert_eq!(b.feature_codes(1), &[0, 0, 0]);
    }

    #[test]
    fn too_many_distinct_values_disable_binning() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![f64::from(i)]).collect();
        let y = vec![0.0; 300];
        let d = Dataset::new(&rows, y, vec!["x".into()]);
        assert!(d.binned().is_none());
    }
}
