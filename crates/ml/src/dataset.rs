//! Tabular dataset representation.

/// A dense tabular regression dataset: `n` rows × `d` features plus a
/// target column. Feature matrices are stored row-major.
#[derive(Debug, Clone)]
pub struct Dataset {
    n_rows: usize,
    n_features: usize,
    x: Vec<f64>,
    y: Vec<f64>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset from rows. Every row must have the same length.
    pub fn new(rows: &[Vec<f64>], y: Vec<f64>, feature_names: Vec<String>) -> Self {
        assert_eq!(rows.len(), y.len(), "row/target count mismatch");
        assert!(!rows.is_empty(), "dataset needs at least one row");
        let d = rows[0].len();
        assert_eq!(feature_names.len(), d, "feature-name count mismatch");
        let mut x = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            x.extend_from_slice(r);
        }
        Dataset {
            n_rows: rows.len(),
            n_features: d,
            x,
            y,
            feature_names,
        }
    }

    /// Build from a flat row-major matrix.
    pub fn from_flat(
        x: Vec<f64>,
        y: Vec<f64>,
        n_features: usize,
        feature_names: Vec<String>,
    ) -> Self {
        assert_eq!(x.len(), y.len() * n_features, "matrix shape mismatch");
        assert_eq!(feature_names.len(), n_features);
        Dataset {
            n_rows: y.len(),
            n_features,
            x,
            y,
            feature_names,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Feature value (row, feature).
    #[inline]
    pub fn value(&self, row: usize, feature: usize) -> f64 {
        self.x[row * self.n_features + feature]
    }

    /// Target column.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// A copy with one feature column replaced (used by permutation
    /// importance).
    pub fn with_column(&self, feature: usize, column: &[f64]) -> Dataset {
        assert_eq!(column.len(), self.n_rows);
        let mut out = self.clone();
        for (i, v) in column.iter().enumerate() {
            out.x[i * self.n_features + feature] = *v;
        }
        out
    }

    /// Extract one feature column.
    pub fn column(&self, feature: usize) -> Vec<f64> {
        (0..self.n_rows).map(|i| self.value(i, feature)).collect()
    }

    /// Sorted unique values of a feature column.
    pub fn unique_values(&self, feature: usize) -> Vec<f64> {
        let mut v = self.column(feature);
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature"));
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            &[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 10.0]],
            vec![0.1, 0.2, 0.3],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn shape_accessors() {
        let d = toy();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[2.0, 20.0]);
        assert_eq!(d.value(2, 1), 10.0);
    }

    #[test]
    fn unique_values_sorted() {
        let d = toy();
        assert_eq!(d.unique_values(1), vec![10.0, 20.0]);
    }

    #[test]
    fn column_replacement() {
        let d = toy();
        let swapped = d.with_column(0, &[9.0, 8.0, 7.0]);
        assert_eq!(swapped.value(0, 0), 9.0);
        assert_eq!(swapped.value(0, 1), 10.0); // other column untouched
        assert_eq!(d.value(0, 0), 1.0); // original untouched
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(
            &[vec![1.0], vec![1.0, 2.0]],
            vec![0.0, 0.0],
            vec!["a".into()],
        );
    }
}
