//! Gaussian-process regression for Bayesian-optimization tuners.
//!
//! The paper's ecosystem uses GP-based Bayesian optimization for GPU
//! autotuning (Willemsen et al., reference \[22\]); this module provides the
//! model side: an exact GP with RBF or Matérn-5/2 kernel, trained by
//! maximizing the log-marginal likelihood over a deterministic
//! hyperparameter grid.
//!
//! Inputs are normalized per-dimension to the unit cube and targets are
//! standardized internally, so the same hyperparameter grid works across
//! benchmarks whose parameter magnitudes differ by orders of magnitude
//! (`VWM ∈ {1..8}` vs `loop_unroll_factor_channel ∈ {0..1536}`).

use crate::linalg::{sq_dist, Cholesky, SymMatrix};

/// Covariance function family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Squared-exponential: smooth, infinitely differentiable.
    Rbf,
    /// Matérn ν = 5/2: the default in autotuning BO (ref \[22\]) — rough
    /// enough for discrete landscapes, smooth enough for a usable gradient.
    Matern52,
}

impl KernelKind {
    /// Covariance of two normalized points at lengthscale `ell`
    /// (unit signal variance).
    #[inline]
    fn eval(self, a: &[f64], b: &[f64], ell: f64) -> f64 {
        let d2 = sq_dist(a, b);
        match self {
            KernelKind::Rbf => (-0.5 * d2 / (ell * ell)).exp(),
            KernelKind::Matern52 => {
                let r = d2.sqrt() / ell;
                let s = 5.0_f64.sqrt() * r;
                (1.0 + s + 5.0 * d2 / (3.0 * ell * ell)) * (-s).exp()
            }
        }
    }
}

/// GP fitting options.
#[derive(Debug, Clone)]
pub struct GpParams {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Candidate lengthscales (on normalized inputs).
    pub lengthscales: Vec<f64>,
    /// Candidate noise variances (on standardized targets).
    pub noises: Vec<f64>,
}

impl Default for GpParams {
    fn default() -> Self {
        GpParams {
            kernel: KernelKind::Matern52,
            lengthscales: vec![0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.5],
            noises: vec![1e-6, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1],
        }
    }
}

impl GpParams {
    /// Fix the hyperparameters instead of grid-searching.
    pub fn fixed(kernel: KernelKind, lengthscale: f64, noise: f64) -> Self {
        GpParams {
            kernel,
            lengthscales: vec![lengthscale],
            noises: vec![noise],
        }
    }
}

/// Prediction: posterior mean and (latent) variance in target units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpPrediction {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance of the latent function (≥ 0).
    pub variance: f64,
}

impl GpPrediction {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// A fitted exact Gaussian process.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: KernelKind,
    lengthscale: f64,
    noise: f64,
    /// Normalized training inputs, row-major `n × d`.
    x: Vec<f64>,
    d: usize,
    /// Per-dimension (min, max) of the raw training inputs.
    ranges: Vec<(f64, f64)>,
    /// Target mean/std used for standardization.
    y_mean: f64,
    y_std: f64,
    /// `α = K⁻¹ y` on standardized targets.
    alpha: Vec<f64>,
    chol: Cholesky,
    lml: f64,
}

impl GaussianProcess {
    /// Fit a GP to `(rows, y)`, selecting the hyperparameter pair with the
    /// highest log-marginal likelihood from the grids in `params`.
    ///
    /// # Panics
    /// If `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>], y: &[f64], params: &GpParams) -> Self {
        assert!(!rows.is_empty(), "GP needs at least one observation");
        assert_eq!(rows.len(), y.len(), "row/target count mismatch");
        let n = rows.len();
        let d = rows[0].len();

        // Input normalization to the unit cube.
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                ranges[j].0 = ranges[j].0.min(v);
                ranges[j].1 = ranges[j].1.max(v);
            }
        }
        let mut x = Vec::with_capacity(n * d);
        for r in rows {
            for (j, &v) in r.iter().enumerate() {
                x.push(normalize(v, ranges[j]));
            }
        }

        // Target standardization.
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let y_std = if var > 1e-24 { var.sqrt() } else { 1.0 };
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        // Grid search over (lengthscale, noise) maximizing the LML.
        let mut best: Option<(f64, f64, f64, Cholesky, Vec<f64>)> = None;
        for &ell in &params.lengthscales {
            let k = kernel_matrix(params.kernel, &x, n, d, ell);
            for &noise in &params.noises {
                let mut kn = k.clone();
                kn.add_diagonal(noise + 1e-10);
                let Ok(chol) = Cholesky::factor(&kn) else {
                    continue;
                };
                let alpha = chol.solve(&ys);
                let fit: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
                let lml = -0.5 * fit
                    - 0.5 * chol.log_det()
                    - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
                if best.as_ref().is_none_or(|b| lml > b.0) {
                    best = Some((lml, ell, noise, chol, alpha));
                }
            }
        }
        let (lml, lengthscale, noise, chol, alpha) =
            best.expect("at least one grid point must factor; jitter guarantees it");

        GaussianProcess {
            kernel: params.kernel,
            lengthscale,
            noise,
            x,
            d,
            ranges,
            y_mean,
            y_std,
            alpha,
            chol,
            lml,
        }
    }

    /// Number of training observations.
    pub fn n_observations(&self) -> usize {
        self.alpha.len()
    }

    /// Selected lengthscale (normalized-input units).
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// Selected noise variance (standardized-target units).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Log-marginal likelihood of the selected hyperparameters.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// Posterior mean and latent variance at `row` (raw input units).
    pub fn predict(&self, row: &[f64]) -> GpPrediction {
        assert_eq!(row.len(), self.d, "feature-count mismatch");
        let n = self.n_observations();
        let q: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(j, &v)| normalize(v, self.ranges[j]))
            .collect();
        let kstar: Vec<f64> = (0..n)
            .map(|i| {
                self.kernel
                    .eval(&q, &self.x[i * self.d..(i + 1) * self.d], self.lengthscale)
            })
            .collect();
        let mean_s = crate::linalg::dot(&kstar, &self.alpha);
        // v = L⁻¹ k*; var = k** − vᵀv.
        let v = self.chol.solve_lower(&kstar);
        let kss = 1.0; // unit signal variance on standardized targets
        let var_s = (kss - crate::linalg::dot(&v, &v)).max(0.0);
        GpPrediction {
            mean: mean_s * self.y_std + self.y_mean,
            variance: var_s * self.y_std * self.y_std,
        }
    }
}

fn normalize(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        (v - lo) / (hi - lo)
    } else {
        0.0
    }
}

fn kernel_matrix(kernel: KernelKind, x: &[f64], n: usize, d: usize, ell: f64) -> SymMatrix {
    let mut k = SymMatrix::zeros(n);
    for i in 0..n {
        for j in 0..=i {
            let v = kernel.eval(&x[i * d..(i + 1) * d], &x[j * d..(j + 1) * d], ell);
            k.set(i, j, v);
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / (n - 1) as f64 * 6.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin() * 3.0 + 10.0).collect();
        (rows, y)
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        for kernel in [KernelKind::Rbf, KernelKind::Matern52] {
            let (rows, y) = sine_data(25);
            let gp = GaussianProcess::fit(
                &rows,
                &y,
                &GpParams {
                    kernel,
                    ..GpParams::default()
                },
            );
            for (r, t) in rows.iter().zip(&y) {
                let p = gp.predict(r);
                assert!((p.mean - t).abs() < 0.15, "{kernel:?}: {} vs {t}", p.mean);
            }
        }
    }

    #[test]
    fn variance_smaller_at_data_than_in_gaps() {
        let rows = vec![vec![0.0], vec![1.0], vec![9.0], vec![10.0]];
        let y = vec![1.0, 2.0, 4.0, 3.0];
        let gp = GaussianProcess::fit(&rows, &y, &GpParams::default());
        let at_data = gp.predict(&[1.0]).variance;
        let in_gap = gp.predict(&[5.0]).variance;
        assert!(
            in_gap > at_data,
            "gap variance {in_gap} should exceed data variance {at_data}"
        );
    }

    #[test]
    fn reverts_to_prior_mean_far_from_data() {
        let rows = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = vec![5.0, 7.0, 6.0];
        // Fixed short lengthscale so "far" is reachable.
        let gp = GaussianProcess::fit(&rows, &y, &GpParams::fixed(KernelKind::Rbf, 0.1, 1e-6));
        let far = gp.predict(&[100.0]);
        let prior_mean = 6.0; // mean of y
        assert!((far.mean - prior_mean).abs() < 1e-6, "mean {}", far.mean);
        // Prior variance = Var(y).
        let prior_var = ((5.0_f64 - 6.0).powi(2) + 1.0 + 0.0) / 3.0;
        assert!((far.variance - prior_var).abs() < 1e-6);
    }

    #[test]
    fn grid_fit_beats_or_matches_any_fixed_grid_point() {
        let (rows, y) = sine_data(20);
        let params = GpParams::default();
        let fitted = GaussianProcess::fit(&rows, &y, &params);
        for &ell in &params.lengthscales {
            for &noise in &params.noises {
                let single =
                    GaussianProcess::fit(&rows, &y, &GpParams::fixed(params.kernel, ell, noise));
                assert!(
                    fitted.log_marginal_likelihood() >= single.log_marginal_likelihood() - 1e-9
                );
            }
        }
    }

    #[test]
    fn single_observation_predicts_itself() {
        let gp = GaussianProcess::fit(&[vec![3.0, 4.0]], &[42.0], &GpParams::default());
        let p = gp.predict(&[3.0, 4.0]);
        assert!((p.mean - 42.0).abs() < 1e-6);
        assert_eq!(gp.n_observations(), 1);
    }

    #[test]
    fn constant_targets_are_handled() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0]];
        let gp = GaussianProcess::fit(&rows, &[7.0, 7.0, 7.0], &GpParams::default());
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 7.0).abs() < 1e-6);
    }

    #[test]
    fn multidimensional_regression_is_accurate() {
        // y = product surface on a 6×6 grid; leave-out points predicted well.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push(vec![i as f64, j as f64 * 10.0]); // different scales
                y.push((i as f64 - 2.5).powi(2) + (j as f64 - 2.5).powi(2));
            }
        }
        let gp = GaussianProcess::fit(&rows, &y, &GpParams::default());
        let p = gp.predict(&[2.0, 30.0]);
        let truth = (2.0_f64 - 2.5).powi(2) + (3.0_f64 - 2.5).powi(2);
        assert!((p.mean - truth).abs() < 0.5, "{} vs {truth}", p.mean);
    }

    #[test]
    fn matern_and_rbf_agree_at_zero_distance() {
        let a = [0.3, 0.7];
        assert!((KernelKind::Rbf.eval(&a, &a, 0.5) - 1.0).abs() < 1e-12);
        assert!((KernelKind::Matern52.eval(&a, &a, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernels_decay_with_distance() {
        for kernel in [KernelKind::Rbf, KernelKind::Matern52] {
            let mut prev = 1.0;
            for i in 1..10 {
                let b = [i as f64 / 10.0];
                let v = kernel.eval(&[0.0], &b, 0.4);
                assert!(v < prev, "{kernel:?} not decaying at {i}");
                assert!(v > 0.0);
                prev = v;
            }
        }
    }
}
