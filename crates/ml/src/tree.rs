//! CART regression trees with histogram-based split search over pre-binned
//! discrete features.
//!
//! Tuning-parameter features take few distinct values (≤ 37 in the BAT
//! spaces), so each feature is binned once per dataset into a column-major
//! `u8` code matrix ([`crate::dataset::BinnedMatrix`]) and every tree node
//! trains from per-bin (sum, sum-of-squares, count) histograms. Child
//! histograms come from the parent-minus-sibling subtraction trick: only
//! the smaller child is re-scanned, the larger is derived by subtraction.
//! Because every distinct value keeps its own bin, the histogram split
//! candidates are exactly the exact sort-based splitter's candidates — the
//! two trainers build the same tree (bit-for-bit whenever target sums incur
//! no rounding, e.g. integer-valued targets).
//!
//! The sort-based splitter is kept as [`RegressionTree::fit_exact`] /
//! `best_split_exact` as the equivalence-test oracle and benchmark
//! baseline. Split quality is variance reduction (equivalent to
//! squared-error gain) in both paths.

use rayon::prelude::*;

use crate::dataset::{BinnedMatrix, Dataset};

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization λ on leaf values (XGBoost-style second-order
    /// boosting): each leaf takes the Newton step of the regularized
    /// squared loss, `w* = Σr / (n + λ)`, instead of the plain residual
    /// mean `Σr / n`. For squared error the per-sample Hessian is 1, so
    /// the node statistics the histograms already carry — (sum, sum²,
    /// count) — are exactly the gradient/Hessian totals the step needs.
    /// `λ = 0` (the default) reproduces the first-order leaves bit for
    /// bit.
    pub leaf_lambda: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_leaf: 5,
            leaf_lambda: 0.0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct SplitCandidate {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// A chosen histogram split: the bin boundary plus the exact-splitter
/// threshold it corresponds to.
struct HistSplit {
    feature: usize,
    /// Last bin routed left: rows go left iff `code <= bin`.
    bin: u8,
    threshold: f64,
    gain: f64,
}

/// Relative width of the gain tie band. Two candidate gains within
/// `GAIN_TIE_REL * parent_sse` of each other are treated as tied and
/// resolved by a deterministic key (lowest threshold within a feature,
/// highest feature index across features — the historical `max_by`
/// semantics). The band absorbs last-ulp summation-order differences
/// between the histogram path (per-bin partial sums, parent-minus-sibling
/// subtraction) and the sort-based exact path, so mathematically tied
/// splits resolve identically in both.
const GAIN_TIE_REL: f64 = 1e-9;

/// Per-bin target statistics of one tree node.
#[derive(Debug, Clone, Copy, Default)]
struct BinStat {
    sum: f64,
    sq: f64,
    n: u32,
}

/// A pool of histogram buffers reused across nodes (and, via
/// [`TreeScratch`], across boosting stages). Depth-first growth parks at
/// most one sibling histogram per level, so the pool holds ≤ depth + 1
/// buffers.
#[derive(Debug, Default)]
struct HistPool {
    bufs: Vec<Vec<BinStat>>,
    free: Vec<usize>,
}

impl HistPool {
    /// A zeroed buffer of `total_bins` stats (recycled when possible).
    fn alloc(&mut self, total_bins: usize) -> usize {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.bufs.push(Vec::new());
                self.bufs.len() - 1
            }
        };
        let buf = &mut self.bufs[id];
        buf.clear();
        buf.resize(total_bins, BinStat::default());
        id
    }

    fn release(&mut self, id: usize) {
        self.free.push(id);
    }

    /// `dst -= src`, bin-wise: derives the larger child's histogram from
    /// the parent's (in `dst`) and the freshly-scanned smaller child's.
    fn subtract(&mut self, dst: usize, src: usize) {
        let (a, b) = if dst < src {
            let (lo, hi) = self.bufs.split_at_mut(src);
            (&mut lo[dst], &hi[0][..])
        } else {
            let (lo, hi) = self.bufs.split_at_mut(dst);
            (&mut hi[0], &lo[src][..])
        };
        for (d, s) in a.iter_mut().zip(b) {
            d.sum -= s.sum;
            d.sq -= s.sq;
            d.n -= s.n;
        }
    }
}

/// Reusable fitting buffers: one instance per fit site amortizes every
/// per-node allocation of the old trainer across all nodes, trees and
/// boosting stages.
#[derive(Debug, Default)]
pub(crate) struct TreeScratch {
    /// Working copy of the caller's row set (partitioned in place).
    rows: Vec<usize>,
    /// Single scratch buffer for the stable partition.
    part: Vec<usize>,
    /// Per-node `(target, target²)` gather for histogram builds.
    gather: Vec<(f64, f64)>,
    pool: HistPool,
}

/// Optional folded prediction update: `(predictions, learning_rate)`. When
/// set, every leaf adds `learning_rate * leaf_value` to `predictions[r]`
/// for each training row `r` that lands in it — the boosting update for
/// in-sample rows without a separate predict pass.
pub(crate) type FoldInto<'a> = Option<(&'a mut [f64], f64)>;

/// Stable partition with a single scratch buffer: rows satisfying `pred`
/// first, preserving relative order; returns the split point.
fn stable_partition<F: Fn(usize) -> bool>(
    rows: &mut [usize],
    scratch: &mut Vec<usize>,
    pred: F,
) -> usize {
    scratch.clear();
    let mut write = 0;
    for i in 0..rows.len() {
        let r = rows[i];
        if pred(r) {
            rows[write] = r;
            write += 1;
        } else {
            scratch.push(r);
        }
    }
    rows[write..].copy_from_slice(scratch);
    write
}

/// Accumulate the node's per-bin histogram over `rows`, feature-major so
/// each feature's column-major codes stream contiguously. Targets are
/// gathered once into `gather` (rows order) rather than re-loaded per
/// feature; the per-bin summation order is unchanged.
fn fill_hist(
    binned: &BinnedMatrix,
    targets: &[f64],
    rows: &[usize],
    hist: &mut [BinStat],
    gather: &mut Vec<(f64, f64)>,
) {
    gather.clear();
    gather.extend(rows.iter().map(|&r| {
        let t = targets[r];
        (t, t * t)
    }));
    for f in 0..binned.n_features() {
        let codes = binned.feature_codes(f);
        let base = binned.bin_offset(f);
        for (&r, &(t, tt)) in rows.iter().zip(gather.iter()) {
            let b = &mut hist[base + codes[r] as usize];
            b.sum += t;
            b.sq += tt;
            b.n += 1;
        }
    }
}

/// Tree-growing context shared by the histogram and exact paths.
struct Grower<'a> {
    data: &'a Dataset,
    binned: Option<&'a BinnedMatrix>,
    targets: &'a [f64],
    params: &'a TreeParams,
    part: &'a mut Vec<usize>,
    gather: &'a mut Vec<(f64, f64)>,
    pool: &'a mut HistPool,
    fold: FoldInto<'a>,
    nodes: Vec<Node>,
}

impl Grower<'_> {
    fn leaf(&mut self, value: f64, rows: &[usize]) -> usize {
        if let Some((pred, lr)) = &mut self.fold {
            for &r in rows {
                pred[r] += *lr * value;
            }
        }
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// The node's leaf value: the Newton step of the λ-regularized squared
    /// loss (`Σr / (n + λ)`; the plain mean when λ = 0).
    fn leaf_value(&self, sum: f64, n: usize) -> f64 {
        sum / (n.max(1) as f64 + self.params.leaf_lambda)
    }

    /// Histogram path: `hist_id` holds this node's pre-built histogram and
    /// is consumed (released or handed to a child) before returning.
    fn grow_hist(&mut self, rows: &mut [usize], depth: usize, hist_id: usize) -> usize {
        let binned = self.binned.expect("histogram path requires bins");
        let n = rows.len();
        let mut sum = 0.0;
        let mut sq = 0.0;
        for &r in rows.iter() {
            let t = self.targets[r];
            sum += t;
            sq += t * t;
        }
        let value = self.leaf_value(sum, n);
        if depth >= self.params.max_depth || n < 2 * self.params.min_samples_leaf {
            self.pool.release(hist_id);
            return self.leaf(value, rows);
        }
        let Some(best) = self.best_split_hist(hist_id, n as f64, sum, sq) else {
            self.pool.release(hist_id);
            return self.leaf(value, rows);
        };
        let codes = binned.feature_codes(best.feature);
        let mid = stable_partition(rows, self.part, |r| codes[r] <= best.bin);
        if mid == 0 || mid == n {
            // Unreachable for a valid histogram split; kept as a guard.
            self.pool.release(hist_id);
            return self.leaf(value, rows);
        }
        // Scan only the smaller child; derive the larger by subtraction.
        let small_is_left = mid <= n - mid;
        let small_id = self.pool.alloc(binned.total_bins());
        let small_rows = if small_is_left {
            &rows[..mid]
        } else {
            &rows[mid..]
        };
        fill_hist(
            binned,
            self.targets,
            small_rows,
            &mut self.pool.bufs[small_id],
            self.gather,
        );
        self.pool.subtract(hist_id, small_id);
        let (left_id, right_id) = if small_is_left {
            (small_id, hist_id)
        } else {
            (hist_id, small_id)
        };
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf { value }); // replaced below
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.grow_hist(left_rows, depth + 1, left_id);
        let right = self.grow_hist(right_rows, depth + 1, right_id);
        self.nodes[placeholder] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        placeholder
    }

    /// Scan the node's histogram for the best variance-reduction split.
    /// Mirrors `best_split_exact` candidate-for-candidate: boundaries are
    /// only taken between *populated* bins, thresholds are midpoints of the
    /// adjacent populated values, ties within a feature keep the lowest
    /// threshold and ties across features keep the highest feature index
    /// (the exact path's `max_by` semantics).
    fn best_split_hist(&self, hist_id: usize, n: f64, sum: f64, sq: f64) -> Option<HistSplit> {
        let binned = self.binned.expect("histogram path requires bins");
        let parent_sse = sq - sum * sum / n;
        let tie_eps = GAIN_TIE_REL * parent_sse.abs();
        let hist = &self.pool.bufs[hist_id];
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<HistSplit> = None;
        for f in 0..binned.n_features() {
            let base = binned.bin_offset(f);
            let bins = &hist[base..base + binned.n_bins(f)];
            let vals = binned.bin_values(f);
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let mut left_n = 0u32;
            let mut prev: Option<usize> = None;
            let mut feat_best: Option<HistSplit> = None;
            for (b, stat) in bins.iter().enumerate() {
                if stat.n == 0 {
                    continue;
                }
                if let Some(pb) = prev {
                    let ln = f64::from(left_n);
                    let rn = n - ln;
                    if (ln as usize) >= min_leaf && (rn as usize) >= min_leaf {
                        let right_sum = sum - left_sum;
                        let right_sq = sq - left_sq;
                        let sse = (left_sq - left_sum * left_sum / ln)
                            + (right_sq - right_sum * right_sum / rn);
                        let gain = parent_sse - sse;
                        // Earlier (lower) thresholds win ties.
                        if gain > 1e-12
                            && feat_best.as_ref().is_none_or(|x| gain > x.gain + tie_eps)
                        {
                            feat_best = Some(HistSplit {
                                feature: f,
                                bin: pb as u8,
                                threshold: 0.5 * (vals[pb] + vals[b]),
                                gain,
                            });
                        }
                    }
                }
                left_sum += stat.sum;
                left_sq += stat.sq;
                left_n += stat.n;
                prev = Some(b);
            }
            if let Some(fb) = feat_best {
                // Later (higher) features win ties.
                if best.as_ref().is_none_or(|ov| fb.gain > ov.gain - tie_eps) {
                    best = Some(fb);
                }
            }
        }
        best
    }

    /// Exact path: per-node, per-feature sort over raw values.
    fn grow_exact(&mut self, rows: &mut [usize], depth: usize) -> usize {
        let sum = rows.iter().map(|&r| self.targets[r]).sum::<f64>();
        let value = self.leaf_value(sum, rows.len());
        if depth >= self.params.max_depth || rows.len() < 2 * self.params.min_samples_leaf {
            return self.leaf(value, rows);
        }
        let Some(best) = best_split_exact(self.data, self.targets, rows, self.params) else {
            return self.leaf(value, rows);
        };
        let data = self.data;
        let mid = stable_partition(rows, self.part, |r| {
            data.value(r, best.feature) <= best.threshold
        });
        if mid == 0 || mid == rows.len() {
            return self.leaf(value, rows);
        }
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf { value }); // replaced below
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.grow_exact(left_rows, depth + 1);
        let right = self.grow_exact(right_rows, depth + 1);
        self.nodes[placeholder] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        placeholder
    }
}

impl RegressionTree {
    /// Fit a tree to `(data, targets)` where `targets` overrides the
    /// dataset's own target column (the boosting residuals). Uses the
    /// histogram trainer whenever the dataset is binnable (≤ 256 distinct
    /// values per feature), falling back to the exact sort-based splitter
    /// otherwise.
    pub fn fit(data: &Dataset, targets: &[f64], rows: &[usize], params: &TreeParams) -> Self {
        let mut scratch = TreeScratch::default();
        Self::fit_with_scratch(data, targets, rows, params, &mut scratch, None, false)
    }

    /// Fit with the exact sort-based splitter regardless of binnability —
    /// the equivalence-test oracle and benchmark baseline.
    pub fn fit_exact(data: &Dataset, targets: &[f64], rows: &[usize], params: &TreeParams) -> Self {
        let mut scratch = TreeScratch::default();
        Self::fit_with_scratch(data, targets, rows, params, &mut scratch, None, true)
    }

    /// Fit reusing caller-owned scratch buffers, optionally folding leaf
    /// values into a prediction vector (`fold`), optionally forcing the
    /// exact splitter.
    pub(crate) fn fit_with_scratch(
        data: &Dataset,
        targets: &[f64],
        rows: &[usize],
        params: &TreeParams,
        scratch: &mut TreeScratch,
        fold: FoldInto<'_>,
        exact: bool,
    ) -> Self {
        assert_eq!(targets.len(), data.n_rows());
        assert!(
            params.leaf_lambda.is_finite() && params.leaf_lambda >= 0.0,
            "leaf_lambda must be a non-negative finite number"
        );
        let TreeScratch {
            rows: row_buf,
            part,
            gather,
            pool,
        } = scratch;
        row_buf.clear();
        row_buf.extend_from_slice(rows);
        let binned = if exact { None } else { data.binned() };
        let mut grower = Grower {
            data,
            binned,
            targets,
            params,
            part,
            gather,
            pool,
            fold,
            nodes: Vec::new(),
        };
        match binned {
            Some(b) => {
                let root = grower.pool.alloc(b.total_bins());
                fill_hist(
                    b,
                    targets,
                    row_buf,
                    &mut grower.pool.bufs[root],
                    grower.gather,
                );
                grower.grow_hist(row_buf, 0, root);
            }
            None => {
                grower.grow_exact(row_buf, 0);
            }
        }
        RegressionTree {
            nodes: grower.nodes,
        }
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// The sort-based exact splitter. Accumulates each equal-value group
/// separately before folding it into the left prefix — the same summation
/// order as a histogram bin — and applies the shared tie band, so a
/// freshly-scanned histogram node picks the identical split bit-for-bit.
fn best_split_exact(
    data: &Dataset,
    targets: &[f64],
    rows: &[usize],
    params: &TreeParams,
) -> Option<SplitCandidate> {
    let n = rows.len() as f64;
    let sum: f64 = rows.iter().map(|&r| targets[r]).sum();
    let sum_sq: f64 = rows.iter().map(|&r| targets[r] * targets[r]).sum();
    let parent_sse = sum_sq - sum * sum / n;
    let tie_eps = GAIN_TIE_REL * parent_sse.abs();

    let per_feature: Vec<SplitCandidate> = (0..data.n_features())
        .into_par_iter()
        .filter_map(|feature| {
            // Sort (value, target) pairs once per feature (stable, so rows
            // keep their node order within an equal-value group).
            let mut pairs: Vec<(f64, f64)> = rows
                .iter()
                .map(|&r| (data.value(r, feature), targets[r]))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature"));
            let mut best: Option<SplitCandidate> = None;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let mut left_n = 0.0;
            let mut i = 0;
            while i < pairs.len() {
                // Group-local sums first, then one fold into the prefix.
                let v = pairs[i].0;
                let mut group_sum = 0.0;
                let mut group_sq = 0.0;
                let mut group_n = 0.0;
                let mut j = i;
                while j < pairs.len() && pairs[j].0 == v {
                    let t = pairs[j].1;
                    group_sum += t;
                    group_sq += t * t;
                    group_n += 1.0;
                    j += 1;
                }
                left_sum += group_sum;
                left_sq += group_sq;
                left_n += group_n;
                i = j;
                if i >= pairs.len() {
                    break;
                }
                // Candidate boundary between value `v` and the next value.
                let right_n = n - left_n;
                if (left_n as usize) < params.min_samples_leaf
                    || (right_n as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = sum - left_sum;
                let right_sq = sum_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / left_n)
                    + (right_sq - right_sum * right_sum / right_n);
                let gain = parent_sse - sse;
                // Earlier (lower) thresholds win ties.
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain + tie_eps) {
                    best = Some(SplitCandidate {
                        feature,
                        threshold: 0.5 * (v + pairs[i].0),
                        gain,
                    });
                }
            }
            best
        })
        .collect();
    // Later (higher) features win ties — the historical `max_by` rule.
    let mut overall: Option<SplitCandidate> = None;
    for fb in per_feature {
        if overall
            .as_ref()
            .is_none_or(|ov| fb.gain > ov.gain - tie_eps)
        {
            overall = Some(fb);
        }
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Dataset, Vec<f64>) {
        // y = 1 for x<5, 10 for x>=5; second feature is noise.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![f64::from(i % 10), f64::from(i % 3)])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 5.0 { 1.0 } else { 10.0 })
            .collect();
        (
            Dataset::new(&rows, y.clone(), vec!["x".into(), "noise".into()]),
            y,
        )
    }

    #[test]
    fn learns_a_step_function() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit(&data, &y, &rows, &TreeParams::default());
        assert!((tree.predict(&[2.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[7.0, 0.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_mean_leaf() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit(
            &data,
            &y,
            &rows,
            &TreeParams {
                max_depth: 0,
                min_samples_leaf: 1,
                ..TreeParams::default()
            },
        );
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict(&[0.0, 0.0]) - mean).abs() < 1e-9);
        assert!(tree.is_empty());
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit(
            &data,
            &y,
            &rows,
            &TreeParams {
                max_depth: 10,
                min_samples_leaf: 60, // cannot split 100 rows into 60+60,
                ..TreeParams::default()
            },
        );
        assert!(tree.is_empty());
    }

    #[test]
    fn splits_prefer_informative_features() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let s = best_split_exact(&data, &y, &rows, &TreeParams::default()).unwrap();
        assert_eq!(s.feature, 0);
        assert!((s.threshold - 4.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_tree_matches_exact_tree() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        for params in [
            TreeParams::default(),
            TreeParams {
                max_depth: 10,
                min_samples_leaf: 1,
                ..TreeParams::default()
            },
            TreeParams {
                max_depth: 3,
                min_samples_leaf: 7,
                ..TreeParams::default()
            },
        ] {
            let hist = RegressionTree::fit(&data, &y, &rows, &params);
            let exact = RegressionTree::fit_exact(&data, &y, &rows, &params);
            for q in 0..data.n_rows() {
                assert_eq!(hist.predict(data.row(q)), exact.predict(data.row(q)));
            }
            // Off-grid queries must agree too: thresholds are identical.
            for x in [-1.0, 0.5, 4.49, 4.51, 9.7] {
                assert_eq!(hist.predict(&[x, 1.2]), exact.predict(&[x, 1.2]));
            }
        }
    }

    #[test]
    fn newton_lambda_shrinks_leaves_toward_zero() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let plain = RegressionTree::fit(&data, &y, &rows, &TreeParams::default());
        let damped = RegressionTree::fit(
            &data,
            &y,
            &rows,
            &TreeParams {
                leaf_lambda: 10.0,
                ..TreeParams::default()
            },
        );
        for q in 0..data.n_rows() {
            let p = plain.predict(data.row(q));
            let d = damped.predict(data.row(q));
            assert!(d.abs() < p.abs(), "λ must damp |{p}| but gave {d}");
            assert!(d.signum() == p.signum());
            // Exactly the Newton step: the 50-row leaves shrink by 50/60.
            assert!((d - p * 50.0 / 60.0).abs() < 1e-9);
        }
    }

    #[test]
    fn newton_lambda_holds_hist_exact_equivalence() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let params = TreeParams {
            leaf_lambda: 3.5,
            ..TreeParams::default()
        };
        let hist = RegressionTree::fit(&data, &y, &rows, &params);
        let exact = RegressionTree::fit_exact(&data, &y, &rows, &params);
        for q in 0..data.n_rows() {
            assert_eq!(hist.predict(data.row(q)), exact.predict(data.row(q)));
        }
    }

    #[test]
    #[should_panic(expected = "leaf_lambda")]
    fn negative_lambda_is_rejected() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let _ = RegressionTree::fit(
            &data,
            &y,
            &rows,
            &TreeParams {
                leaf_lambda: -1.0,
                ..TreeParams::default()
            },
        );
    }

    #[test]
    fn duplicate_rows_are_handled() {
        // Bootstrap-style row multisets (forest bagging) must work.
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).map(|i| (i * 7) % 50).collect();
        let hist = RegressionTree::fit(&data, &y, &rows, &TreeParams::default());
        let exact = RegressionTree::fit_exact(&data, &y, &rows, &TreeParams::default());
        for q in 0..data.n_rows() {
            assert_eq!(hist.predict(data.row(q)), exact.predict(data.row(q)));
        }
    }

    #[test]
    fn folded_predictions_match_predict() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let mut scratch = TreeScratch::default();
        let mut folded = vec![0.0; data.n_rows()];
        let lr = 0.3;
        let tree = RegressionTree::fit_with_scratch(
            &data,
            &y,
            &rows,
            &TreeParams::default(),
            &mut scratch,
            Some((&mut folded, lr)),
            false,
        );
        for (i, &f) in folded.iter().enumerate() {
            assert_eq!(f, lr * tree.predict(data.row(i)));
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_fits() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let mut scratch = TreeScratch::default();
        let a = RegressionTree::fit_with_scratch(
            &data,
            &y,
            &rows,
            &TreeParams::default(),
            &mut scratch,
            None,
            false,
        );
        let b = RegressionTree::fit_with_scratch(
            &data,
            &y,
            &rows,
            &TreeParams::default(),
            &mut scratch,
            None,
            false,
        );
        for q in 0..data.n_rows() {
            assert_eq!(a.predict(data.row(q)), b.predict(data.row(q)));
        }
    }
}
