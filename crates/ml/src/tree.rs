//! CART regression trees with exact split search over discrete features.
//!
//! Tuning-parameter features take few distinct values (≤ 37 in the BAT
//! spaces), so exact split enumeration is both cheap and optimal — no
//! histogram binning error. Split quality is variance reduction (equivalent
//! to squared-error gain).

use rayon::prelude::*;

use crate::dataset::Dataset;

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_leaf: 5,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct SplitCandidate {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl RegressionTree {
    /// Fit a tree to `(data, targets)` where `targets` overrides the
    /// dataset's own target column (the boosting residuals).
    pub fn fit(data: &Dataset, targets: &[f64], rows: &[usize], params: &TreeParams) -> Self {
        assert_eq!(targets.len(), data.n_rows());
        let mut tree = RegressionTree { nodes: Vec::new() };
        let mut row_buf: Vec<usize> = rows.to_vec();
        tree.build(data, targets, &mut row_buf, 0, params);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        rows: &mut [usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = rows.iter().map(|&r| targets[r]).sum::<f64>() / rows.len().max(1) as f64;
        if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let Some(best) = best_split(data, targets, rows, params) else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        // Partition rows in place.
        let mid = partition(rows, |&r| data.value(r, best.feature) <= best.threshold);
        if mid == 0 || mid == rows.len() {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // replaced below
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.build(data, targets, left_rows, depth + 1, params);
        let right = self.build(data, targets, right_rows, depth + 1, params);
        self.nodes[placeholder] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        placeholder
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// Stable partition: rows satisfying `pred` first; returns the split point.
fn partition<F: Fn(&usize) -> bool>(rows: &mut [usize], pred: F) -> usize {
    let matched: Vec<usize> = rows.iter().copied().filter(|r| pred(r)).collect();
    let rest: Vec<usize> = rows.iter().copied().filter(|r| !pred(r)).collect();
    let mid = matched.len();
    rows[..mid].copy_from_slice(&matched);
    rows[mid..].copy_from_slice(&rest);
    mid
}

fn best_split(
    data: &Dataset,
    targets: &[f64],
    rows: &[usize],
    params: &TreeParams,
) -> Option<SplitCandidate> {
    let n = rows.len() as f64;
    let sum: f64 = rows.iter().map(|&r| targets[r]).sum();
    let sum_sq: f64 = rows.iter().map(|&r| targets[r] * targets[r]).sum();
    let parent_sse = sum_sq - sum * sum / n;

    (0..data.n_features())
        .into_par_iter()
        .filter_map(|feature| {
            // Sort (value, target) pairs once per feature.
            let mut pairs: Vec<(f64, f64)> = rows
                .iter()
                .map(|&r| (data.value(r, feature), targets[r]))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature"));
            let mut best: Option<SplitCandidate> = None;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let mut left_n = 0.0;
            for i in 0..pairs.len() - 1 {
                left_sum += pairs[i].1;
                left_sq += pairs[i].1 * pairs[i].1;
                left_n += 1.0;
                // Only between distinct feature values.
                if pairs[i].0 == pairs[i + 1].0 {
                    continue;
                }
                let right_n = n - left_n;
                if (left_n as usize) < params.min_samples_leaf
                    || (right_n as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = sum - left_sum;
                let right_sq = sum_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / left_n)
                    + (right_sq - right_sum * right_sum / right_n);
                let gain = parent_sse - sse;
                if gain > best.as_ref().map_or(1e-12, |b| b.gain) {
                    best = Some(SplitCandidate {
                        feature,
                        threshold: 0.5 * (pairs[i].0 + pairs[i + 1].0),
                        gain,
                    });
                }
            }
            best
        })
        .max_by(|a, b| a.gain.partial_cmp(&b.gain).expect("NaN gain"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Dataset, Vec<f64>) {
        // y = 1 for x<5, 10 for x>=5; second feature is noise.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![f64::from(i % 10), f64::from(i % 3)])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 5.0 { 1.0 } else { 10.0 })
            .collect();
        (
            Dataset::new(&rows, y.clone(), vec!["x".into(), "noise".into()]),
            y,
        )
    }

    #[test]
    fn learns_a_step_function() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit(&data, &y, &rows, &TreeParams::default());
        assert!((tree.predict(&[2.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[7.0, 0.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_mean_leaf() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit(
            &data,
            &y,
            &rows,
            &TreeParams {
                max_depth: 0,
                min_samples_leaf: 1,
            },
        );
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict(&[0.0, 0.0]) - mean).abs() < 1e-9);
        assert!(tree.is_empty());
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit(
            &data,
            &y,
            &rows,
            &TreeParams {
                max_depth: 10,
                min_samples_leaf: 60, // cannot split 100 rows into 60+60
            },
        );
        assert!(tree.is_empty());
    }

    #[test]
    fn splits_prefer_informative_features() {
        let (data, y) = step_data();
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let s = best_split(&data, &y, &rows, &TreeParams::default()).unwrap();
        assert_eq!(s.feature, 0);
        assert!((s.threshold - 4.5).abs() < 1e-9);
    }
}
