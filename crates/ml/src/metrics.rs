//! Regression quality metrics.

/// Coefficient of determination R² = 1 − SSE/SST.
///
/// Returns 1.0 for a perfect fit; can be negative for models worse than the
/// mean predictor. When the targets are constant, returns 1.0 if the
/// predictions match them exactly, else 0.0.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    let n = y_true.len() as f64;
    let mean = y_true.iter().sum::<f64>() / n;
    let sst: f64 = y_true.iter().map(|y| (y - mean) * (y - mean)).sum();
    let sse: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if sst == 0.0 {
        return if sse == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - sse / sst
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    let mse: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_is_one() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y), 1.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn mean_predictor_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2_score(&y, &pred).abs() < 1e-12);
    }

    #[test]
    fn bad_fit_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let pred = [30.0, -10.0, 99.0];
        assert!(r2_score(&y, &pred) < 0.0);
    }

    #[test]
    fn constant_targets_edge_case() {
        let y = [5.0, 5.0];
        assert_eq!(r2_score(&y, &[5.0, 5.0]), 1.0);
        assert_eq!(r2_score(&y, &[4.0, 6.0]), 0.0);
    }

    #[test]
    fn rmse_and_mae_values() {
        let y = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&y, &p) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!((mae(&y, &p) - 3.5).abs() < 1e-12);
    }
}
