//! Permutation Feature Importance (PFI).
//!
//! The paper's Fig. 6 metric: a feature's importance is the drop in the
//! model's R² when that feature's column is randomly shuffled (breaking its
//! relationship with the target while preserving its marginal
//! distribution). Interactions make per-feature importances sum to more
//! than the total explained variance — the paper reads that excess as
//! evidence that *global* optimizers are needed (§VI-H).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::gbdt::Gbdt;
use crate::metrics::r2_score;

/// PFI result for one dataset/model pair.
#[derive(Debug, Clone)]
pub struct PfiResult {
    /// Baseline R² of the unpermuted model.
    pub baseline_r2: f64,
    /// Importance per feature: mean R² drop across repeats.
    pub importances: Vec<f64>,
    /// Feature names, aligned with `importances`.
    pub feature_names: Vec<String>,
}

impl PfiResult {
    /// Features with importance at least `threshold`, by name (the paper
    /// uses 0.05 to build Table VIII's "Reduced" spaces).
    pub fn important_features(&self, threshold: f64) -> Vec<String> {
        self.feature_names
            .iter()
            .zip(&self.importances)
            .filter(|(_, &imp)| imp >= threshold)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Sum of importances (> baseline R² signals feature interactions).
    pub fn total_importance(&self) -> f64 {
        self.importances.iter().sum()
    }
}

/// Compute permutation feature importance of `model` on `data`.
///
/// `n_repeats` independent shuffles per feature are averaged; the paper's
/// protocol is reproduced with the standard no-retrain formulation.
pub fn permutation_importance(
    model: &Gbdt,
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
) -> PfiResult {
    assert!(n_repeats > 0);
    let baseline = r2_score(data.targets(), &model.predict_dataset(data));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut importances = Vec::with_capacity(data.n_features());
    for feature in 0..data.n_features() {
        let column = data.column(feature);
        let mut drop_sum = 0.0;
        for _ in 0..n_repeats {
            let mut shuffled = column.clone();
            shuffled.shuffle(&mut rng);
            let permuted = data.with_column(feature, &shuffled);
            let r2 = r2_score(data.targets(), &model.predict_dataset(&permuted));
            drop_sum += baseline - r2;
        }
        importances.push((drop_sum / n_repeats as f64).max(0.0));
    }
    PfiResult {
        baseline_r2: baseline,
        importances,
        feature_names: data.feature_names().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtParams;

    fn dataset_with_irrelevant_feature(n: usize) -> Dataset {
        // y depends strongly on x0, weakly on x1, not at all on x2.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    f64::from((i * 7 % 11) as u32),
                    f64::from((i * 3 % 5) as u32),
                    f64::from((i * 13 % 17) as u32),
                ]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 * r[0] + 0.5 * r[1]).collect();
        Dataset::new(
            &rows,
            y,
            vec!["strong".into(), "weak".into(), "none".into()],
        )
    }

    #[test]
    fn ranks_features_correctly() {
        let data = dataset_with_irrelevant_feature(1500);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let pfi = permutation_importance(&model, &data, 3, 42);
        assert!(pfi.baseline_r2 > 0.99);
        assert!(
            pfi.importances[0] > pfi.importances[1],
            "strong must beat weak: {:?}",
            pfi.importances
        );
        assert!(
            pfi.importances[1] > pfi.importances[2],
            "weak must beat none: {:?}",
            pfi.importances
        );
        assert!(pfi.importances[2] < 0.01, "irrelevant feature ~0");
    }

    #[test]
    fn threshold_selection_matches_paper_protocol() {
        let data = dataset_with_irrelevant_feature(1500);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let pfi = permutation_importance(&model, &data, 3, 42);
        let kept = pfi.important_features(0.05);
        assert!(kept.contains(&"strong".to_string()));
        assert!(!kept.contains(&"none".to_string()));
    }

    #[test]
    fn interactions_make_importances_sum_past_one() {
        // y = x0 XOR-like interaction: neither feature informative alone.
        let rows: Vec<Vec<f64>> = (0..2000)
            .map(|i| vec![f64::from((i % 2) as u32), f64::from(((i / 2) % 2) as u32)])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                if (r[0] > 0.5) != (r[1] > 0.5) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::new(&rows, y, vec!["a".into(), "b".into()]);
        // Perfectly balanced XOR has zero first-split gain for a greedy
        // tree; row subsampling breaks the tie (CatBoost relies on its own
        // randomization for the same reason).
        let model = Gbdt::fit(
            &data,
            &GbdtParams {
                subsample: 0.8,
                seed: 1,
                ..GbdtParams::default()
            },
        );
        let pfi = permutation_importance(&model, &data, 5, 7);
        assert!(pfi.baseline_r2 > 0.99);
        // Shuffling either feature destroys the XOR entirely: each feature's
        // drop approaches the full R², so the total exceeds 1.
        assert!(
            pfi.total_importance() > 1.2,
            "total {} should reveal interaction",
            pfi.total_importance()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = dataset_with_irrelevant_feature(400);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let a = permutation_importance(&model, &data, 2, 5);
        let b = permutation_importance(&model, &data, 2, 5);
        assert_eq!(a.importances, b.importances);
    }
}
