//! Functional executor for the Pnpoly benchmark.
//!
//! Implements the crossing-number point-in-polygon test with the paper's
//! algorithmic variants: four `between_method` formulations of the "does the
//! edge straddle the point's y?" test and three `use_method` ways of
//! tracking crossing state. All variants must classify identically (up to
//! points exactly on edges, which the generators avoid).

use rayon::prelude::*;

use super::PnpolyConfig;

/// A simple 2D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// x coordinate.
    pub x: f32,
    /// y coordinate.
    pub y: f32,
}

/// Generate a star-shaped (concave, non-self-intersecting) polygon with
/// `n` vertices around the origin.
pub fn star_polygon(n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 3);
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let radius = 0.5 + 0.45 * next(); // jittered radius -> concavity
            Point {
                x: (radius * angle.cos()) as f32,
                y: (radius * angle.sin()) as f32,
            }
        })
        .collect()
}

/// Generate `n` deterministic query points in [-1.2, 1.2)².
pub fn query_points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.4 - 1.2) as f32
    };
    (0..n)
        .map(|_| Point {
            x: next(),
            y: next(),
        })
        .collect()
}

/// Does edge (a, b) straddle `py`, per the given `between_method` variant?
///
/// All four formulations are logically equivalent; they differ in the
/// instruction mix the compiler emits (which is exactly why the kernel
/// exposes the choice as a tunable).
#[inline]
fn straddles(method: i64, py: f32, ay: f32, by: f32) -> bool {
    match method {
        // Classic Franklin formulation.
        0 => (ay > py) != (by > py),
        // Explicit min/max window test.
        1 => py >= ay.min(by) && py < ay.max(by),
        // Sign-product formulation.
        2 => (ay - py) * (by - py) < 0.0 || (by > py) != (ay > py) && (ay == py || by == py),
        // XOR of strict comparisons, written branch-free.
        3 => ((ay <= py) as i32 ^ (by <= py) as i32) != 0,
        _ => unreachable!("between_method out of range"),
    }
}

/// Point-in-polygon via crossing number, with the configured variants.
#[inline]
fn inside(cfg: &PnpolyConfig, p: Point, poly: &[Point]) -> bool {
    let n = poly.len();
    match cfg.use_method {
        // Boolean toggle.
        0 => {
            let mut c = false;
            let mut j = n - 1;
            for i in 0..n {
                if straddles(cfg.between_method, p.y, poly[i].y, poly[j].y) {
                    let t = (p.y - poly[i].y) / (poly[j].y - poly[i].y);
                    let x_cross = poly[i].x + t * (poly[j].x - poly[i].x);
                    if p.x < x_cross {
                        c = !c;
                    }
                }
                j = i;
            }
            c
        }
        // Integer crossing counter, parity at the end.
        1 => {
            let mut crossings = 0u32;
            let mut j = n - 1;
            for i in 0..n {
                if straddles(cfg.between_method, p.y, poly[i].y, poly[j].y) {
                    let t = (p.y - poly[i].y) / (poly[j].y - poly[i].y);
                    let x_cross = poly[i].x + t * (poly[j].x - poly[i].x);
                    crossings += u32::from(p.x < x_cross);
                }
                j = i;
            }
            crossings % 2 == 1
        }
        // Branch-free sign accumulation (XOR of comparison bits).
        2 => {
            let mut bit = 0i32;
            let mut j = n - 1;
            for i in 0..n {
                let s = straddles(cfg.between_method, p.y, poly[i].y, poly[j].y);
                let t = (p.y - poly[i].y) / (poly[j].y - poly[i].y);
                let x_cross = poly[i].x + t * (poly[j].x - poly[i].x);
                bit ^= i32::from(s && x_cross.is_finite() && p.x < x_cross);
                j = i;
            }
            bit != 0
        }
        _ => unreachable!("use_method out of range"),
    }
}

/// Reference classification (Franklin's algorithm).
pub fn pnpoly_reference(points: &[Point], poly: &[Point]) -> Vec<bool> {
    let cfg = PnpolyConfig {
        block_size_x: 32,
        tile_size: 1,
        between_method: 0,
        use_method: 0,
    };
    points.par_iter().map(|&p| inside(&cfg, p, poly)).collect()
}

/// Classify with the block/tile decomposition implied by `cfg`.
pub fn pnpoly_tiled(cfg: &PnpolyConfig, points: &[Point], poly: &[Point]) -> Vec<bool> {
    let pts_per_block = (cfg.block_size_x * cfg.tile_size) as usize;
    let mut out = vec![false; points.len()];
    out.par_chunks_mut(pts_per_block)
        .enumerate()
        .for_each(|(block, chunk)| {
            let base = block * pts_per_block;
            // Threads each process tile_size consecutive points.
            for (off, slot) in chunk.iter_mut().enumerate() {
                let i = base + off;
                if i < points.len() {
                    *slot = inside(cfg, points[i], poly);
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_with_reference() {
        let poly = star_polygon(60, 3);
        let pts = query_points(5_000, 4);
        let reference = pnpoly_reference(&pts, &poly);
        for bm in 0..4 {
            for um in 0..3 {
                let cfg = PnpolyConfig {
                    block_size_x: 64,
                    tile_size: 4,
                    between_method: bm,
                    use_method: um,
                };
                let got = pnpoly_tiled(&cfg, &pts, &poly);
                let mismatches = got.iter().zip(&reference).filter(|(a, b)| a != b).count();
                assert_eq!(mismatches, 0, "variant bm={bm} um={um} disagrees");
            }
        }
    }

    #[test]
    fn square_polygon_classification() {
        let square = vec![
            Point { x: -1.0, y: -1.0 },
            Point { x: 1.0, y: -1.0 },
            Point { x: 1.0, y: 1.0 },
            Point { x: -1.0, y: 1.0 },
        ];
        let cfg = PnpolyConfig {
            block_size_x: 32,
            tile_size: 1,
            between_method: 0,
            use_method: 0,
        };
        let pts = vec![
            Point { x: 0.0, y: 0.0 },   // inside
            Point { x: 2.0, y: 0.0 },   // outside
            Point { x: 0.5, y: -0.5 },  // inside
            Point { x: -1.5, y: -1.5 }, // outside
        ];
        let got = pnpoly_tiled(&cfg, &pts, &square);
        assert_eq!(got, vec![true, false, true, false]);
    }

    #[test]
    fn origin_is_inside_star() {
        let poly = star_polygon(101, 9);
        let cfg = PnpolyConfig {
            block_size_x: 32,
            tile_size: 1,
            between_method: 1,
            use_method: 1,
        };
        let got = pnpoly_tiled(&cfg, &[Point { x: 0.0, y: 0.0 }], &poly);
        assert!(got[0], "star polygons contain the origin by construction");
    }

    #[test]
    fn far_points_are_outside() {
        let poly = star_polygon(47, 1);
        let pts = vec![Point { x: 10.0, y: 10.0 }, Point { x: -10.0, y: 0.0 }];
        let got = pnpoly_reference(&pts, &poly);
        assert_eq!(got, vec![false, false]);
    }

    #[test]
    fn partial_final_block_is_handled() {
        let poly = star_polygon(30, 2);
        let pts = query_points(1_000, 8); // not a multiple of 64*4
        let cfg = PnpolyConfig {
            block_size_x: 64,
            tile_size: 4,
            between_method: 0,
            use_method: 0,
        };
        let got = pnpoly_tiled(&cfg, &pts, &poly);
        assert_eq!(got.len(), 1_000);
        assert_eq!(got, pnpoly_reference(&pts, &poly));
    }
}
