//! Pnpoly: point-in-polygon test over massive LiDAR point clouds.
//!
//! The BAT Pnpoly kernel is the GPU half of a geospatial database operator
//! (Goncalves et al.): classify millions of points against a polygon
//! outline. Tunables (Table IV): threads per block, points per thread, and
//! two algorithmic switches — `between_method` (how to test whether a point
//! lies between two vertices) and `use_method` (how crossing state is
//! tracked). The paper reports **no restrictions** for this kernel
//! (constrained = cardinality = 4 092).

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, strided_coalescing, KernelSpec};

/// Slot order of the Pnpoly space (Table IV order).
pub mod slots {
    /// Threads per block.
    pub const BLOCK_SIZE_X: usize = 0;
    /// Points per thread.
    pub const TILE_SIZE: usize = 1;
    /// Between-test algorithm selector (0..=3).
    pub const BETWEEN_METHOD: usize = 2;
    /// Crossing-state algorithm selector (0..=2).
    pub const USE_METHOD: usize = 3;
}

/// Decoded Pnpoly configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PnpolyConfig {
    /// Threads per block.
    pub block_size_x: i64,
    /// Points per thread.
    pub tile_size: i64,
    /// Between-test variant.
    pub between_method: i64,
    /// State-tracking variant.
    pub use_method: i64,
}

impl PnpolyConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        PnpolyConfig {
            block_size_x: v[slots::BLOCK_SIZE_X],
            tile_size: v[slots::TILE_SIZE],
            between_method: v[slots::BETWEEN_METHOD],
            use_method: v[slots::USE_METHOD],
        }
    }
}

/// Per-edge FLOP cost of each `between_method` variant.
pub const BETWEEN_FLOPS: [f64; 4] = [18.0, 11.0, 24.0, 13.0];
/// Branch-divergence multiplier of each `between_method` variant (the
/// cheap formulations branch more; the flop-heavy ones are branch-free).
pub const BETWEEN_DIVERGENCE: [f64; 4] = [1.60, 1.30, 1.05, 1.40];
/// Extra per-edge integer ops of each `use_method` variant.
pub const USE_INT_OPS: [f64; 3] = [6.0, 2.0, 9.0];

/// The Pnpoly benchmark.
#[derive(Debug, Clone)]
pub struct PnpolyKernel {
    /// Number of query points.
    pub points: u64,
    /// Number of polygon vertices.
    pub vertices: u64,
}

impl Default for PnpolyKernel {
    fn default() -> Self {
        PnpolyKernel {
            points: 20_000_000,
            vertices: 600,
        }
    }
}

impl PnpolyKernel {
    /// Create with an explicit problem size.
    pub fn with_size(points: u64, vertices: u64) -> Self {
        PnpolyKernel { points, vertices }
    }
}

impl KernelSpec for PnpolyKernel {
    fn name(&self) -> &'static str {
        "pnpoly"
    }

    fn build_space(&self) -> ConfigSpace {
        // tile_size: {1} ∪ {2n | 2n ∈ [2, 20]} = 11 values.
        let mut tile = vec![1];
        tile.extend((1..=10).map(|n| 2 * n));
        ConfigSpace::builder()
            .param(Param::multiples("block_size_x", 32, 32, 992)) // 31 values
            .param(Param::new("tile_size", tile))
            .param(Param::new("between_method", vec![0, 1, 2, 3]))
            .param(Param::new("use_method", vec![0, 1, 2]))
            .build()
            .expect("Pnpoly space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = PnpolyConfig::from_values(config);
        let threads = c.block_size_x as u32;
        let pts_per_block = (c.block_size_x * c.tile_size) as u64;
        let grid = ceil_div(self.points, pts_per_block);
        let mut m = KernelModel::new("pnpoly", grid, threads);

        let tile = c.tile_size as f64;
        let verts = self.vertices as f64;
        let bm = c.between_method as usize;
        let um = c.use_method as usize;

        m.flops_per_thread = tile * verts * BETWEEN_FLOPS[bm];
        m.divergence_factor = BETWEEN_DIVERGENCE[bm];
        m.int_ops_per_thread = tile * verts * USE_INT_OPS[um] + verts * 2.0;

        // Vertices live in constant/L2-resident memory: every thread walks
        // them; virtually all reads hit cache.
        let vertex_bytes = verts * 8.0; // float2
                                        // Points: each thread reads `tile` consecutive float2 points, so
                                        // consecutive threads are 8*tile bytes apart.
        let point_bytes = tile * 8.0;
        let out_bytes = tile * 4.0; // int flag per point
        m.gmem_bytes_per_thread = vertex_bytes + point_bytes + out_bytes;
        m.l2_hit_rate = vertex_bytes / (vertex_bytes + point_bytes + out_bytes);
        m.coalescing = strided_coalescing(8.0, 8.0 * tile);
        m.gmem_transactions_per_thread = tile * 2.0 + out_bytes / 4.0;
        m.uses_readonly_cache = true;

        let natural_regs = (20.0 + tile * 2.0 + BETWEEN_FLOPS[bm] * 0.5) as u32;
        let (regs, spill) = apply_launch_bounds(natural_regs, threads, 0);
        m.regs_per_thread = regs;
        m.spill_bytes_per_thread = spill * verts / 32.0;

        m.ilp = tile.clamp(1.0, 8.0);

        m
    }

    fn source(&self, config: &[i64]) -> String {
        let c = PnpolyConfig::from_values(config);
        format!(
            "// Pnpoly GPU database operator kernel (BAT-rs generated)\n\
             #define BLOCK_SIZE_X {}\n#define TILE_SIZE {}\n\
             #define BETWEEN_METHOD {}\n#define USE_METHOD {}\n\
             \n\
             __constant__ float2 d_vertices[VERTICES];\n\
             extern \"C\" __global__ void cn_pnpoly(int* bitmap, const float2* points, int n) {{\n\
             \x20 int i = blockIdx.x * blockDim.x * TILE_SIZE + threadIdx.x;\n\
             \x20 // TILE_SIZE points per thread; crossing-number loop over\n\
             \x20 // VERTICES edges with BETWEEN_METHOD / USE_METHOD variants ...\n\
             }}\n",
            c.block_size_x, c.tile_size, c.between_method, c.use_method,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_iv() {
        let s = PnpolyKernel::default().build_space();
        assert_eq!(s.cardinality(), 4_092);
    }

    #[test]
    fn no_restrictions_like_table_viii() {
        let s = PnpolyKernel::default().build_space();
        assert_eq!(s.count_valid(), 4_092, "paper: constrained == cardinality");
    }

    #[test]
    fn block_size_values_match_table_iv() {
        let s = PnpolyKernel::default().build_space();
        let p = &s.params()[slots::BLOCK_SIZE_X];
        assert_eq!(p.len(), 31);
        assert_eq!(p.values[0], 32);
        assert_eq!(*p.values.last().unwrap(), 992);
    }

    #[test]
    fn tile_size_values_match_table_iv() {
        let s = PnpolyKernel::default().build_space();
        let p = &s.params()[slots::TILE_SIZE];
        assert_eq!(p.values, vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn work_is_conserved() {
        let k = PnpolyKernel::default();
        let per_edge_work = |cfg: &[i64]| {
            let m = k.model(cfg);
            let c = PnpolyConfig::from_values(cfg);
            m.flops_per_thread * m.total_threads() / BETWEEN_FLOPS[c.between_method as usize]
        };
        let a = per_edge_work(&[32, 1, 0, 0]);
        let b = per_edge_work(&[992, 20, 0, 0]);
        // Total point-edge tests identical up to grid round-up.
        let exact = 20_000_000.0 * 600.0;
        assert!((a - exact) / exact < 0.01);
        assert!((b - exact) / exact < 0.01);
    }

    #[test]
    fn larger_tiles_coalesce_worse() {
        let k = PnpolyKernel::default();
        let t1 = k.model(&[256, 1, 0, 0]);
        let t8 = k.model(&[256, 8, 0, 0]);
        assert!(t8.coalescing < t1.coalescing);
    }

    #[test]
    fn all_models_validate() {
        let k = PnpolyKernel::default();
        let s = k.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        for idx in 0..s.cardinality() {
            s.decode_into(idx, &mut scratch);
            assert_eq!(k.model(&scratch).validate(), Ok(()), "{scratch:?}");
        }
    }
}
