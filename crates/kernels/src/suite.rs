//! The benchmark suite registry: every kernel, by name.

use std::sync::Arc;

use bat_gpusim::GpuArch;

use crate::common::{GpuBenchmark, KernelSpec};
use crate::convolution::ConvolutionKernel;
use crate::dedisp::DedispKernel;
use crate::expdist::ExpdistKernel;
use crate::gemm::GemmKernel;
use crate::hotspot::HotspotKernel;
use crate::nbody::NbodyKernel;
use crate::pnpoly::PnpolyKernel;

/// Names of the seven benchmarks, in the paper's Table VIII order.
pub const BENCHMARK_NAMES: [&str; 7] = [
    "pnpoly",
    "nbody",
    "convolution",
    "gemm",
    "expdist",
    "hotspot",
    "dedisp",
];

/// Instantiate every kernel with its default (paper-scale) problem size.
pub fn all_kernels() -> Vec<Arc<dyn KernelSpec>> {
    vec![
        Arc::new(PnpolyKernel::default()),
        Arc::new(NbodyKernel::default()),
        Arc::new(ConvolutionKernel::default()),
        Arc::new(GemmKernel::default()),
        Arc::new(ExpdistKernel::default()),
        Arc::new(HotspotKernel::default()),
        Arc::new(DedispKernel::default()),
    ]
}

/// Look up a kernel by name (default problem size).
pub fn kernel_by_name(name: &str) -> Option<Arc<dyn KernelSpec>> {
    all_kernels()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Convenience: a [`GpuBenchmark`] for (kernel name, architecture).
pub fn benchmark(name: &str, arch: GpuArch) -> Option<GpuBenchmark> {
    kernel_by_name(name).map(|k| GpuBenchmark::new(k, arch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_seven() {
        assert_eq!(all_kernels().len(), 7);
        for name in BENCHMARK_NAMES {
            assert!(kernel_by_name(name).is_some(), "{name} missing");
        }
        assert!(kernel_by_name("fft").is_none());
    }

    #[test]
    fn cardinalities_match_table_viii_column_one() {
        let expected: [(&str, u64); 7] = [
            ("pnpoly", 4_092),
            ("nbody", 9_408),
            ("convolution", 18_432),
            ("gemm", 82_944),
            ("expdist", 9_732_096),
            ("hotspot", 22_200_000),
            ("dedisp", 123_863_040),
        ];
        for (name, card) in expected {
            let k = kernel_by_name(name).unwrap();
            assert_eq!(k.build_space().cardinality(), card, "{name}");
        }
    }

    #[test]
    fn every_benchmark_evaluates_on_every_arch() {
        use bat_core::TuningProblem;
        use bat_space::sample_one_valid;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        for arch in GpuArch::paper_testbed() {
            for name in BENCHMARK_NAMES {
                let b = benchmark(name, arch.clone()).unwrap();
                let space = b.space();
                // Find some valid config and evaluate it; at least one of a
                // handful of tries must produce a launch-valid runtime.
                let mut ok = false;
                for _ in 0..50 {
                    let idx = sample_one_valid(space, &mut rng, 100_000)
                        .expect("restricted space unreachable");
                    let cfg = space.config_at(idx);
                    if let Ok(t) = b.evaluate_pure(&cfg) {
                        assert!(t > 0.0, "{name} on {} gave {t}", arch.name);
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "{name} on {} never launched", arch.name);
            }
        }
    }
}
