//! Functional executor for the GEMM benchmark.
//!
//! Real tuners verify each configuration's output against a reference. This
//! module reproduces that code path on the CPU: [`gemm_tiled`] executes the
//! *same blocking structure* the GPU kernel would use for a configuration
//! (MWG×NWG block tiles, KWG-step K loop, optional shared-memory staging,
//! per-thread WPT_M×WPT_N accumulators, vector-width chunked loads), so
//! every configuration variant is exercised functionally, not just priced.

use rayon::prelude::*;

use super::{GemmConfig, KWG};

/// Naive reference: `C = alpha * A·B + beta * C`, row-major.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_in: &[f32],
    alpha: f32,
    beta: f32,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c_in.len(), m * n);
    let mut c = vec![0.0f32; m * n];
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, out) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            *out = alpha * acc + beta * c_in[i * n + j];
        }
    });
    c
}

/// Execute GEMM with the blocking structure implied by `cfg`.
///
/// Requirements (upheld by the benchmark's problem sizes): `m % MWG == 0`,
/// `n % NWG == 0`, `k % KWG == 0`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tiled(
    cfg: &GemmConfig,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_in: &[f32],
    alpha: f32,
    beta: f32,
) -> Vec<f32> {
    let mwg = cfg.mwg as usize;
    let nwg = cfg.nwg as usize;
    let kwg = KWG as usize;
    assert_eq!(m % mwg, 0, "m must be a multiple of MWG");
    assert_eq!(n % nwg, 0, "n must be a multiple of NWG");
    assert_eq!(k % kwg, 0, "k must be a multiple of KWG");

    let mdimc = cfg.mdimc as usize;
    let ndimc = cfg.ndimc as usize;
    let wpt_m = mwg / mdimc;
    let wpt_n = nwg / ndimc;
    let vwm = cfg.vwm as usize;

    let blocks_n = n / nwg;

    let mut c = vec![0.0f32; m * n];
    // One rayon task per thread-block row, mirroring the GPU grid.
    c.par_chunks_mut(mwg * n)
        .enumerate()
        .for_each(|(bm, c_rows)| {
            let mut alm = vec![0.0f32; kwg * mwg]; // "shared" A tile
            let mut blm = vec![0.0f32; kwg * nwg]; // "shared" B tile
            for bn in 0..blocks_n {
                let row0 = bm * mwg;
                let col0 = bn * nwg;
                // Per-thread accumulators for the whole block, laid out
                // [mdimc][ndimc][wpt_m][wpt_n].
                let mut acc = vec![0.0f32; mwg * nwg];
                for k0 in (0..k).step_by(kwg) {
                    if cfg.sa {
                        // Cooperative staging of the A tile (KWG × MWG).
                        for kk in 0..kwg {
                            for im in 0..mwg {
                                alm[kk * mwg + im] = a[(row0 + im) * k + k0 + kk];
                            }
                        }
                    }
                    if cfg.sb {
                        for kk in 0..kwg {
                            for jn in 0..nwg {
                                blm[kk * nwg + jn] = b[(k0 + kk) * n + col0 + jn];
                            }
                        }
                    }
                    for ti in 0..mdimc {
                        for tj in 0..ndimc {
                            for kk in 0..kwg {
                                // Vector-width chunking over the M work:
                                // loads happen VWM elements at a time.
                                let mut wm = 0;
                                while wm < wpt_m {
                                    let chunk = vwm.min(wpt_m - wm);
                                    for v in 0..chunk {
                                        let im = ti * wpt_m + wm + v;
                                        let a_val = if cfg.sa {
                                            alm[kk * mwg + im]
                                        } else {
                                            a[(row0 + im) * k + k0 + kk]
                                        };
                                        for wn in 0..wpt_n {
                                            let jn = tj * wpt_n + wn;
                                            let b_val = if cfg.sb {
                                                blm[kk * nwg + jn]
                                            } else {
                                                b[(k0 + kk) * n + col0 + jn]
                                            };
                                            acc[im * nwg + jn] += a_val * b_val;
                                        }
                                    }
                                    wm += chunk;
                                }
                            }
                        }
                    }
                }
                for im in 0..mwg {
                    for jn in 0..nwg {
                        let gi = im; // row within c_rows
                        let gj = col0 + jn;
                        c_rows[gi * n + gj] =
                            alpha * acc[im * nwg + jn] + beta * c_in[(row0 + im) * n + gj];
                    }
                }
            }
        });
    c
}

/// Deterministic pseudo-random matrix in [-1, 1).
pub fn test_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

/// Relative max-abs difference between two vectors.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() / scale
        })
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 128;
    const N: usize = 128;
    const K: usize = 64;

    fn check(cfg_values: &[i64]) {
        let cfg = GemmConfig::from_values(cfg_values);
        let a = test_matrix(M, K, 1);
        let b = test_matrix(K, N, 2);
        let c0 = test_matrix(M, N, 3);
        let reference = gemm_reference(M, N, K, &a, &b, &c0, 1.5, 0.5);
        let tiled = gemm_tiled(&cfg, M, N, K, &a, &b, &c0, 1.5, 0.5);
        let diff = max_rel_diff(&reference, &tiled);
        assert!(diff < 1e-4, "config {cfg_values:?} diverged: {diff}");
    }

    #[test]
    fn staged_both_matches_reference() {
        check(&[64, 64, 16, 16, 16, 16, 2, 2, 1, 1]);
    }

    #[test]
    fn unstaged_matches_reference() {
        check(&[32, 32, 8, 8, 8, 8, 1, 1, 0, 0]);
    }

    #[test]
    fn mixed_staging_matches_reference() {
        check(&[128, 16, 16, 8, 8, 16, 8, 2, 1, 0]);
        check(&[16, 128, 8, 16, 16, 8, 2, 8, 0, 1]);
    }

    #[test]
    fn wide_vectors_match_reference() {
        check(&[128, 128, 16, 16, 16, 16, 8, 8, 1, 1]);
    }

    #[test]
    fn identity_multiplication() {
        // A = I: C must equal alpha*B + beta*C0.
        let m = 64;
        let mut a = vec![0.0f32; m * m];
        for i in 0..m {
            a[i * m + i] = 1.0;
        }
        let b = test_matrix(m, m, 7);
        let c0 = vec![0.0f32; m * m];
        let cfg = GemmConfig::from_values(&[16, 16, 8, 8, 8, 8, 2, 2, 1, 1]);
        let c = gemm_tiled(&cfg, m, m, m, &a, &b, &c0, 1.0, 0.0);
        assert!(max_rel_diff(&c, &b) < 1e-6);
    }

    #[test]
    fn beta_scales_existing_c() {
        let m = 32;
        let a = vec![0.0f32; m * m];
        let b = vec![0.0f32; m * m];
        let c0 = test_matrix(m, m, 9);
        let cfg = GemmConfig::from_values(&[16, 16, 8, 8, 8, 8, 1, 1, 0, 0]);
        let c = gemm_tiled(&cfg, m, m, m, &a, &b, &c0, 1.0, 2.0);
        let expect: Vec<f32> = c0.iter().map(|v| 2.0 * v).collect();
        assert!(max_rel_diff(&c, &expect) < 1e-6);
    }
}
