//! GEMM: generalized dense matrix-matrix multiplication, `C = αA·B + βC`.
//!
//! The BAT GEMM kernel is CLBlast's tunable `xgemm` (Nugteren, IWOCL'18).
//! Table I of the paper lists ten tunable parameters; the restriction set is
//! CLBlast's, with the K-loop parameters fixed at `KWG = 32`, `KWI = 2`
//! (folding them in reproduces the paper's constrained cardinality of
//! **17 956** exactly — asserted in this module's tests).

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, KernelSpec};

/// K-loop blocking factor folded into the restriction set.
pub const KWG: i64 = 32;
/// K-loop unroll factor (fixed, as in the paper's space).
pub const KWI: i64 = 2;

/// Slot order of the GEMM space (Table I order).
pub mod slots {
    /// Per-block tile size in M.
    pub const MWG: usize = 0;
    /// Per-block tile size in N.
    pub const NWG: usize = 1;
    /// Threads per block in M.
    pub const MDIMC: usize = 2;
    /// Threads per block in N.
    pub const NDIMC: usize = 3;
    /// Re-shaped thread dimension for loading A into shared memory.
    pub const MDIMA: usize = 4;
    /// Re-shaped thread dimension for loading B into shared memory.
    pub const NDIMB: usize = 5;
    /// Vector width for loads/stores of A / C columns.
    pub const VWM: usize = 6;
    /// Vector width for loads/stores of B.
    pub const VWN: usize = 7;
    /// Stage A in shared memory?
    pub const SA: usize = 8;
    /// Stage B in shared memory?
    pub const SB: usize = 9;
}

/// Decoded GEMM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Per-block tile in M.
    pub mwg: i64,
    /// Per-block tile in N.
    pub nwg: i64,
    /// Thread-block dimension in M.
    pub mdimc: i64,
    /// Thread-block dimension in N.
    pub ndimc: i64,
    /// A-load thread reshaping.
    pub mdima: i64,
    /// B-load thread reshaping.
    pub ndimb: i64,
    /// Vector width (A/C).
    pub vwm: i64,
    /// Vector width (B).
    pub vwn: i64,
    /// Stage A in shared memory.
    pub sa: bool,
    /// Stage B in shared memory.
    pub sb: bool,
}

impl GemmConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        GemmConfig {
            mwg: v[slots::MWG],
            nwg: v[slots::NWG],
            mdimc: v[slots::MDIMC],
            ndimc: v[slots::NDIMC],
            mdima: v[slots::MDIMA],
            ndimb: v[slots::NDIMB],
            vwm: v[slots::VWM],
            vwn: v[slots::VWN],
            sa: v[slots::SA] != 0,
            sb: v[slots::SB] != 0,
        }
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.mdimc * self.ndimc
    }

    /// Work per thread in M (integral under the restriction set).
    pub fn wpt_m(&self) -> i64 {
        self.mwg / self.mdimc
    }

    /// Work per thread in N.
    pub fn wpt_n(&self) -> i64 {
        self.nwg / self.ndimc
    }
}

/// The GEMM benchmark: problem size plus the Table I space.
#[derive(Debug, Clone)]
pub struct GemmKernel {
    /// Rows of A / C.
    pub m: u64,
    /// Columns of B / C.
    pub n: u64,
    /// Inner dimension.
    pub k: u64,
}

impl Default for GemmKernel {
    fn default() -> Self {
        // Large square problem, as used for CLBlast tuning.
        GemmKernel {
            m: 2048,
            n: 2048,
            k: 2048,
        }
    }
}

impl GemmKernel {
    /// Create with an explicit problem size.
    pub fn with_size(m: u64, n: u64, k: u64) -> Self {
        GemmKernel { m, n, k }
    }
}

impl KernelSpec for GemmKernel {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn build_space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::pow2("MWG", 16, 128))
            .param(Param::pow2("NWG", 16, 128))
            .param(Param::new("MDIMC", vec![8, 16, 32]))
            .param(Param::new("NDIMC", vec![8, 16, 32]))
            .param(Param::new("MDIMA", vec![8, 16, 32]))
            .param(Param::new("NDIMB", vec![8, 16, 32]))
            .param(Param::new("VWM", vec![1, 2, 4, 8]))
            .param(Param::new("VWN", vec![1, 2, 4, 8]))
            .param(Param::boolean("SA"))
            .param(Param::boolean("SB"))
            // CLBlast xgemm restrictions with KWG=32, KWI=2 folded in.
            .restrict("MWG % (MDIMC * VWM) == 0")
            .restrict("NWG % (NDIMC * VWN) == 0")
            .restrict("MWG % (MDIMA * VWM) == 0")
            .restrict("NWG % (NDIMB * VWN) == 0")
            .restrict("32 % ((MDIMC * NDIMC) / MDIMA) == 0")
            .restrict("32 % ((MDIMC * NDIMC) / NDIMB) == 0")
            .build()
            .expect("GEMM space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = GemmConfig::from_values(config);
        let threads = c.threads() as u32;
        let grid = ceil_div(self.m, c.mwg as u64) * ceil_div(self.n, c.nwg as u64);
        let mut m = KernelModel::new("gemm", grid, threads);

        let wpt_m = c.wpt_m() as f64;
        let wpt_n = c.wpt_n() as f64;
        let k = self.k as f64;

        // FMA per output element per K step.
        m.flops_per_thread = 2.0 * k * wpt_m * wpt_n;

        // Registers: accumulator tile + A/B fragments + bookkeeping. Vector
        // loads widen the fragment registers slightly.
        let natural_regs =
            24.0 + wpt_m * wpt_n + 2.0 * (wpt_m + wpt_n) + 0.5 * (c.vwm + c.vwn) as f64;
        let (regs, spill) = apply_launch_bounds(natural_regs.round() as u32, threads, 0);
        m.regs_per_thread = regs;
        // Spilled accumulators are touched every K-iteration.
        m.spill_bytes_per_thread = spill * (k / KWG as f64);

        m.smem_per_block =
            ((c.sa as i64) * KWG * c.mwg * 4 + (c.sb as i64) * KWG * c.nwg * 4) as u32;

        // Global traffic per block. Staged operands are read once per block;
        // direct (unstaged) reads are replicated across the other thread
        // dimension but mostly hit L2.
        let a_bytes = k * c.mwg as f64 * 4.0 * if c.sa { 1.0 } else { c.ndimc as f64 };
        let b_bytes = k * c.nwg as f64 * 4.0 * if c.sb { 1.0 } else { c.mdimc as f64 };
        let c_bytes = (c.mwg * c.nwg) as f64 * 4.0 * 2.0; // read-modify-write (β≠0)
        let total_bytes = a_bytes + b_bytes + c_bytes;
        m.gmem_bytes_per_thread = total_bytes / f64::from(threads);

        // Coalescing: staged loads are cooperative and fully coalesced;
        // direct loads depend on the vector width.
        let direct_coal_a = ((c.vwm as f64) * 4.0 / 16.0).clamp(0.55, 1.0);
        let direct_coal_b = ((c.vwn as f64) * 4.0 / 16.0).clamp(0.55, 1.0);
        let coal_a = if c.sa { 1.0 } else { direct_coal_a };
        let coal_b = if c.sb { 1.0 } else { direct_coal_b };
        m.coalescing = (a_bytes * coal_a + b_bytes * coal_b + c_bytes * 1.0) / total_bytes;

        // L2: replicated direct reads have strong temporal locality.
        let l2_a = if c.sa { 0.15 } else { 0.92 };
        let l2_b = if c.sb { 0.15 } else { 0.92 };
        m.l2_hit_rate = (a_bytes * l2_a + b_bytes * l2_b + c_bytes * 0.10) / total_bytes;

        // Shared-memory traffic: every K step reads the fragments from the
        // staged tiles, plus the cooperative stores that fill them.
        let smem_reads = k * (wpt_m * f64::from(c.sa as u8) + wpt_n * f64::from(c.sb as u8));
        let smem_writes = k
            * ((c.mwg as f64 / f64::from(threads)) * f64::from(c.sa as u8)
                + (c.nwg as f64 / f64::from(threads)) * f64::from(c.sb as u8));
        m.smem_accesses_per_thread = smem_reads + smem_writes;
        // CLBlast's layout is conflict-free for power-of-two shapes except
        // narrow staging tiles written with wide vectors.
        m.bank_conflict_factor =
            if (c.sa && c.vwm == 8 && c.mdima == 8) || (c.sb && c.vwn == 8 && c.ndimb == 8) {
                1.5
            } else {
                1.0
            };

        // Loop overhead: K/KWI iterations of pointer bumps and branches.
        m.int_ops_per_thread = (k / KWI as f64) * 4.0 + k * 0.5;

        // Independent accumulators give ILP; cap at a realistic window.
        m.ilp = (wpt_m * wpt_n).clamp(1.0, 16.0);

        m
    }

    fn source(&self, config: &[i64]) -> String {
        let c = GemmConfig::from_values(config);
        format!(
            "// CLBlast-style tunable SGEMM (BAT-rs generated)\n\
             #define MWG {}\n#define NWG {}\n#define KWG {KWG}\n\
             #define MDIMC {}\n#define NDIMC {}\n#define MDIMA {}\n#define NDIMB {}\n\
             #define VWM {}\n#define VWN {}\n#define KWI {KWI}\n\
             #define SA {}\n#define SB {}\n\
             \n\
             extern \"C\" __global__ void xgemm(const int kSizeM, const int kSizeN,\n\
             \x20                               const int kSizeK, const float alpha,\n\
             \x20                               const float beta, const float* restrict agm,\n\
             \x20                               const float* restrict bgm, float* cgm) {{\n\
             #if SA == 1\n  __shared__ float alm[KWG * MWG];\n#endif\n\
             #if SB == 1\n  __shared__ float blm[KWG * NWG];\n#endif\n\
             \x20 float cpm[MWG / MDIMC][NWG / NDIMC];\n\
             \x20 // ... K-loop in steps of KWG, unrolled by KWI,\n\
             \x20 // vector loads of width VWM/VWN, MDIMA/NDIMB staging shape ...\n\
             }}\n",
            c.mwg,
            c.nwg,
            c.mdimc,
            c.ndimc,
            c.mdima,
            c.ndimb,
            c.vwm,
            c.vwn,
            i64::from(c.sa),
            i64::from(c.sb),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_i() {
        let s = GemmKernel::default().build_space();
        assert_eq!(s.cardinality(), 82_944);
    }

    #[test]
    fn constrained_cardinality_matches_table_viii_exactly() {
        let s = GemmKernel::default().build_space();
        assert_eq!(
            s.count_valid(),
            17_956,
            "paper Table VIII: GEMM constrained"
        );
    }

    #[test]
    fn factored_count_agrees_with_brute_force() {
        let s = GemmKernel::default().build_space();
        assert_eq!(s.count_valid_factored(), 17_956);
    }

    #[test]
    fn model_respects_work_partitioning() {
        let g = GemmKernel::default();
        let cfg = [64, 64, 16, 16, 16, 16, 2, 2, 1, 1];
        let s = g.build_space();
        assert!(s.is_valid(&cfg));
        let m = g.model(&cfg);
        assert_eq!(m.threads_per_block, 256);
        assert_eq!(m.grid_blocks, (2048 / 64) * (2048 / 64));
        // 4x4 outputs per thread, 2 flops per K step each.
        assert_eq!(m.flops_per_thread, 2.0 * 2048.0 * 4.0 * 4.0);
        assert_eq!(m.smem_per_block, (32 * 64 * 4 * 2) as u32);
    }

    #[test]
    fn staging_reduces_dram_traffic() {
        let g = GemmKernel::default();
        let staged = g.model(&[64, 64, 16, 16, 16, 16, 2, 2, 1, 1]);
        let direct = g.model(&[64, 64, 16, 16, 16, 16, 2, 2, 0, 0]);
        let staged_dram = staged.gmem_bytes_per_thread * (1.0 - staged.l2_hit_rate);
        let direct_dram = direct.gmem_bytes_per_thread * (1.0 - direct.l2_hit_rate);
        assert!(staged_dram < direct_dram);
    }

    #[test]
    fn flops_are_conserved_across_partitionings() {
        // Total FLOPs must not depend on the configuration.
        let g = GemmKernel::default();
        let s = g.build_space();
        let total = |cfg: &[i64]| {
            let m = g.model(cfg);
            m.flops_per_thread * m.total_threads()
        };
        let a = [64, 64, 16, 16, 16, 16, 2, 2, 1, 1];
        let b = [128, 32, 8, 8, 8, 8, 1, 1, 0, 1];
        assert!(s.is_valid(&a) && s.is_valid(&b));
        assert_eq!(total(&a), total(&b));
        assert_eq!(total(&a), 2.0 * 2048.0f64.powi(3));
    }

    #[test]
    fn source_embeds_parameters() {
        let g = GemmKernel::default();
        let src = g.source(&[64, 32, 16, 8, 16, 8, 2, 4, 1, 0]);
        assert!(src.contains("#define MWG 64"));
        assert!(src.contains("#define VWN 4"));
        assert!(src.contains("#define SB 0"));
    }

    #[test]
    fn all_valid_models_validate() {
        let g = GemmKernel::default();
        let s = g.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        let mut checked = 0;
        for idx in (0..s.cardinality()).step_by(97) {
            s.decode_into(idx, &mut scratch);
            if s.is_valid(&scratch) {
                let m = g.model(&scratch);
                assert_eq!(m.validate(), Ok(()), "config {scratch:?}");
                checked += 1;
            }
        }
        assert!(checked > 100);
    }
}
