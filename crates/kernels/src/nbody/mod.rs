//! N-body: all-pairs gravitational force computation.
//!
//! The BAT N-body kernel is Petrovič et al.'s KTT port of the CUDA SDK
//! sample (Table II of the paper): a quadratic scheme where every iteration
//! computes forces between all pairs of bodies. Tunables cover thread-block
//! size, outer work-per-thread, partial unrolling of the two inner-loop
//! variants, AoS vs. SoA input layout, shared-memory tiling of bodies and
//! the vector width of body loads.

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, KernelSpec};

/// Slot order of the N-body space (Table II order).
pub mod slots {
    /// Threads per block.
    pub const BLOCK_SIZE: usize = 0;
    /// Bodies computed per thread.
    pub const OUTER_UNROLL_FACTOR: usize = 1;
    /// Partial unroll of the global-memory inner loop.
    pub const INNER_UNROLL_FACTOR1: usize = 2;
    /// Partial unroll of the shared-memory inner loop.
    pub const INNER_UNROLL_FACTOR2: usize = 3;
    /// Structure-of-arrays input layout?
    pub const USE_SOA: usize = 4;
    /// Stage body tiles in shared memory?
    pub const LOCAL_MEM: usize = 5;
    /// Elements per load instruction (1/2/4).
    pub const VECTOR_TYPE: usize = 6;
}

/// Decoded N-body configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbodyConfig {
    /// Threads per block.
    pub block_size: i64,
    /// Bodies per thread.
    pub outer_unroll: i64,
    /// Unroll factor of the global-loop variant (0 = loop not unrolled).
    pub inner_unroll1: i64,
    /// Unroll factor of the shared-memory-loop variant.
    pub inner_unroll2: i64,
    /// SoA layout.
    pub use_soa: bool,
    /// Shared-memory tiling.
    pub local_mem: bool,
    /// Load vector width.
    pub vector_type: i64,
}

impl NbodyConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        NbodyConfig {
            block_size: v[slots::BLOCK_SIZE],
            outer_unroll: v[slots::OUTER_UNROLL_FACTOR],
            inner_unroll1: v[slots::INNER_UNROLL_FACTOR1],
            inner_unroll2: v[slots::INNER_UNROLL_FACTOR2],
            use_soa: v[slots::USE_SOA] != 0,
            local_mem: v[slots::LOCAL_MEM] != 0,
            vector_type: v[slots::VECTOR_TYPE],
        }
    }
}

/// The N-body benchmark.
#[derive(Debug, Clone)]
pub struct NbodyKernel {
    /// Number of bodies.
    pub n: u64,
}

impl Default for NbodyKernel {
    fn default() -> Self {
        NbodyKernel { n: 131_072 }
    }
}

impl NbodyKernel {
    /// Create with an explicit body count.
    pub fn with_bodies(n: u64) -> Self {
        NbodyKernel { n }
    }
}

/// FLOPs per body-body interaction (distances, rsqrt, force accumulation).
pub const FLOPS_PER_INTERACTION: f64 = 20.0;

impl KernelSpec for NbodyKernel {
    fn name(&self) -> &'static str {
        "nbody"
    }

    fn build_space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::pow2("block_size", 64, 512))
            .param(Param::new("outer_unroll_factor", vec![1, 2, 4, 8]))
            .param(Param::new(
                "inner_unroll_factor1",
                vec![0, 1, 2, 4, 8, 16, 32],
            ))
            .param(Param::new(
                "inner_unroll_factor2",
                vec![0, 1, 2, 4, 8, 16, 32],
            ))
            .param(Param::boolean("use_soa"))
            .param(Param::boolean("local_mem"))
            .param(Param::new("vector_type", vec![1, 2, 4]))
            // The second inner loop only exists in the shared-memory code
            // path; its unroll factor is meaningless without LOCAL_MEM.
            .restrict("inner_unroll_factor2 == 0 or local_mem == 1")
            // AoS bodies are float4; scalar/short-vector loads of an AoS
            // stream are only generated for SoA layouts.
            .restrict("vector_type == 4 or use_soa == 1")
            .build()
            .expect("N-body space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = NbodyConfig::from_values(config);
        let threads = c.block_size as u32;
        let bodies_per_block = (c.block_size * c.outer_unroll) as u64;
        let grid = ceil_div(self.n, bodies_per_block);
        let mut m = KernelModel::new("nbody", grid, threads);

        let n = self.n as f64;
        let ou = c.outer_unroll as f64;

        m.flops_per_thread = FLOPS_PER_INTERACTION * n * ou;

        // Effective unroll of the hot inner loop (0 = compiler decides; the
        // CUDA compiler usually unrolls the small-trip-count loop by ~4).
        let active_unroll = if c.local_mem {
            c.inner_unroll2
        } else {
            c.inner_unroll1
        };
        let eff_unroll = if active_unroll == 0 {
            4.0
        } else {
            active_unroll as f64
        };

        // Registers: per-body accumulators (ax, ay, az) + position per outer
        // body, plus unroll live ranges and vector load temporaries.
        let natural_regs = (26.0 + ou * 7.0 + eff_unroll * 1.5 + c.vector_type as f64) as u32;
        let (regs, spill) = apply_launch_bounds(natural_regs, threads, 0);
        m.regs_per_thread = regs;
        m.spill_bytes_per_thread = spill * (n / 64.0);

        // Shared memory: one tile of block_size bodies (float4 = 16 B each).
        if c.local_mem {
            m.smem_per_block = (c.block_size * 16) as u32;
            // Each interaction reads one body (4 floats) from the tile.
            m.smem_accesses_per_thread = n * ou * 4.0;
            // Staging writes: each thread stores its share of each tile.
            m.smem_accesses_per_thread += (n / c.block_size as f64) * 4.0;
            m.bank_conflict_factor = 1.0; // broadcast reads are conflict-free
        }

        // Global traffic. With shared-memory tiling each block streams the
        // body array once per tile pass (cooperative, coalesced). Without
        // it, every thread walks the whole body array; the resulting
        // broadcast is served almost entirely by L2/read-only cache.
        let body_bytes = 16.0; // float4 or 4 SoA floats
        let (bytes_per_thread, l2_hit, coalescing) = if c.local_mem {
            let per_block = n * body_bytes;
            let coal = if c.use_soa {
                1.0
            } else {
                // AoS tile staging: efficiency depends on vector width.
                (c.vector_type as f64 * 4.0 / 16.0).clamp(0.25, 1.0)
            };
            (per_block / f64::from(threads), 0.2, coal)
        } else {
            let per_thread = n * body_bytes;
            let coal = if c.use_soa {
                1.0
            } else {
                (c.vector_type as f64 * 4.0 / 16.0).clamp(0.25, 1.0)
            };
            (per_thread, 0.97, coal)
        };
        m.gmem_bytes_per_thread = bytes_per_thread + ou * body_bytes * 2.0; // own body + force writeback
        m.l2_hit_rate = l2_hit;
        m.coalescing = coalescing;
        m.gmem_transactions_per_thread = bytes_per_thread / (c.vector_type as f64 * 4.0);

        // Loop overhead shrinks with unrolling.
        m.int_ops_per_thread = (n / eff_unroll) * 2.0 + n * 0.25;

        // ILP from outer bodies (independent accumulators) and unrolling.
        m.ilp = (ou * (1.0 + eff_unroll / 8.0)).clamp(1.0, 16.0);

        m
    }

    fn source(&self, config: &[i64]) -> String {
        let c = NbodyConfig::from_values(config);
        format!(
            "// KTT-style tunable N-body kernel (BAT-rs generated)\n\
             #define BLOCK_SIZE {}\n#define OUTER_UNROLL_FACTOR {}\n\
             #define INNER_UNROLL_FACTOR1 {}\n#define INNER_UNROLL_FACTOR2 {}\n\
             #define USE_SOA {}\n#define LOCAL_MEM {}\n#define VECTOR_TYPE {}\n\
             \n\
             extern \"C\" __global__ void nbody_kernel(int n, float dt,\n\
             \x20   const float4* posMass, float4* accel) {{\n\
             #if LOCAL_MEM == 1\n  __shared__ float4 tile[BLOCK_SIZE];\n#endif\n\
             \x20 // OUTER_UNROLL_FACTOR bodies per thread; inner loop over all\n\
             \x20 // bodies, unrolled by INNER_UNROLL_FACTOR1/2 per code path ...\n\
             }}\n",
            c.block_size,
            c.outer_unroll,
            c.inner_unroll1,
            c.inner_unroll2,
            i64::from(c.use_soa),
            i64::from(c.local_mem),
            c.vector_type,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_ii() {
        let s = NbodyKernel::default().build_space();
        assert_eq!(s.cardinality(), 9_408);
    }

    #[test]
    fn constrained_cardinality_is_reported() {
        // The paper reports 1 568 (Table VIII) for KTT's restriction set,
        // which is not printed in the paper. Our physically-motivated
        // reconstruction keeps 3 584 configurations; see EXPERIMENTS.md.
        let s = NbodyKernel::default().build_space();
        assert_eq!(s.count_valid(), 3_584);
        assert_eq!(s.count_valid_factored(), 3_584);
    }

    #[test]
    fn flops_conserved_across_configs() {
        let k = NbodyKernel::default();
        let total = |cfg: &[i64]| {
            let m = k.model(cfg);
            m.flops_per_thread * m.total_threads()
        };
        let a = total(&[128, 1, 0, 0, 1, 0, 1]);
        let b = total(&[512, 8, 0, 16, 1, 1, 4]);
        assert_eq!(a, b);
        assert_eq!(a, FLOPS_PER_INTERACTION * (131_072.0f64).powi(2));
    }

    #[test]
    fn aos_scalar_loads_coalesce_poorly() {
        let k = NbodyKernel::default();
        // AoS (use_soa=0) requires vector_type==4 per restrictions; compare
        // the SoA scalar variant vs AoS float4 variant instead.
        let soa = k.model(&[256, 2, 4, 0, 1, 0, 1]);
        let aos4 = k.model(&[256, 2, 4, 0, 0, 0, 4]);
        assert!(soa.coalescing >= aos4.coalescing);
    }

    #[test]
    fn local_mem_reduces_dram_pressure() {
        let k = NbodyKernel::default();
        let tiled = k.model(&[256, 2, 0, 4, 1, 1, 1]);
        let direct = k.model(&[256, 2, 4, 0, 1, 0, 1]);
        let dram = |m: &bat_gpusim::KernelModel| {
            m.gmem_bytes_per_thread * (1.0 - m.l2_hit_rate) * m.total_threads()
        };
        assert!(dram(&tiled) < dram(&direct) * 1.5);
        assert!(tiled.smem_accesses_per_thread > 0.0);
        assert_eq!(direct.smem_accesses_per_thread, 0.0);
    }

    #[test]
    fn models_validate_across_space_sample() {
        let k = NbodyKernel::default();
        let s = k.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        for idx in (0..s.cardinality()).step_by(31) {
            s.decode_into(idx, &mut scratch);
            if s.is_valid(&scratch) {
                assert_eq!(k.model(&scratch).validate(), Ok(()), "{scratch:?}");
            }
        }
    }

    #[test]
    fn source_embeds_parameters() {
        let src = NbodyKernel::default().source(&[128, 2, 8, 0, 1, 0, 2]);
        assert!(src.contains("#define BLOCK_SIZE 128"));
        assert!(src.contains("#define VECTOR_TYPE 2"));
    }
}
