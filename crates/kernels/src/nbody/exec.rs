//! Functional executor for the N-body benchmark.
//!
//! Emulates the GPU decomposition: blocks of `block_size` threads, each
//! thread owning `outer_unroll_factor` bodies, the inner loop over all
//! bodies either streaming from "global" memory or via block-wide shared
//! tiles, with AoS or SoA input layout. Verified against a naive all-pairs
//! reference.

use rayon::prelude::*;

use super::NbodyConfig;

/// Softening factor (as in the CUDA SDK sample).
pub const SOFTENING_SQ: f32 = 1e-3;

/// Bodies in structure-of-arrays layout.
#[derive(Debug, Clone)]
pub struct BodiesSoA {
    /// x positions.
    pub x: Vec<f32>,
    /// y positions.
    pub y: Vec<f32>,
    /// z positions.
    pub z: Vec<f32>,
    /// masses.
    pub m: Vec<f32>,
}

impl BodiesSoA {
    /// Deterministic pseudo-random cloud of `n` bodies.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        };
        let mut b = BodiesSoA {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            m: Vec::with_capacity(n),
        };
        for _ in 0..n {
            b.x.push(next());
            b.y.push(next());
            b.z.push(next());
            b.m.push(next().abs() + 0.1);
        }
        b
    }

    /// Convert to AoS layout (x, y, z, m interleaved).
    pub fn to_aos(&self) -> Vec<f32> {
        let n = self.x.len();
        let mut out = Vec::with_capacity(n * 4);
        for i in 0..n {
            out.extend_from_slice(&[self.x[i], self.y[i], self.z[i], self.m[i]]);
        }
        out
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn interact(xi: f32, yi: f32, zi: f32, xj: f32, yj: f32, zj: f32, mj: f32, acc: &mut [f32; 3]) {
    let dx = xj - xi;
    let dy = yj - yi;
    let dz = zj - zi;
    let dist_sq = dx * dx + dy * dy + dz * dz + SOFTENING_SQ;
    let inv = 1.0 / dist_sq.sqrt();
    let inv3 = inv * inv * inv;
    let s = mj * inv3;
    acc[0] += dx * s;
    acc[1] += dy * s;
    acc[2] += dz * s;
}

/// Naive all-pairs reference: acceleration of each body.
pub fn nbody_reference(bodies: &BodiesSoA) -> Vec<[f32; 3]> {
    let n = bodies.len();
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = [0.0f32; 3];
            for j in 0..n {
                interact(
                    bodies.x[i],
                    bodies.y[i],
                    bodies.z[i],
                    bodies.x[j],
                    bodies.y[j],
                    bodies.z[j],
                    bodies.m[j],
                    &mut acc,
                );
            }
            acc
        })
        .collect()
}

/// Execute one N-body force pass with the decomposition implied by `cfg`.
///
/// `n` must be a multiple of `block_size * outer_unroll_factor` (upheld by
/// the benchmark's power-of-two sizes).
pub fn nbody_tiled(cfg: &NbodyConfig, bodies: &BodiesSoA) -> Vec<[f32; 3]> {
    let n = bodies.len();
    let bs = cfg.block_size as usize;
    let ou = cfg.outer_unroll as usize;
    let bodies_per_block = bs * ou;
    assert_eq!(n % bodies_per_block, 0, "n must divide into blocks");
    let aos = if cfg.use_soa {
        Vec::new()
    } else {
        bodies.to_aos()
    };

    let fetch = |j: usize| -> (f32, f32, f32, f32) {
        if cfg.use_soa {
            (bodies.x[j], bodies.y[j], bodies.z[j], bodies.m[j])
        } else {
            let base = j * 4;
            (aos[base], aos[base + 1], aos[base + 2], aos[base + 3])
        }
    };

    let n_blocks = n / bodies_per_block;
    let mut out = vec![[0.0f32; 3]; n];
    out.par_chunks_mut(bodies_per_block)
        .enumerate()
        .for_each(|(block, chunk)| {
            let _ = n_blocks;
            // Each thread owns `ou` bodies, strided by block size as in the
            // CUDA sample: thread t handles bodies base + t + w*bs.
            let base = block * bodies_per_block;
            let mut tile = vec![(0.0f32, 0.0f32, 0.0f32, 0.0f32); bs];
            let mut acc = vec![[0.0f32; 3]; bodies_per_block];
            if cfg.local_mem {
                // Tile passes over the body array.
                let mut j0 = 0;
                while j0 < n {
                    for (t, slot) in tile.iter_mut().enumerate() {
                        *slot = fetch(j0 + t);
                    }
                    for t in 0..bs {
                        for w in 0..ou {
                            let i = base + t + w * bs;
                            let (xi, yi, zi, _) = fetch(i);
                            let a = &mut acc[t + w * bs];
                            for item in tile.iter().take(bs) {
                                let (xj, yj, zj, mj) = *item;
                                interact(xi, yi, zi, xj, yj, zj, mj, a);
                            }
                        }
                    }
                    j0 += bs;
                }
            } else {
                for t in 0..bs {
                    for w in 0..ou {
                        let i = base + t + w * bs;
                        let (xi, yi, zi, _) = fetch(i);
                        let a = &mut acc[t + w * bs];
                        for j in 0..n {
                            let (xj, yj, zj, mj) = fetch(j);
                            interact(xi, yi, zi, xj, yj, zj, mj, a);
                        }
                    }
                }
            }
            chunk.copy_from_slice(&acc);
        });
    out
}

/// Max absolute component difference between two acceleration sets.
pub fn max_acc_diff(a: &[[f32; 3]], b: &[[f32; 3]]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| (0..3).map(move |k| (x[k] - y[k]).abs()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(cfg_values: &[i64], n: usize) {
        let cfg = NbodyConfig::from_values(cfg_values);
        let bodies = BodiesSoA::random(n, 11);
        let reference = nbody_reference(&bodies);
        let tiled = nbody_tiled(&cfg, &bodies);
        let diff = max_acc_diff(&reference, &tiled);
        assert!(diff < 2e-3, "config {cfg_values:?} diverged: {diff}");
    }

    #[test]
    fn soa_direct_matches_reference() {
        check(&[64, 1, 0, 0, 1, 0, 1], 256);
    }

    #[test]
    fn soa_tiled_matches_reference() {
        check(&[64, 2, 0, 4, 1, 1, 2], 256);
    }

    #[test]
    fn aos_tiled_matches_reference() {
        check(&[64, 2, 0, 0, 0, 1, 4], 512);
    }

    #[test]
    fn aos_direct_matches_reference() {
        check(&[128, 1, 8, 0, 0, 0, 4], 256);
    }

    #[test]
    fn two_body_symmetric_pull() {
        // Two equal masses attract each other with equal, opposite force.
        let bodies = BodiesSoA {
            x: vec![-1.0, 1.0, 0.0, 0.0],
            y: vec![0.0; 4],
            z: vec![0.0; 4],
            m: vec![1.0, 1.0, 0.0, 0.0],
        };
        let acc = nbody_reference(&bodies);
        assert!((acc[0][0] + acc[1][0]).abs() < 1e-6);
        assert!(acc[0][0] > 0.0); // body at -1 pulled toward +1
    }
}
