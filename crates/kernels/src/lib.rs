//! # bat-kernels
//!
//! The seven tunable GPU benchmark kernels of BAT 2.0, each with:
//!
//! * its exact Table I–VII configuration space plus restriction set,
//! * a cost model mapping configurations to [`bat_gpusim::KernelModel`]s,
//! * a functional CPU executor that reproduces the GPU decomposition
//!   (tiling, staging, strides) and is verified against a naive reference,
//! * generated CUDA-C source for inspection.
//!
//! [`GpuBenchmark`] binds a kernel to a [`bat_gpusim::GpuArch`] to produce a
//! [`bat_core::TuningProblem`] — the paper's shared problem interface.

#![warn(missing_docs)]

pub mod common;
pub mod convolution;
pub mod dedisp;
pub mod expdist;
pub mod gemm;
pub mod hotspot;
pub mod nbody;
pub mod pnpoly;
mod suite;
pub mod t1;

pub use common::{GpuBenchmark, KernelSpec};
pub use convolution::ConvolutionKernel;
pub use dedisp::DedispKernel;
pub use expdist::ExpdistKernel;
pub use gemm::GemmKernel;
pub use hotspot::HotspotKernel;
pub use nbody::NbodyKernel;
pub use pnpoly::PnpolyKernel;
pub use suite::{all_kernels, benchmark, kernel_by_name, BENCHMARK_NAMES};
