//! Shared infrastructure for the seven BAT benchmarks.

use std::sync::Arc;

use bat_core::{EvalFailure, TuningProblem};
use bat_gpusim::{execute_repeated, execute_with_energy_repeated, GpuArch, KernelModel};
use bat_space::ConfigSpace;

/// A tunable GPU kernel: its configuration space, its cost model and its
/// generated source.
///
/// This is the benchmark side of the paper's shared problem interface. A
/// `KernelSpec` is architecture-agnostic; binding it to a [`GpuArch`] via
/// [`GpuBenchmark`] yields a [`TuningProblem`].
pub trait KernelSpec: Send + Sync {
    /// Benchmark name (`"gemm"`, `"nbody"`, …).
    fn name(&self) -> &'static str;

    /// Build the tunable parameter space (Tables I–VII) with its
    /// restriction set.
    fn build_space(&self) -> ConfigSpace;

    /// Map a restriction-valid configuration to a single-launch model.
    ///
    /// `config` is aligned with the space built by
    /// [`KernelSpec::build_space`].
    fn model(&self, config: &[i64]) -> KernelModel;

    /// Write the model for `config` into a caller-owned slot.
    ///
    /// The batch evaluation path calls this against a per-worker arena
    /// slot (see [`GpuBenchmark::evaluate_pure`]) so the ~180-byte model
    /// is rebuilt in place across millions of evaluations instead of
    /// being constructed and moved through a fresh stack slot each time.
    /// The default delegates to [`KernelSpec::model`]; kernels whose
    /// models share most fields across configurations can override it to
    /// update only what changes.
    fn model_into(&self, config: &[i64], out: &mut KernelModel) {
        *out = self.model(config);
    }

    /// Number of kernel launches one application-level run performs
    /// (e.g. Hotspot runs `ceil(steps / temporal_tiling_factor)` launches).
    fn launches(&self, _config: &[i64]) -> u64 {
        1
    }

    /// Generate CUDA-C source for this configuration (for inspection and
    /// docs; the simulator prices the [`KernelModel`] directly).
    fn source(&self, config: &[i64]) -> String;
}

/// A [`KernelSpec`] bound to a target architecture: the concrete
/// [`TuningProblem`] a tuner optimizes.
pub struct GpuBenchmark {
    spec: Arc<dyn KernelSpec>,
    arch: GpuArch,
    space: ConfigSpace,
}

impl GpuBenchmark {
    /// Bind `spec` to `arch`.
    pub fn new(spec: Arc<dyn KernelSpec>, arch: GpuArch) -> Self {
        let space = spec.build_space();
        GpuBenchmark { spec, arch, space }
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The underlying kernel spec.
    pub fn spec(&self) -> &Arc<dyn KernelSpec> {
        &self.spec
    }
}

thread_local! {
    /// Per-worker model arena. One long-lived slot per thread — with the
    /// persistent worker pool that is one slot per pool worker — that the
    /// evaluation hot path rebuilds in place via [`KernelSpec::model_into`],
    /// instead of constructing a fresh [`KernelModel`] per evaluation.
    static MODEL_ARENA: std::cell::RefCell<KernelModel> =
        std::cell::RefCell::new(KernelModel::new("", 0, 0));
}

impl TuningProblem for GpuBenchmark {
    fn name(&self) -> &str {
        self.spec.name()
    }

    fn platform(&self) -> &str {
        self.arch.name
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure> {
        if !self.space.is_valid(config) {
            return Err(EvalFailure::Restricted);
        }
        MODEL_ARENA.with(|slot| {
            let mut model = slot.borrow_mut();
            self.spec.model_into(config, &mut model);
            let launches = self.spec.launches(config);
            execute_repeated(&self.arch, &model, launches)
                .map_err(|e| EvalFailure::Launch(e.to_string()))
        })
    }

    fn evaluate_pure2(&self, config: &[i64]) -> Result<(f64, Option<f64>), EvalFailure> {
        if !self.space.is_valid(config) {
            return Err(EvalFailure::Restricted);
        }
        // Same kernel-specific work profile as `evaluate_pure`, priced
        // through the simulator's power model as well: the time component
        // is bit-identical to the single-objective path.
        MODEL_ARENA.with(|slot| {
            let mut model = slot.borrow_mut();
            self.spec.model_into(config, &mut model);
            let launches = self.spec.launches(config);
            execute_with_energy_repeated(&self.arch, &model, launches)
                .map(|(t, e)| (t, Some(e)))
                .map_err(|e| EvalFailure::Launch(e.to_string()))
        })
    }

    fn noise_salt(&self) -> u64 {
        bat_gpusim::mix(self.arch.noise_salt(), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in self.spec.name().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h
        })
    }
}

/// Ceiling division for positive integers.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Model the effect of `__launch_bounds__(threads, min_blocks)`: the
/// compiler caps register usage so `min_blocks` blocks fit per SM, spilling
/// the excess to local memory.
///
/// Returns `(regs_per_thread, spill_bytes_per_thread_per_use)` where the
/// second component is the number of spilled registers (×4 bytes each); the
/// caller scales it by how often spilled values are touched.
pub fn apply_launch_bounds(
    natural_regs: u32,
    threads_per_block: u32,
    min_blocks: u32,
) -> (u32, f64) {
    let natural = natural_regs.min(255);
    let spilled_by_cap = f64::from(natural_regs.saturating_sub(255));
    if min_blocks == 0 {
        return (natural, spilled_by_cap * 4.0);
    }
    // Register file is 64K on all modeled parts; allocation granularity is
    // folded into a 95% usable fraction.
    let budget = (65_536.0 * 0.95 / f64::from(min_blocks) / f64::from(threads_per_block.max(1)))
        .floor()
        .clamp(16.0, 255.0) as u32;
    if natural <= budget {
        (natural, spilled_by_cap * 4.0)
    } else {
        let spilled = f64::from(natural - budget);
        (budget, (spilled + spilled_by_cap) * 4.0)
    }
}

/// Coalescing efficiency of loads where consecutive threads access
/// addresses `stride_bytes` apart, each loading `access_bytes`.
///
/// 1.0 when accesses are dense (stride == access size ≤ 32-byte sector);
/// degrades toward `access/32` for scattered accesses.
#[inline]
pub fn strided_coalescing(access_bytes: f64, stride_bytes: f64) -> f64 {
    if stride_bytes <= access_bytes {
        return 1.0;
    }
    // Each 32-byte sector fetched carries `access_bytes` useful bytes when
    // stride exceeds the sector size.
    let sector = 32.0;
    let useful = access_bytes.min(sector);
    let fetched = stride_bytes.min(sector).max(useful);
    (useful / fetched).clamp(useful / sector, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_objective_paths_report_the_same_time() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let b = crate::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
        let space = bat_core::TuningProblem::space(&b);
        for _ in 0..20 {
            let idx = bat_space::sample_one_valid(space, &mut rng, 100_000).unwrap();
            let cfg = space.config_at(idx);
            match (b.evaluate_pure(&cfg), b.evaluate_pure2(&cfg)) {
                (Ok(t), Ok((t2, e))) => {
                    assert_eq!(t, t2, "time drifted between objective paths");
                    assert!(e.unwrap() > 0.0);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("paths disagree: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn launch_bounds_unset_keeps_registers() {
        assert_eq!(apply_launch_bounds(80, 256, 0), (80, 0.0));
    }

    #[test]
    fn launch_bounds_caps_and_spills() {
        let (regs, spill) = apply_launch_bounds(200, 512, 2);
        // budget = 65536*0.95/2/512 ≈ 60
        assert!(regs < 80);
        assert!(spill > 0.0);
    }

    #[test]
    fn over_255_always_spills() {
        let (regs, spill) = apply_launch_bounds(300, 64, 0);
        assert_eq!(regs, 255);
        assert_eq!(spill, 45.0 * 4.0);
    }

    #[test]
    fn coalescing_dense_is_full() {
        assert_eq!(strided_coalescing(4.0, 4.0), 1.0);
        assert_eq!(strided_coalescing(16.0, 16.0), 1.0);
    }

    #[test]
    fn coalescing_degrades_with_stride() {
        let dense = strided_coalescing(4.0, 4.0);
        let gap = strided_coalescing(4.0, 16.0);
        let scatter = strided_coalescing(4.0, 64.0);
        assert!(dense > gap);
        assert!(gap > scatter);
        assert!((scatter - 4.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
    }
}
