//! Dedispersion: brute-force incoherent dedispersion of radio telescope data.
//!
//! From the AMBER single-pulse detection pipeline (Sclocco et al.): a radio
//! pulse sweeps across frequency channels with a delay `k ≈ 4150·DM·(1/fᵢ² −
//! 1/fₕ²)`; dedispersion sums, for every trial dispersion measure (DM), the
//! input samples along that delay curve. The BAT instance uses the ARTS
//! survey parameters on the Apertif telescope: 24.4 kHz sampling, 2 048 DMs,
//! 1 536 channels.
//!
//! Tunables (Table VII): 2D block/tile shape over (samples × DMs), tile
//! stride switches (consecutive vs. block-strided per-thread samples/DMs),
//! partial unrolling of the channel loop (any divisor of 1 536), and a
//! launch-bounds hint.

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, strided_coalescing, KernelSpec};

/// Slot order of the Dedispersion space (Table VII order; the paper's table
/// lists `block_size_y` twice — the first row is evidently `block_size_x`).
pub mod slots {
    /// Thread-block width (samples).
    pub const BLOCK_SIZE_X: usize = 0;
    /// Thread-block height (DMs).
    pub const BLOCK_SIZE_Y: usize = 1;
    /// Samples per thread.
    pub const TILE_SIZE_X: usize = 2;
    /// DMs per thread.
    pub const TILE_SIZE_Y: usize = 3;
    /// 0 = consecutive samples per thread, 1 = block-strided.
    pub const TILE_STRIDE_X: usize = 4;
    /// 0 = consecutive DMs per thread, 1 = block-strided.
    pub const TILE_STRIDE_Y: usize = 5;
    /// Channel-loop unroll factor (0 = compiler decides).
    pub const LOOP_UNROLL_FACTOR_CHANNEL: usize = 6;
    /// `__launch_bounds__` min-blocks hint (0 = unset).
    pub const BLOCKS_PER_SM: usize = 7;
}

/// Decoded Dedispersion configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedispConfig {
    /// Thread-block width (samples).
    pub block_size_x: i64,
    /// Thread-block height (DMs).
    pub block_size_y: i64,
    /// Samples per thread.
    pub tile_size_x: i64,
    /// DMs per thread.
    pub tile_size_y: i64,
    /// Sample tiling layout.
    pub tile_stride_x: i64,
    /// DM tiling layout.
    pub tile_stride_y: i64,
    /// Channel unroll (0 = auto).
    pub unroll_channel: i64,
    /// Launch-bounds hint.
    pub blocks_per_sm: i64,
}

impl DedispConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        DedispConfig {
            block_size_x: v[slots::BLOCK_SIZE_X],
            block_size_y: v[slots::BLOCK_SIZE_Y],
            tile_size_x: v[slots::TILE_SIZE_X],
            tile_size_y: v[slots::TILE_SIZE_Y],
            tile_stride_x: v[slots::TILE_STRIDE_X],
            tile_stride_y: v[slots::TILE_STRIDE_Y],
            unroll_channel: v[slots::LOOP_UNROLL_FACTOR_CHANNEL],
            blocks_per_sm: v[slots::BLOCKS_PER_SM],
        }
    }
}

/// The Dedispersion benchmark (ARTS/Apertif survey shape).
#[derive(Debug, Clone)]
pub struct DedispKernel {
    /// Frequency channels.
    pub channels: u64,
    /// Trial dispersion measures.
    pub dms: u64,
    /// Output samples per DM.
    pub samples: u64,
}

impl Default for DedispKernel {
    fn default() -> Self {
        DedispKernel {
            channels: 1536,
            dms: 2048,
            samples: 25_000,
        }
    }
}

impl DedispKernel {
    /// Create with an explicit problem shape.
    pub fn with_size(channels: u64, dms: u64, samples: u64) -> Self {
        DedispKernel {
            channels,
            dms,
            samples,
        }
    }

    /// The unroll-factor values of Table VII: 0 plus every divisor of 1536.
    pub fn unroll_values() -> Vec<i64> {
        let mut v = vec![0i64];
        for d in 1..=1536 {
            if 1536 % d == 0 {
                v.push(d);
            }
        }
        v
    }
}

impl KernelSpec for DedispKernel {
    fn name(&self) -> &'static str {
        "dedisp"
    }

    fn build_space(&self) -> ConfigSpace {
        // block_size_x: {1,2,4,8} ∪ {16n | 16n ∈ [16,512]} = 36 values.
        let mut bx = vec![1, 2, 4, 8];
        bx.extend((1..=32).map(|n| 16 * n));
        ConfigSpace::builder()
            .param(Param::new("block_size_x", bx))
            .param(Param::multiples("block_size_y", 4, 4, 128)) // 32 values
            .param(Param::int_range("tile_size_x", 1, 16))
            .param(Param::int_range("tile_size_y", 1, 16))
            .param(Param::boolean("tile_stride_x"))
            .param(Param::boolean("tile_stride_y"))
            .param(Param::new(
                "loop_unroll_factor_channel",
                Self::unroll_values(),
            ))
            .param(Param::new("blocks_per_sm", vec![0, 1, 2, 3, 4]))
            // The stride layout is meaningless for single-element tiles.
            .restrict("tile_size_x > 1 or tile_stride_x == 0")
            .restrict("tile_size_y > 1 or tile_stride_y == 0")
            .build()
            .expect("Dedispersion space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = DedispConfig::from_values(config);
        let threads = (c.block_size_x * c.block_size_y) as u32;
        let x_span = (c.block_size_x * c.tile_size_x) as u64;
        let y_span = (c.block_size_y * c.tile_size_y) as u64;
        let grid = ceil_div(self.samples, x_span) * ceil_div(self.dms, y_span);
        let mut m = KernelModel::new("dedisp", grid, threads.max(1));

        let per_thread_outputs = (c.tile_size_x * c.tile_size_y) as f64;
        let nchan = self.channels as f64;

        // One load+add per channel per output, plus delay lookups.
        m.flops_per_thread = per_thread_outputs * nchan;

        // Memory model: per channel, a thread reads a register window of
        // tile_size_x samples plus the delay spread across *its own* DMs
        // (~4 samples per DM step at ARTS parameters); the block-strided DM
        // layout (tile_stride_y = 1) spaces a thread's DMs block_size_y
        // apart, widening that window. The bulk of these reads hit the
        // L1/texture path, which shares the shared-memory datapath.
        let span = 4.0
            * (c.tile_size_y as f64 - 1.0)
            * if c.tile_stride_y == 1 {
                c.block_size_y as f64
            } else {
                1.0
            };
        // Register reuse can never fetch more than one value per output per
        // channel; wide windows (strided DM layouts) degrade to that bound.
        let window = (c.tile_size_x as f64 + span).min(per_thread_outputs);
        let loads_per_thread = nchan * window.max(c.tile_size_x as f64);
        let l1_hit = if c.tile_stride_x == 1 || c.tile_size_x == 1 {
            0.93
        } else {
            0.88
        };
        m.smem_accesses_per_thread = loads_per_thread * l1_hit;
        let out_bytes = per_thread_outputs * 4.0;
        let delay_table_bytes = nchan * c.tile_size_y as f64 * 4.0 * 0.02; // cached
        m.gmem_bytes_per_thread =
            loads_per_thread * 4.0 * (1.0 - l1_hit) + out_bytes + delay_table_bytes;
        m.l2_hit_rate = 0.90;
        // Sample reads are x-contiguous; a thread owning consecutive
        // samples (stride 0) breaks warp-level coalescing, the strided
        // layout (stride 1) restores it.
        let x_coal = if c.tile_stride_x == 1 || c.tile_size_x == 1 {
            1.0
        } else {
            strided_coalescing(4.0, 4.0 * c.tile_size_x as f64).max(0.35)
        };
        m.coalescing = x_coal;
        m.gmem_transactions_per_thread = per_thread_outputs * nchan;

        // Channel-loop overhead; 0 = compiler picks a moderate unroll.
        let eff_unroll = if c.unroll_channel == 0 {
            8.0
        } else {
            c.unroll_channel as f64
        };
        m.int_ops_per_thread = per_thread_outputs * nchan * 2.0 / eff_unroll.min(16.0)
            + per_thread_outputs * nchan * 0.5;

        // Registers: output accumulators + unroll live ranges (huge unrolls
        // bloat register pressure until values spill).
        let natural_regs = (22.0 + per_thread_outputs * 1.5 + (eff_unroll.min(64.0)) * 0.75) as u32;
        let (regs, spill) =
            apply_launch_bounds(natural_regs, threads.max(1), c.blocks_per_sm as u32);
        m.regs_per_thread = regs;
        m.spill_bytes_per_thread = spill * nchan / 64.0;
        m.launch_bounds_blocks = c.blocks_per_sm as u32;

        // DM-adjacent outputs share loads; stride_y=1 groups same-delay
        // threads in a warp, improving locality a bit.
        if c.tile_stride_y == 1 {
            m.l2_hit_rate = (m.l2_hit_rate + 0.03).min(0.99);
        }

        m.ilp = per_thread_outputs.clamp(1.0, 12.0);

        m
    }

    fn source(&self, config: &[i64]) -> String {
        let c = DedispConfig::from_values(config);
        format!(
            "// AMBER-style dedispersion kernel (BAT-rs generated)\n\
             #define BLOCK_SIZE_X {}\n#define BLOCK_SIZE_Y {}\n\
             #define TILE_SIZE_X {}\n#define TILE_SIZE_Y {}\n\
             #define TILE_STRIDE_X {}\n#define TILE_STRIDE_Y {}\n\
             #define LOOP_UNROLL_FACTOR_CHANNEL {}\n#define BLOCKS_PER_SM {}\n\
             \n\
             #if BLOCKS_PER_SM > 0\n\
             __launch_bounds__(BLOCK_SIZE_X * BLOCK_SIZE_Y, BLOCKS_PER_SM)\n\
             #endif\n\
             extern \"C\" __global__ void dedispersion(const float* input,\n\
             \x20   float* output, const int* delay_table, int nsamps, int nchans,\n\
             \x20   int ndms) {{\n\
             \x20 // sum input[chan][samp + delay(dm, chan)] over channels,\n\
             \x20 // channel loop unrolled by LOOP_UNROLL_FACTOR_CHANNEL ...\n\
             }}\n",
            c.block_size_x,
            c.block_size_y,
            c.tile_size_x,
            c.tile_size_y,
            c.tile_stride_x,
            c.tile_stride_y,
            c.unroll_channel,
            c.blocks_per_sm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_vii() {
        let s = DedispKernel::default().build_space();
        assert_eq!(s.cardinality(), 123_863_040);
    }

    #[test]
    fn unroll_values_are_divisors_of_1536() {
        let v = DedispKernel::unroll_values();
        assert_eq!(v.len(), 21);
        assert_eq!(v[0], 0);
        assert!(v[1..].iter().all(|&d| 1536 % d == 0));
        assert_eq!(*v.last().unwrap(), 1536);
    }

    #[test]
    fn constrained_count_is_reported() {
        // Paper: 107 011 905. Ours: stride-relevance restrictions keep
        // 31/32 per axis -> 1152 * 31 * 31 * 21 * 5 = 116 242 560.
        let s = DedispKernel::default().build_space();
        assert_eq!(s.count_valid_factored(), 116_242_560);
    }

    #[test]
    fn oversized_blocks_fail_at_launch_not_in_restrictions() {
        use crate::common::GpuBenchmark;
        use bat_core::{EvalFailure, TuningProblem};
        use std::sync::Arc;
        let b = GpuBenchmark::new(
            Arc::new(DedispKernel::default()),
            bat_gpusim::GpuArch::rtx_3090(),
        );
        // 512 * 128 = 65536 threads: restriction-valid, launch-invalid.
        let cfg = [512, 128, 2, 2, 0, 0, 8, 0];
        assert!(b.space().is_valid(&cfg));
        assert!(matches!(b.evaluate_pure(&cfg), Err(EvalFailure::Launch(_))));
    }

    #[test]
    fn strided_tiles_coalesce_better() {
        let k = DedispKernel::default();
        let consecutive = k.model(&[64, 8, 8, 2, 0, 0, 8, 0]);
        let strided = k.model(&[64, 8, 8, 2, 1, 0, 8, 0]);
        assert!(strided.coalescing > consecutive.coalescing);
    }

    #[test]
    fn huge_unrolls_bloat_registers() {
        let k = DedispKernel::default();
        let small = k.model(&[64, 8, 2, 2, 0, 0, 8, 0]);
        let huge = k.model(&[64, 8, 2, 2, 0, 0, 1536, 0]);
        assert!(huge.regs_per_thread > small.regs_per_thread);
    }

    #[test]
    fn models_validate_across_space_sample() {
        let k = DedispKernel::default();
        let s = k.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        for idx in (0..s.cardinality()).step_by(1_000_003) {
            s.decode_into(idx, &mut scratch);
            if s.is_valid(&scratch) {
                assert_eq!(k.model(&scratch).validate(), Ok(()), "{scratch:?}");
            }
        }
    }
}
