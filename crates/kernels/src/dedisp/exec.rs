//! Functional executor for the Dedispersion benchmark.
//!
//! Generates a synthetic filterbank with injected dispersed pulses (the
//! paper's proprietary-telescope substitute), dedisperses it with the block
//! decomposition implied by a configuration, and verifies against a naive
//! reference. The delay table follows the dispersion equation
//! `k = 4150 · DM · (1/fᵢ² − 1/fₕ²)` scaled to sample units.

use rayon::prelude::*;

use super::DedispConfig;

/// A synthetic filterbank: `channels × samples` float32 powers.
#[derive(Debug, Clone)]
pub struct Filterbank {
    /// Number of channels.
    pub channels: usize,
    /// Samples per channel.
    pub samples: usize,
    /// Row-major data, `data[chan * samples + t]`.
    pub data: Vec<f32>,
}

impl Filterbank {
    /// Noise-only filterbank.
    pub fn noise(channels: usize, samples: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let data = (0..channels * samples)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
            })
            .collect();
        Filterbank {
            channels,
            samples,
            data,
        }
    }

    /// Inject a dispersed pulse of amplitude `amp` arriving at `t0` (in the
    /// highest-frequency channel) with dispersion measure index `dm`.
    pub fn inject_pulse(&mut self, delays: &DelayTable, dm: usize, t0: usize, amp: f32) {
        for chan in 0..self.channels {
            let t = t0 + delays.delay(dm, chan);
            if t < self.samples {
                self.data[chan * self.samples + t] += amp;
            }
        }
    }
}

/// Per-(DM, channel) sample delays.
#[derive(Debug, Clone)]
pub struct DelayTable {
    channels: usize,
    delays: Vec<usize>, // [dm * channels + chan]
}

impl DelayTable {
    /// Build the ARTS-like delay table: delay grows quadratically toward
    /// lower frequencies and linearly with DM.
    pub fn arts_like(dms: usize, channels: usize, max_delay: usize) -> Self {
        // Frequencies fall from f_h to f_l across channels; delay ∝
        // DM * (1/f_i^2 - 1/f_h^2), normalized so (dms-1, channels-1)
        // reaches max_delay.
        let f_h = 1500.0f64; // MHz
        let f_l = 1200.0f64;
        let inv2 = |f: f64| 1.0 / (f * f);
        let span = inv2(f_l) - inv2(f_h);
        let mut delays = Vec::with_capacity(dms * channels);
        for dm in 0..dms {
            for chan in 0..channels {
                let f = f_h - (f_h - f_l) * (chan as f64) / (channels.max(2) - 1) as f64;
                let frac = (inv2(f) - inv2(f_h)) / span;
                let d = (dm as f64) / (dms.max(2) - 1) as f64 * frac * max_delay as f64;
                delays.push(d.round() as usize);
            }
        }
        DelayTable { channels, delays }
    }

    /// Delay in samples for (dm, chan).
    #[inline]
    pub fn delay(&self, dm: usize, chan: usize) -> usize {
        self.delays[dm * self.channels + chan]
    }

    /// Largest delay in the table.
    pub fn max_delay(&self) -> usize {
        self.delays.iter().copied().max().unwrap_or(0)
    }
}

/// Naive reference dedispersion: `out[dm][t] = Σ_chan in[chan][t + delay]`.
pub fn dedisp_reference(
    fb: &Filterbank,
    delays: &DelayTable,
    dms: usize,
    out_samples: usize,
) -> Vec<f32> {
    assert!(out_samples + delays.max_delay() <= fb.samples);
    let mut out = vec![0.0f32; dms * out_samples];
    out.par_chunks_mut(out_samples)
        .enumerate()
        .for_each(|(dm, row)| {
            for (t, slot) in row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for chan in 0..fb.channels {
                    acc += fb.data[chan * fb.samples + t + delays.delay(dm, chan)];
                }
                *slot = acc;
            }
        });
    out
}

/// Dedisperse with the block/tile/stride decomposition implied by `cfg`.
pub fn dedisp_tiled(
    cfg: &DedispConfig,
    fb: &Filterbank,
    delays: &DelayTable,
    dms: usize,
    out_samples: usize,
) -> Vec<f32> {
    assert!(out_samples + delays.max_delay() <= fb.samples);
    let bsx = cfg.block_size_x as usize;
    let bsy = cfg.block_size_y as usize;
    let tsx = cfg.tile_size_x as usize;
    let tsy = cfg.tile_size_y as usize;
    let x_span = bsx * tsx;
    let y_span = bsy * tsy;
    let blocks_x = out_samples.div_ceil(x_span);
    let blocks_y = dms.div_ceil(y_span);

    let mut out = vec![0.0f32; dms * out_samples];
    // Parallelize over DM block-rows (each owns y_span output rows).
    out.par_chunks_mut(out_samples * y_span)
        .enumerate()
        .for_each(|(by, rows)| {
            let dm0 = by * y_span;
            let _ = blocks_y;
            for bx in 0..blocks_x {
                let t0 = bx * x_span;
                for ty_i in 0..bsy {
                    for tx_i in 0..bsx {
                        for wy in 0..tsy {
                            for wx in 0..tsx {
                                // Stride layout: 0 = thread owns consecutive
                                // elements, 1 = elements block-strided.
                                let lx = if cfg.tile_stride_x == 1 {
                                    tx_i + wx * bsx
                                } else {
                                    tx_i * tsx + wx
                                };
                                let ly = if cfg.tile_stride_y == 1 {
                                    ty_i + wy * bsy
                                } else {
                                    ty_i * tsy + wy
                                };
                                let t = t0 + lx;
                                let dm = dm0 + ly;
                                if t >= out_samples || dm >= dms {
                                    continue;
                                }
                                let mut acc = 0.0f32;
                                for chan in 0..fb.channels {
                                    acc += fb.data[chan * fb.samples + t + delays.delay(dm, chan)];
                                }
                                rows[ly * out_samples + t] = acc;
                            }
                        }
                    }
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHANNELS: usize = 48;
    const DMS: usize = 32;
    const OUT: usize = 96;
    const MAXD: usize = 24;

    fn setup() -> (Filterbank, DelayTable) {
        let delays = DelayTable::arts_like(DMS, CHANNELS, MAXD);
        let mut fb = Filterbank::noise(CHANNELS, OUT + MAXD, 77);
        fb.inject_pulse(&delays, 20, 30, 25.0);
        (fb, delays)
    }

    fn check(cfg_values: &[i64]) {
        let cfg = DedispConfig::from_values(cfg_values);
        let (fb, delays) = setup();
        let reference = dedisp_reference(&fb, &delays, DMS, OUT);
        let tiled = dedisp_tiled(&cfg, &fb, &delays, DMS, OUT);
        assert_eq!(reference.len(), tiled.len());
        for (i, (a, b)) in reference.iter().zip(&tiled).enumerate() {
            assert_eq!(a, b, "config {cfg_values:?} differs at {i}");
        }
    }

    #[test]
    fn consecutive_tiles_match_reference() {
        check(&[8, 4, 2, 2, 0, 0, 8, 0]);
    }

    #[test]
    fn strided_tiles_match_reference() {
        check(&[8, 4, 2, 2, 1, 1, 8, 0]);
    }

    #[test]
    fn mixed_strides_match_reference() {
        check(&[16, 4, 4, 1, 1, 0, 0, 2]);
        check(&[4, 8, 1, 4, 0, 1, 16, 0]);
    }

    #[test]
    fn uneven_block_edges_match_reference() {
        // 16*3=48 does not divide 96? It does; use 5 to force partials.
        check(&[16, 4, 5, 3, 0, 0, 8, 0]);
    }

    #[test]
    fn injected_pulse_peaks_at_its_dm() {
        let (fb, delays) = setup();
        let out = dedisp_reference(&fb, &delays, DMS, OUT);
        // Find the (dm, t) with maximum power.
        let (best_idx, _) = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let best_dm = best_idx / OUT;
        let best_t = best_idx % OUT;
        assert_eq!(best_dm, 20, "pulse must be recovered at its true DM");
        assert_eq!(best_t, 30, "pulse must be recovered at its arrival time");
    }

    #[test]
    fn delay_table_is_monotone() {
        let d = DelayTable::arts_like(16, 32, 100);
        // Delay grows with channel index (lower frequency).
        for dm in [1, 8, 15] {
            for chan in 1..32 {
                assert!(d.delay(dm, chan) >= d.delay(dm, chan - 1));
            }
        }
        // And with DM.
        for chan in [1, 16, 31] {
            for dm in 1..16 {
                assert!(d.delay(dm, chan) >= d.delay(dm - 1, chan));
            }
        }
    }
}
