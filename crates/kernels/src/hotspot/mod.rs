//! Hotspot: iterative thermal simulation (Rodinia-derived, re-implemented).
//!
//! The BAT Hotspot kernel solves a 5-point stencil heat equation over the
//! chip grid. Unlike Rodinia's original, the BAT version (and ours) supports
//! arbitrary thread-block shapes, arbitrary work per thread, and *temporal
//! tiling*: one kernel launch advances the stencil
//! `temporal_tiling_factor` steps by loading a halo-extended tile into
//! shared memory and computing shrinking regions — trading redundant
//! computation for a large reduction in global-memory traffic and kernel
//! launches. That trade creates the cluster of >10× configurations the
//! paper highlights in Figs. 1b/4.

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, KernelSpec};

/// Slot order of the Hotspot space (Table III order).
pub mod slots {
    /// Thread-block width.
    pub const BLOCK_SIZE_X: usize = 0;
    /// Thread-block height.
    pub const BLOCK_SIZE_Y: usize = 1;
    /// Output elements per thread in x.
    pub const TILE_SIZE_X: usize = 2;
    /// Output elements per thread in y.
    pub const TILE_SIZE_Y: usize = 3;
    /// Stencil steps per kernel launch.
    pub const TEMPORAL_TILING_FACTOR: usize = 4;
    /// Unroll factor of the time loop.
    pub const LOOP_UNROLL_FACTOR_T: usize = 5;
    /// Stage power array in shared memory?
    pub const SH_POWER: usize = 6;
    /// `__launch_bounds__` min-blocks hint (0 = unset).
    pub const BLOCKS_PER_SM: usize = 7;
}

/// Decoded Hotspot configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotConfig {
    /// Thread-block width.
    pub block_size_x: i64,
    /// Thread-block height.
    pub block_size_y: i64,
    /// Outputs per thread in x.
    pub tile_size_x: i64,
    /// Outputs per thread in y.
    pub tile_size_y: i64,
    /// Stencil steps per launch.
    pub temporal_tiling_factor: i64,
    /// Time-loop unroll factor.
    pub loop_unroll_factor_t: i64,
    /// Stage power in shared memory.
    pub sh_power: bool,
    /// Launch-bounds hint.
    pub blocks_per_sm: i64,
}

impl HotspotConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        HotspotConfig {
            block_size_x: v[slots::BLOCK_SIZE_X],
            block_size_y: v[slots::BLOCK_SIZE_Y],
            tile_size_x: v[slots::TILE_SIZE_X],
            tile_size_y: v[slots::TILE_SIZE_Y],
            temporal_tiling_factor: v[slots::TEMPORAL_TILING_FACTOR],
            loop_unroll_factor_t: v[slots::LOOP_UNROLL_FACTOR_T],
            sh_power: v[slots::SH_POWER] != 0,
            blocks_per_sm: v[slots::BLOCKS_PER_SM],
        }
    }

    /// Output-tile width of one block.
    pub fn out_x(&self) -> i64 {
        self.block_size_x * self.tile_size_x
    }

    /// Output-tile height of one block.
    pub fn out_y(&self) -> i64 {
        self.block_size_y * self.tile_size_y
    }

    /// Shared input-tile dimensions (halo of `tt` on each side).
    pub fn tile_dims(&self) -> (i64, i64) {
        (
            self.out_x() + 2 * self.temporal_tiling_factor,
            self.out_y() + 2 * self.temporal_tiling_factor,
        )
    }
}

/// FLOPs per stencil cell update (5-point + power + coefficients).
pub const FLOPS_PER_CELL: f64 = 15.0;

/// The Hotspot benchmark.
#[derive(Debug, Clone)]
pub struct HotspotKernel {
    /// Chip grid width (= height).
    pub grid: u64,
    /// Total stencil steps of the application run.
    pub steps: u64,
}

impl Default for HotspotKernel {
    fn default() -> Self {
        HotspotKernel {
            grid: 512,
            steps: 60,
        }
    }
}

impl HotspotKernel {
    /// Create with an explicit grid size and step count.
    pub fn with_size(grid: u64, steps: u64) -> Self {
        HotspotKernel { grid, steps }
    }
}

impl KernelSpec for HotspotKernel {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn build_space(&self) -> ConfigSpace {
        // Table III lists 37 values for block_size_x: {1,2,4,8,16} ∪ {32n}.
        let mut bx = vec![1, 2, 4, 8, 16];
        bx.extend((1..=32).map(|n| 32 * n));
        ConfigSpace::builder()
            .param(Param::new("block_size_x", bx))
            .param(Param::new("block_size_y", vec![1, 2, 4, 8, 16, 32]))
            .param(Param::int_range("tile_size_x", 1, 10))
            .param(Param::int_range("tile_size_y", 1, 10))
            .param(Param::int_range("temporal_tiling_factor", 1, 10))
            .param(Param::int_range("loop_unroll_factor_t", 1, 10))
            .param(Param::boolean("sh_power"))
            .param(Param::new("blocks_per_sm", vec![0, 1, 2, 3, 4]))
            // The unroll pragma handles remainder iterations, and whether
            // the halo-extended shared tile *fits* is architecture-dependent
            // (64 KiB Turing vs 99 KiB Ampere, ≤1024 threads/block): both
            // are launch-validity questions, not portable restrictions.
            // This matches Table VIII, where Hotspot's constrained count is
            // within 1.6% of its full cardinality.
            .restrict("block_size_x * tile_size_x * block_size_y * tile_size_y <= 1048576")
            .build()
            .expect("Hotspot space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = HotspotConfig::from_values(config);
        let threads = (c.block_size_x * c.block_size_y) as u32;
        let (ox, oy) = (c.out_x(), c.out_y());
        let grid_blocks = ceil_div(self.grid, ox as u64) * ceil_div(self.grid, oy as u64);
        let mut m = KernelModel::new("hotspot", grid_blocks, threads);

        let tt = c.temporal_tiling_factor;
        let (tw, th) = c.tile_dims();
        let tile_area = (tw * th) as f64;

        // Work per launch: step s computes the region shrunk by s-1 halos.
        let mut cells = 0.0f64;
        for s in 0..tt {
            let w = (ox + 2 * (tt - 1 - s)) as f64;
            let h = (oy + 2 * (tt - 1 - s)) as f64;
            cells += w * h;
        }
        m.flops_per_thread = cells * FLOPS_PER_CELL / f64::from(threads);

        // Shared memory: two temperature buffers (ping-pong) + optional power.
        let smem_words = tile_area * (2.0 + f64::from(c.sh_power as u8));
        m.smem_per_block = (smem_words * 4.0) as u32;

        // Shared traffic: 5 neighbour reads + 1 write per cell, with
        // register row-reuse along x cutting the reads to ~3 per cell.
        m.smem_accesses_per_thread = cells * 3.0 / f64::from(threads);
        // Stride conflicts when the padded row length is a multiple of the
        // bank count and threads walk columns.
        m.bank_conflict_factor = if tw % 32 == 0 && c.block_size_y > 1 {
            2.0
        } else {
            1.0
        };

        // Global traffic per block per launch: read the halo tile once,
        // write the core; power is read once when staged, every step when
        // not (mostly from L2 after the first step).
        let temp_read = tile_area * 4.0;
        let out_write = (ox * oy) as f64 * 4.0;
        let power_read = if c.sh_power {
            tile_area * 4.0
        } else {
            cells * 4.0
        };
        let total = temp_read + out_write + power_read;
        m.gmem_bytes_per_thread = total / f64::from(threads);
        // The 4 MB power array is read-only and hot across all launches
        // (it fits L2 alongside the working set), and the temperature tile
        // written by the previous launch is still partially L2-resident.
        m.l2_hit_rate = (0.35 * temp_read + 0.10 * out_write + 0.85 * power_read) / total;
        // Rows of the halo tile are loaded cooperatively by block_size_x
        // threads: narrow blocks in x load short, poorly-coalesced rows.
        m.coalescing = ((c.block_size_x as f64) * 4.0 / 32.0).clamp(0.125, 1.0);
        m.gmem_transactions_per_thread = total / f64::from(threads) / 4.0;

        // Time-loop overhead shrinks with unrolling.
        let u = c.loop_unroll_factor_t as f64;
        m.int_ops_per_thread = (tt as f64 / u) * 10.0 + cells * 2.0 / f64::from(threads);

        // Registers: per-thread output tile + unroll live ranges.
        let natural_regs = (22.0 + 2.0 * (c.tile_size_x * c.tile_size_y) as f64 + 2.0 * u) as u32;
        let (regs, spill) = apply_launch_bounds(natural_regs, threads, c.blocks_per_sm as u32);
        m.regs_per_thread = regs;
        m.spill_bytes_per_thread = spill * tt as f64;
        m.launch_bounds_blocks = c.blocks_per_sm as u32;

        m.ilp = ((c.tile_size_x * c.tile_size_y) as f64 * (1.0 + u / 10.0)).clamp(1.0, 12.0);
        // Halo threads idle progressively in later steps.
        m.divergence_factor = if tt > 1 { 1.15 } else { 1.0 };

        m
    }

    fn launches(&self, config: &[i64]) -> u64 {
        let c = HotspotConfig::from_values(config);
        ceil_div(self.steps, c.temporal_tiling_factor as u64)
    }

    fn source(&self, config: &[i64]) -> String {
        let c = HotspotConfig::from_values(config);
        format!(
            "// BAT-rs tunable Hotspot stencil (from-scratch re-implementation)\n\
             #define BLOCK_SIZE_X {}\n#define BLOCK_SIZE_Y {}\n\
             #define TILE_SIZE_X {}\n#define TILE_SIZE_Y {}\n\
             #define TEMPORAL_TILING_FACTOR {}\n#define LOOP_UNROLL_FACTOR_T {}\n\
             #define SH_POWER {}\n#define BLOCKS_PER_SM {}\n\
             \n\
             #if BLOCKS_PER_SM > 0\n\
             __launch_bounds__(BLOCK_SIZE_X * BLOCK_SIZE_Y, BLOCKS_PER_SM)\n\
             #endif\n\
             extern \"C\" __global__ void hotspot(const float* temp_src, const float* power,\n\
             \x20   float* temp_dst, int grid_w, int grid_h, float rx, float ry, float rz,\n\
             \x20   float step_div_cap) {{\n\
             \x20 __shared__ float t_now[/* (BSX*TSX+2T)*(BSY*TSY+2T) */];\n\
             \x20 __shared__ float t_next[/* idem */];\n\
             #if SH_POWER == 1\n  __shared__ float p_sh[/* idem */];\n#endif\n\
             \x20 // load halo tile, run TEMPORAL_TILING_FACTOR steps with\n\
             \x20 // shrinking regions (time loop unrolled by LOOP_UNROLL_FACTOR_T),\n\
             \x20 // write core region ...\n\
             }}\n",
            c.block_size_x,
            c.block_size_y,
            c.tile_size_x,
            c.tile_size_y,
            c.temporal_tiling_factor,
            c.loop_unroll_factor_t,
            i64::from(c.sh_power),
            c.blocks_per_sm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_iii() {
        let s = HotspotKernel::default().build_space();
        assert_eq!(s.cardinality(), 22_200_000);
    }

    #[test]
    fn constrained_count_prunes_like_table_viii() {
        // Paper: 21 850 147 (restriction strings not printed). Our
        // physically-motivated set prunes more; see EXPERIMENTS.md.
        let s = HotspotKernel::default().build_space();
        let count = s.count_valid_factored();
        // Paper: 21 850 147 (98.42% of the 22.2M cardinality). Our
        // output-tile bound keeps 21 663 000 (97.58%) - within 0.9%.
        assert_eq!(count, 21_663_000);
    }

    #[test]
    fn temporal_tiling_reduces_launches() {
        let k = HotspotKernel::default();
        let base = [64, 4, 1, 1, 1, 1, 0, 0];
        let tiled = [64, 4, 1, 1, 10, 1, 0, 0];
        assert_eq!(k.launches(&base), 60);
        assert_eq!(k.launches(&tiled), 6);
    }

    #[test]
    fn temporal_tiling_cuts_global_traffic_per_step() {
        let k = HotspotKernel::default();
        let s = k.build_space();
        let base = [64, 4, 2, 2, 1, 1, 1, 0];
        let tiled = [64, 4, 2, 2, 8, 1, 1, 0];
        assert!(s.is_valid(&base), "base config must satisfy restrictions");
        assert!(s.is_valid(&tiled), "tiled config must satisfy restrictions");
        let traffic_per_step = |cfg: &[i64]| {
            let c = HotspotConfig::from_values(cfg);
            let m = k.model(cfg);
            m.gmem_bytes_per_thread * m.total_threads() / c.temporal_tiling_factor as f64
        };
        assert!(traffic_per_step(&tiled) < 0.5 * traffic_per_step(&base));
    }

    #[test]
    fn models_validate_across_space_sample() {
        let k = HotspotKernel::default();
        let s = k.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        let mut seen_valid = 0;
        for idx in (0..s.cardinality()).step_by(10_007) {
            s.decode_into(idx, &mut scratch);
            if s.is_valid(&scratch) {
                let m = k.model(&scratch);
                assert_eq!(m.validate(), Ok(()));
                seen_valid += 1;
            }
        }
        assert!(seen_valid > 50);
    }

    #[test]
    fn oversized_tiles_fail_on_turing_but_fit_on_ampere() {
        use crate::common::GpuBenchmark;
        use bat_core::{EvalFailure, TuningProblem};
        use std::sync::Arc;
        // (32*5 + 2*5) * (8*5 + 2*5) * 2 * 4 B = 68 KiB: over Turing's
        // 64 KiB block limit, under Ampere's 99 KiB.
        let cfg = [32, 8, 5, 5, 5, 1, 0, 0];
        let turing = GpuBenchmark::new(
            Arc::new(HotspotKernel::default()),
            bat_gpusim::GpuArch::rtx_2080_ti(),
        );
        let ampere = GpuBenchmark::new(
            Arc::new(HotspotKernel::default()),
            bat_gpusim::GpuArch::rtx_3090(),
        );
        assert!(turing.space().is_valid(&cfg));
        assert!(matches!(
            turing.evaluate_pure(&cfg),
            Err(EvalFailure::Launch(_))
        ));
        assert!(ampere.evaluate_pure(&cfg).is_ok());
    }

    #[test]
    fn launch_bounds_hint_caps_registers() {
        let k = HotspotKernel::default();
        let free = k.model(&[128, 2, 10, 10, 1, 1, 0, 0]);
        let hinted = k.model(&[128, 2, 10, 10, 1, 1, 0, 4]);
        assert!(hinted.regs_per_thread <= free.regs_per_thread);
        assert!(hinted.spill_bytes_per_thread >= free.spill_bytes_per_thread);
    }

    #[test]
    fn source_embeds_parameters() {
        let src = HotspotKernel::default().source(&[64, 4, 2, 2, 4, 2, 1, 2]);
        assert!(src.contains("#define TEMPORAL_TILING_FACTOR 4"));
        assert!(src.contains("__launch_bounds__"));
    }
}
