//! Functional executor for the Hotspot benchmark.
//!
//! [`hotspot_tiled`] reproduces the GPU algorithm exactly: blocks own an
//! output tile, load a halo-extended input region, advance the stencil
//! `temporal_tiling_factor` steps over shrinking regions in "shared memory",
//! and write back only the core. Verified against a step-by-step global
//! reference sweep.

use rayon::prelude::*;

use super::HotspotConfig;

/// Physical coefficients of the heat equation update (Rodinia-style).
#[derive(Debug, Clone, Copy)]
pub struct HotspotCoeffs {
    /// x-direction conductance.
    pub rx: f32,
    /// y-direction conductance.
    pub ry: f32,
    /// vertical conductance to ambient.
    pub rz: f32,
    /// time step over heat capacity.
    pub step_div_cap: f32,
    /// ambient temperature.
    pub amb: f32,
}

impl Default for HotspotCoeffs {
    fn default() -> Self {
        HotspotCoeffs {
            rx: 0.1,
            ry: 0.1,
            rz: 0.05,
            step_div_cap: 0.1,
            amb: 80.0,
        }
    }
}

#[inline]
fn clamp_idx(i: i64, n: usize) -> usize {
    i.clamp(0, n as i64 - 1) as usize
}

#[inline]
fn cell_update(
    c: &HotspotCoeffs,
    center: f32,
    north: f32,
    south: f32,
    east: f32,
    west: f32,
    power: f32,
) -> f32 {
    center
        + c.step_div_cap
            * (power
                + (north + south - 2.0 * center) * c.ry
                + (east + west - 2.0 * center) * c.rx
                + (c.amb - center) * c.rz)
}

/// One global stencil step (reference).
pub fn hotspot_step(
    temp: &[f32],
    power: &[f32],
    w: usize,
    h: usize,
    c: &HotspotCoeffs,
) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    out.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for x in 0..w {
            let at = |xx: i64, yy: i64| temp[clamp_idx(yy, h) * w + clamp_idx(xx, w)];
            row[x] = cell_update(
                c,
                at(x as i64, y as i64),
                at(x as i64, y as i64 - 1),
                at(x as i64, y as i64 + 1),
                at(x as i64 + 1, y as i64),
                at(x as i64 - 1, y as i64),
                power[y * w + x],
            );
        }
    });
    out
}

/// `steps` global stencil steps (reference).
pub fn hotspot_reference(
    temp: &[f32],
    power: &[f32],
    w: usize,
    h: usize,
    steps: usize,
    c: &HotspotCoeffs,
) -> Vec<f32> {
    let mut t = temp.to_vec();
    for _ in 0..steps {
        t = hotspot_step(&t, power, w, h, c);
    }
    t
}

/// Temporally-tiled execution with the decomposition implied by `cfg`.
///
/// `steps` must be a multiple of `temporal_tiling_factor` for exact
/// equivalence with the reference (the benchmark rounds up launches, which
/// would advance extra steps).
pub fn hotspot_tiled(
    cfg: &HotspotConfig,
    temp: &[f32],
    power: &[f32],
    w: usize,
    h: usize,
    steps: usize,
    coeffs: &HotspotCoeffs,
) -> Vec<f32> {
    let tt = cfg.temporal_tiling_factor as usize;
    assert_eq!(
        steps % tt,
        0,
        "steps must be a multiple of the tiling factor"
    );
    let ox = cfg.out_x() as usize;
    let oy = cfg.out_y() as usize;
    let (tw, th) = cfg.tile_dims();
    let (tw, th) = (tw as usize, th as usize);

    let mut current = temp.to_vec();
    let blocks_x = w.div_ceil(ox);

    for _launch in 0..steps / tt {
        let src = &current;
        let mut next = vec![0.0f32; w * h];
        // One rayon task per block row of output tiles.
        next.par_chunks_mut(w * oy)
            .enumerate()
            .for_each(|(by, out_rows)| {
                let rows_here = out_rows.len() / w;
                let y0 = by * oy;
                let mut t_now = vec![0.0f32; tw * th];
                let mut t_next = vec![0.0f32; tw * th];
                let mut p_sh = vec![0.0f32; tw * th];
                for bx in 0..blocks_x {
                    let x0 = bx * ox;
                    // Load halo-extended tile with clamped borders.
                    for ty in 0..th {
                        for tx in 0..tw {
                            let gx = x0 as i64 + tx as i64 - tt as i64;
                            let gy = y0 as i64 + ty as i64 - tt as i64;
                            t_now[ty * tw + tx] = src[clamp_idx(gy, h) * w + clamp_idx(gx, w)];
                            p_sh[ty * tw + tx] = power[clamp_idx(gy, h) * w + clamp_idx(gx, w)];
                        }
                    }
                    // tt steps over shrinking regions. Cells whose stencil
                    // would need data outside the tile use clamped *global*
                    // coordinates, matching what the reference does at the
                    // domain boundary.
                    for s in 0..tt {
                        let margin = s + 1;
                        for ty in margin..th - margin {
                            for tx in margin..tw - margin {
                                let gx = x0 as i64 + tx as i64 - tt as i64;
                                let gy = y0 as i64 + ty as i64 - tt as i64;
                                if gx < 0 || gy < 0 || gx >= w as i64 || gy >= h as i64 {
                                    continue;
                                }
                                // Clamped neighbour fetch *within the tile*,
                                // emulating domain-boundary clamping: a
                                // neighbour outside the domain clamps to the
                                // edge cell, which lives in the tile as long
                                // as the tile covers the domain edge.
                                let fetch = |dx: i64, dy: i64| -> f32 {
                                    let nx = (gx + dx).clamp(0, w as i64 - 1);
                                    let ny = (gy + dy).clamp(0, h as i64 - 1);
                                    let ltx = (nx - (x0 as i64 - tt as i64)) as usize;
                                    let lty = (ny - (y0 as i64 - tt as i64)) as usize;
                                    t_now[lty * tw + ltx]
                                };
                                t_next[ty * tw + tx] = cell_update(
                                    coeffs,
                                    t_now[ty * tw + tx],
                                    fetch(0, -1),
                                    fetch(0, 1),
                                    fetch(1, 0),
                                    fetch(-1, 0),
                                    p_sh[ty * tw + tx],
                                );
                            }
                        }
                        std::mem::swap(&mut t_now, &mut t_next);
                    }
                    // Write back the core region.
                    for oy_i in 0..rows_here.min(oy) {
                        let gy = y0 + oy_i;
                        for ox_i in 0..ox {
                            let gx = x0 + ox_i;
                            if gx >= w || gy >= h {
                                continue;
                            }
                            out_rows[oy_i * w + gx] = t_now[(oy_i + tt) * tw + ox_i + tt];
                        }
                    }
                }
            });
        current = next;
    }
    current
}

/// Deterministic pseudo-random field in [lo, hi).
pub fn random_field(w: usize, h: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..w * h)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lo + (hi - lo) * ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    fn check(cfg_values: &[i64], w: usize, h: usize, steps: usize) {
        let cfg = HotspotConfig::from_values(cfg_values);
        let temp = random_field(w, h, 70.0, 90.0, 5);
        let power = random_field(w, h, 0.0, 1.0, 6);
        let coeffs = HotspotCoeffs::default();
        let reference = hotspot_reference(&temp, &power, w, h, steps, &coeffs);
        let tiled = hotspot_tiled(&cfg, &temp, &power, w, h, steps, &coeffs);
        let diff = max_abs_diff(&reference, &tiled);
        assert!(diff < 1e-4, "config {cfg_values:?} diverged: {diff}");
    }

    #[test]
    fn no_temporal_tiling_matches_reference() {
        check(&[16, 2, 2, 2, 1, 1, 0, 0], 64, 64, 4);
    }

    #[test]
    fn temporal_tiling_2_matches_reference() {
        check(&[16, 2, 2, 2, 2, 1, 1, 0], 64, 64, 4);
    }

    #[test]
    fn temporal_tiling_4_matches_reference() {
        check(&[8, 4, 2, 2, 4, 2, 1, 2], 64, 64, 8);
    }

    #[test]
    fn non_square_blocks_match_reference() {
        check(&[32, 1, 1, 6, 3, 1, 0, 0], 96, 96, 6);
    }

    #[test]
    fn uniform_field_stays_uniform_without_power() {
        // With zero power and T == ambient, the field is a fixed point.
        let w = 32;
        let cfg = HotspotConfig::from_values(&[8, 4, 1, 1, 2, 1, 0, 0]);
        let coeffs = HotspotCoeffs::default();
        let temp = vec![coeffs.amb; w * w];
        let power = vec![0.0f32; w * w];
        let out = hotspot_tiled(&cfg, &temp, &power, w, w, 4, &coeffs);
        assert!(max_abs_diff(&out, &temp) < 1e-6);
    }

    #[test]
    fn hot_spot_diffuses_outward() {
        let w = 32;
        let coeffs = HotspotCoeffs::default();
        let temp = vec![coeffs.amb; w * w];
        let mut power = vec![0.0f32; w * w];
        power[(w / 2) * w + w / 2] = 10.0;
        let out = hotspot_reference(&temp, &power, w, w, 10, &coeffs);
        let center = out[(w / 2) * w + w / 2];
        let corner = out[0];
        assert!(center > corner);
        assert!(center > coeffs.amb);
    }
}
