//! Functional executor for the Convolution benchmark.
//!
//! [`convolution_tiled`] mirrors the GPU structure: blocks own an output
//! tile, stage the halo-extended input region in a "shared" buffer (with
//! optional row padding, which must not change results) and compute
//! `tile_size_x × tile_size_y` outputs per thread.

use rayon::prelude::*;

use super::ConvolutionConfig;

/// Naive reference convolution: output size `(w, h)`, input size
/// `(w + fw - 1, h + fh - 1)` (valid mode — no border handling needed).
pub fn convolution_reference(
    w: usize,
    h: usize,
    fw: usize,
    fh: usize,
    input: &[f32],
    filter: &[f32],
) -> Vec<f32> {
    let iw = w + fw - 1;
    assert_eq!(input.len(), iw * (h + fh - 1));
    assert_eq!(filter.len(), fw * fh);
    let mut out = vec![0.0f32; w * h];
    out.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, slot) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for j in 0..fh {
                for i in 0..fw {
                    acc += input[(y + j) * iw + x + i] * filter[j * fw + i];
                }
            }
            *slot = acc;
        }
    });
    out
}

/// Tiled execution with the decomposition implied by `cfg`.
pub fn convolution_tiled(
    cfg: &ConvolutionConfig,
    w: usize,
    h: usize,
    fw: usize,
    fh: usize,
    input: &[f32],
    filter: &[f32],
) -> Vec<f32> {
    let iw = w + fw - 1;
    let ox = cfg.out_x() as usize;
    let oy = cfg.out_y() as usize;
    let pad = usize::from(cfg.use_padding);
    let tile_w = ox + fw - 1 + pad;
    let tile_h = oy + fh - 1;
    let blocks_x = w.div_ceil(ox);

    let mut out = vec![0.0f32; w * h];
    out.par_chunks_mut(w * oy)
        .enumerate()
        .for_each(|(by, out_rows)| {
            let rows_here = out_rows.len() / w;
            let y0 = by * oy;
            let mut tile = vec![0.0f32; tile_w * tile_h];
            for bx in 0..blocks_x {
                let x0 = bx * ox;
                // Cooperative staging of the halo-extended tile. Out-of-image
                // region (right/bottom partial blocks) stages zeros that are
                // never read for in-image outputs.
                for ty in 0..tile_h {
                    for tx in 0..tile_w - pad {
                        let gx = x0 + tx;
                        let gy = y0 + ty;
                        tile[ty * tile_w + tx] = if gx < iw && gy < h + fh - 1 {
                            input[gy * iw + gx]
                        } else {
                            0.0
                        };
                    }
                }
                // Each thread (i,j) computes tile_size_x × tile_size_y
                // outputs strided by the block dimensions (as the GPU
                // kernel does).
                let bsx = cfg.block_size_x as usize;
                let bsy = cfg.block_size_y as usize;
                for tj in 0..bsy {
                    for ti in 0..bsx {
                        for wy in 0..cfg.tile_size_y as usize {
                            for wx in 0..cfg.tile_size_x as usize {
                                let lx = ti + wx * bsx;
                                let ly = tj + wy * bsy;
                                let gx = x0 + lx;
                                let gy = y0 + ly;
                                if gx >= w || gy >= h || ly >= rows_here.min(oy) {
                                    continue;
                                }
                                let mut acc = 0.0f32;
                                for j in 0..fh {
                                    for i in 0..fw {
                                        acc +=
                                            tile[(ly + j) * tile_w + lx + i] * filter[j * fw + i];
                                    }
                                }
                                out_rows[ly * w + gx] = acc;
                            }
                        }
                    }
                }
            }
        });
    out
}

/// Deterministic pseudo-random buffer in [-1, 1).
pub fn random_buffer(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 128;
    const H: usize = 96;
    const FW: usize = 9;
    const FH: usize = 9;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    fn check(cfg_values: &[i64]) {
        let cfg = ConvolutionConfig::from_values(cfg_values);
        let input = random_buffer((W + FW - 1) * (H + FH - 1), 21);
        let filter = random_buffer(FW * FH, 22);
        let reference = convolution_reference(W, H, FW, FH, &input, &filter);
        let tiled = convolution_tiled(&cfg, W, H, FW, FH, &input, &filter);
        let diff = max_abs_diff(&reference, &tiled);
        assert!(diff < 1e-4, "config {cfg_values:?} diverged: {diff}");
    }

    #[test]
    fn square_blocks_match_reference() {
        check(&[16, 8, 2, 2, 0, 0]);
    }

    #[test]
    fn padding_does_not_change_results() {
        check(&[48, 2, 2, 2, 1, 0]);
        check(&[48, 2, 2, 2, 0, 0]);
    }

    #[test]
    fn wide_flat_blocks_match_reference() {
        check(&[128, 1, 1, 8, 0, 1]);
    }

    #[test]
    fn single_thread_tiles_match_reference() {
        check(&[32, 1, 4, 6, 1, 1]);
    }

    #[test]
    fn non_dividing_tiles_handle_edges() {
        // 48*3=144 does not divide 128; partial blocks must be correct.
        check(&[48, 4, 3, 3, 0, 0]);
    }

    #[test]
    fn delta_filter_is_identity() {
        let mut filter = vec![0.0f32; FW * FH];
        filter[0] = 1.0; // top-left tap: output(x,y) = input(x,y)
        let input = random_buffer((W + FW - 1) * (H + FH - 1), 5);
        let cfg = ConvolutionConfig::from_values(&[16, 4, 2, 2, 0, 0]);
        let out = convolution_tiled(&cfg, W, H, FW, FH, &input, &filter);
        let iw = W + FW - 1;
        for y in (0..H).step_by(7) {
            for x in (0..W).step_by(11) {
                assert_eq!(out[y * W + x], input[y * iw + x]);
            }
        }
    }
}
