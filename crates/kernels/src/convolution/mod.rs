//! 2D Convolution with adaptive tiling (van Werkhoven et al.).
//!
//! Each output pixel is a weighted sum over a `Fw × Fh` window of the input
//! image. The kernel stages a halo-extended input tile in shared memory;
//! tunables (Table V) cover the block shape, per-thread output tile,
//! shared-memory padding (to dodge bank conflicts when `block_size_x` is
//! not a multiple of the bank count) and routing loads through the
//! read-only cache.

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, KernelSpec};

/// Slot order of the Convolution space (Table V order).
pub mod slots {
    /// Thread-block width.
    pub const BLOCK_SIZE_X: usize = 0;
    /// Thread-block height.
    pub const BLOCK_SIZE_Y: usize = 1;
    /// Output pixels per thread in x.
    pub const TILE_SIZE_X: usize = 2;
    /// Output pixels per thread in y.
    pub const TILE_SIZE_Y: usize = 3;
    /// Pad shared-memory rows by one element?
    pub const USE_PADDING: usize = 4;
    /// Load input through the read-only cache?
    pub const READ_ONLY: usize = 5;
}

/// Decoded Convolution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvolutionConfig {
    /// Thread-block width.
    pub block_size_x: i64,
    /// Thread-block height.
    pub block_size_y: i64,
    /// Outputs per thread in x.
    pub tile_size_x: i64,
    /// Outputs per thread in y.
    pub tile_size_y: i64,
    /// Shared-memory row padding.
    pub use_padding: bool,
    /// Read-only cache path.
    pub read_only: bool,
}

impl ConvolutionConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        ConvolutionConfig {
            block_size_x: v[slots::BLOCK_SIZE_X],
            block_size_y: v[slots::BLOCK_SIZE_Y],
            tile_size_x: v[slots::TILE_SIZE_X],
            tile_size_y: v[slots::TILE_SIZE_Y],
            use_padding: v[slots::USE_PADDING] != 0,
            read_only: v[slots::READ_ONLY] != 0,
        }
    }

    /// Output-tile width of one block.
    pub fn out_x(&self) -> i64 {
        self.block_size_x * self.tile_size_x
    }

    /// Output-tile height of one block.
    pub fn out_y(&self) -> i64 {
        self.block_size_y * self.tile_size_y
    }
}

/// The Convolution benchmark.
#[derive(Debug, Clone)]
pub struct ConvolutionKernel {
    /// Output image width.
    pub width: u64,
    /// Output image height.
    pub height: u64,
    /// Filter width.
    pub filter_w: u64,
    /// Filter height.
    pub filter_h: u64,
}

impl Default for ConvolutionKernel {
    fn default() -> Self {
        // The sizes used throughout the adaptive-tiling line of work.
        ConvolutionKernel {
            width: 4096,
            height: 4096,
            filter_w: 17,
            filter_h: 17,
        }
    }
}

impl ConvolutionKernel {
    /// Create with an explicit problem size.
    pub fn with_size(width: u64, height: u64, filter_w: u64, filter_h: u64) -> Self {
        ConvolutionKernel {
            width,
            height,
            filter_w,
            filter_h,
        }
    }

    fn halo_x(&self) -> i64 {
        self.filter_w as i64 - 1
    }

    fn halo_y(&self) -> i64 {
        self.filter_h as i64 - 1
    }
}

impl KernelSpec for ConvolutionKernel {
    fn name(&self) -> &'static str {
        "convolution"
    }

    fn build_space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new(
                "block_size_x",
                vec![1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 112, 128],
            ))
            .param(Param::new("block_size_y", vec![1, 2, 4, 8, 16, 32]))
            .param(Param::int_range("tile_size_x", 1, 8))
            .param(Param::int_range("tile_size_y", 1, 8))
            .param(Param::boolean("use_padding"))
            .param(Param::boolean("read_only"))
            // Between one warp and the hardware block limit.
            .restrict("32 <= block_size_x * block_size_y <= 1024")
            // Per-thread tiles beyond ~30 outputs exhaust registers.
            .restrict("tile_size_x * tile_size_y <= 30")
            .build()
            .expect("Convolution space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = ConvolutionConfig::from_values(config);
        let threads = (c.block_size_x * c.block_size_y) as u32;
        let (ox, oy) = (c.out_x(), c.out_y());
        let grid = ceil_div(self.width, ox as u64) * ceil_div(self.height, oy as u64);
        let mut m = KernelModel::new("convolution", grid, threads);

        let taps = (self.filter_w * self.filter_h) as f64;
        let outputs = (c.tile_size_x * c.tile_size_y) as f64;
        m.flops_per_thread = outputs * taps * 2.0;

        // Shared input tile (halo-extended), optionally padded by one
        // element per row to skew bank mapping.
        let tile_w = ox + self.halo_x() + i64::from(c.use_padding);
        let tile_h = oy + self.halo_y();
        m.smem_per_block = (tile_w * tile_h * 4) as u32;

        // Global traffic per block: the halo tile once + filter (cached) +
        // output writes.
        let in_bytes = (tile_w * tile_h * 4) as f64;
        let filter_bytes = taps * 4.0;
        let out_bytes = (ox * oy * 4) as f64;
        let total = in_bytes + filter_bytes + out_bytes;
        m.gmem_bytes_per_thread = total / f64::from(threads);
        // Overlapping halos between neighbouring blocks are L2-warm; the
        // filter is fully cached.
        m.l2_hit_rate = (0.35 * in_bytes + 1.0 * filter_bytes + 0.05 * out_bytes) / total;
        // Rows are loaded cooperatively by block_size_x threads.
        m.coalescing = ((c.block_size_x as f64) * 4.0 / 32.0).clamp(0.125, 1.0);
        m.gmem_transactions_per_thread = total / f64::from(threads) / 4.0;
        m.uses_readonly_cache = c.read_only;
        if c.read_only {
            // The read-only path also relieves L1/L2 pressure slightly.
            m.l2_hit_rate = (m.l2_hit_rate + 0.08).min(1.0);
        }

        // Shared traffic with register blocking (the adaptive-tiling win):
        // per filter row, a thread loads a row fragment of width
        // tile_size_x + Fw - 1 into registers and shifts it across its
        // tile_size_x outputs, so reads scale with the fragment width, not
        // with outputs × taps. tile_size_x = tile_size_y = 1 degenerates to
        // the naive taps-per-output count.
        let frag_reads = self.filter_h as f64
            * c.tile_size_y as f64
            * (c.tile_size_x as f64 + self.filter_w as f64 - 1.0);
        m.smem_accesses_per_thread = frag_reads + in_bytes / 4.0 / f64::from(threads);
        // Bank conflicts: when block_size_x is not a multiple of the bank
        // count and rows are unpadded, column accesses serialize. Padding
        // removes them. When block_size_x is a multiple of 32 the layout is
        // conflict-free either way (the paper calls this out explicitly).
        m.bank_conflict_factor = if c.block_size_x % 32 == 0 || c.use_padding {
            1.0
        } else {
            2.5
        };

        // Address arithmetic: one index update per fragment read; register
        // tiling amortizes it over the outputs sharing the fragment.
        m.int_ops_per_thread = frag_reads * 1.5 + taps;

        let natural_regs = (24.0 + outputs * 2.5) as u32;
        let (regs, spill) = apply_launch_bounds(natural_regs, threads, 0);
        m.regs_per_thread = regs;
        m.spill_bytes_per_thread = spill * taps / 8.0;

        m.ilp = outputs.clamp(1.0, 12.0);

        m
    }

    fn source(&self, config: &[i64]) -> String {
        let c = ConvolutionConfig::from_values(config);
        format!(
            "// Adaptive-tiling 2D convolution (BAT-rs generated)\n\
             #define BLOCK_SIZE_X {}\n#define BLOCK_SIZE_Y {}\n\
             #define TILE_SIZE_X {}\n#define TILE_SIZE_Y {}\n\
             #define USE_PADDING {}\n#define READ_ONLY {}\n\
             #define FILTER_W {}\n#define FILTER_H {}\n\
             \n\
             __constant__ float d_filter[FILTER_W * FILTER_H];\n\
             extern \"C\" __global__ void convolution_kernel(float* output,\n\
             \x20   const float* input, int iw, int ih) {{\n\
             \x20 __shared__ float tile[/* (BSY*TSY+FH-1) rows of\n\
             \x20     (BSX*TSX+FW-1+USE_PADDING) */];\n\
             \x20 // cooperative halo load (READ_ONLY ? __ldg : direct),\n\
             \x20 // TILE_SIZE_X x TILE_SIZE_Y accumulators per thread ...\n\
             }}\n",
            c.block_size_x,
            c.block_size_y,
            c.tile_size_x,
            c.tile_size_y,
            i64::from(c.use_padding),
            i64::from(c.read_only),
            self.filter_w,
            self.filter_h,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_v() {
        let s = ConvolutionKernel::default().build_space();
        assert_eq!(s.cardinality(), 18_432);
    }

    #[test]
    fn constrained_count_is_close_to_table_viii() {
        // Paper: 9 400. Our reconstruction: 47 (bx,by) pairs in [32,1024]
        // × 49 (tx,ty) pairs ≤ 30 × 4 = 9 212 (within 2%).
        let s = ConvolutionKernel::default().build_space();
        assert_eq!(s.count_valid(), 9_212);
        assert_eq!(s.count_valid_factored(), 9_212);
    }

    #[test]
    fn padding_fixes_bank_conflicts_only_off_multiples() {
        let k = ConvolutionKernel::default();
        // 48 is not a multiple of 32: padding matters.
        let unpadded = k.model(&[48, 1, 2, 2, 0, 0]);
        let padded = k.model(&[48, 1, 2, 2, 1, 0]);
        assert!(unpadded.bank_conflict_factor > padded.bank_conflict_factor);
        // 64 is a multiple of 32: padding is a no-op for conflicts.
        let m64 = k.model(&[64, 1, 2, 2, 0, 0]);
        assert_eq!(m64.bank_conflict_factor, 1.0);
    }

    #[test]
    fn bigger_tiles_cut_traffic_per_output() {
        let k = ConvolutionKernel::default();
        let per_output = |cfg: &[i64]| {
            let m = k.model(cfg);
            let c = ConvolutionConfig::from_values(cfg);
            m.gmem_bytes_per_thread / (c.tile_size_x * c.tile_size_y) as f64
        };
        assert!(per_output(&[32, 4, 4, 4, 0, 0]) < per_output(&[32, 4, 1, 1, 0, 0]));
    }

    #[test]
    fn flops_are_conserved() {
        let k = ConvolutionKernel::default();
        let total = |cfg: &[i64]| {
            let m = k.model(cfg);
            m.flops_per_thread * m.total_threads()
        };
        let exact = 4096.0 * 4096.0 * 17.0 * 17.0 * 2.0;
        for cfg in [
            [32, 4, 2, 2, 0, 1],
            [128, 8, 1, 1, 1, 0],
            [16, 2, 8, 3, 1, 1],
        ] {
            let t = total(&cfg);
            assert!((t - exact).abs() / exact < 0.05, "{cfg:?}: {t} vs {exact}");
        }
    }

    #[test]
    fn valid_models_validate_and_fit_smem_budget_on_ampere() {
        let k = ConvolutionKernel::default();
        let s = k.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        for idx in (0..s.cardinality()).step_by(11) {
            s.decode_into(idx, &mut scratch);
            if s.is_valid(&scratch) {
                let m = k.model(&scratch);
                assert_eq!(m.validate(), Ok(()), "{scratch:?}");
            }
        }
    }
}
