//! T1 — the benchmark-specification JSON format of the BAT ecosystem.
//!
//! BAT 2.0 defines each benchmark in a JSON document (the "T1" schema of
//! the autotuning-interchange family that T4 results belong to): a
//! `general` block naming the benchmark, a `configuration_space` block with
//! the tuning parameters and constraint expressions, and a
//! `kernel_specification` block describing the kernel itself. The shared
//! problem interface of the paper is exactly this document: tuners that can
//! read it can tune the benchmark.
//!
//! This module exports every built-in benchmark as a T1 document and can
//! construct a [`ConfigSpace`] *from* one — so custom benchmarks can be
//! defined in JSON without writing Rust:
//!
//! ```
//! use bat_kernels::t1::{space_from_t1, to_t1, T1Document};
//! use bat_kernels::{GemmKernel, KernelSpec};
//!
//! let doc = to_t1(&GemmKernel::default(), "CUDA");
//! let space = space_from_t1(&doc).unwrap();
//! assert_eq!(space.cardinality(), 82_944);
//!
//! let json = doc.to_json();
//! let parsed = T1Document::from_json(&json).unwrap();
//! assert_eq!(parsed, doc);
//! ```

use serde::{Deserialize, Serialize};

use bat_space::{ConfigSpace, Param, SpaceError};

use crate::common::KernelSpec;

/// Schema version written by this implementation.
pub const T1_SCHEMA_VERSION: &str = "1.0.0";

/// The `general` block: benchmark identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T1General {
    /// Benchmark name.
    pub benchmark_name: String,
    /// Schema version.
    pub schema_version: String,
}

/// One tuning parameter: a name plus its ordered value list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T1Parameter {
    /// Parameter name (usable in constraint expressions).
    pub name: String,
    /// Parameter type; this suite's parameters are all `"int"`.
    #[serde(rename = "type")]
    pub ty: String,
    /// Ordered candidate values.
    pub values: Vec<i64>,
}

/// The `configuration_space` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T1ConfigurationSpace {
    /// Tuning parameters, in space order.
    pub tuning_parameters: Vec<T1Parameter>,
    /// Constraint expression strings (Python-like syntax, as used by
    /// Kernel Tuner restriction strings).
    #[serde(default)]
    pub constraints: Vec<String>,
}

/// The `kernel_specification` block (descriptive; the simulator consumes
/// the in-process cost model rather than compiling this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T1KernelSpecification {
    /// Source language of the kernel.
    pub language: String,
    /// Kernel entry-point name.
    pub kernel_name: String,
}

/// A complete T1 benchmark-specification document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T1Document {
    /// Identity block.
    pub general: T1General,
    /// The tunable space.
    pub configuration_space: T1ConfigurationSpace,
    /// Kernel description.
    pub kernel_specification: T1KernelSpecification,
}

impl T1Document {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("T1 document serializes")
    }

    /// Parse a T1 document.
    pub fn from_json(s: &str) -> Result<T1Document, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Export a benchmark's specification as a T1 document.
pub fn to_t1(spec: &dyn KernelSpec, language: &str) -> T1Document {
    let space = spec.build_space();
    let tuning_parameters = space
        .params()
        .iter()
        .map(|p| T1Parameter {
            name: p.name.clone(),
            ty: "int".to_string(),
            values: p.values.clone(),
        })
        .collect();
    let constraints = space
        .restrictions()
        .iter()
        .map(|r| r.source.clone())
        .collect();
    T1Document {
        general: T1General {
            benchmark_name: spec.name().to_string(),
            schema_version: T1_SCHEMA_VERSION.to_string(),
        },
        configuration_space: T1ConfigurationSpace {
            tuning_parameters,
            constraints,
        },
        kernel_specification: T1KernelSpecification {
            language: language.to_string(),
            kernel_name: spec.name().to_string(),
        },
    }
}

/// Why a T1 document could not be turned into a [`ConfigSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum T1Error {
    /// A parameter declares an unsupported type.
    UnsupportedType {
        /// Parameter name.
        parameter: String,
        /// The declared type.
        ty: String,
    },
    /// A parameter has no values.
    EmptyValues(String),
    /// The space failed to build (duplicate names, bad constraint, …).
    Space(SpaceError),
}

impl std::fmt::Display for T1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            T1Error::UnsupportedType { parameter, ty } => {
                write!(f, "parameter {parameter:?} has unsupported type {ty:?}")
            }
            T1Error::EmptyValues(p) => write!(f, "parameter {p:?} has no values"),
            T1Error::Space(e) => write!(f, "space construction failed: {e}"),
        }
    }
}

impl std::error::Error for T1Error {}

/// Build a [`ConfigSpace`] from a T1 document's configuration-space block.
pub fn space_from_t1(doc: &T1Document) -> Result<ConfigSpace, T1Error> {
    let mut b = ConfigSpace::builder();
    for p in &doc.configuration_space.tuning_parameters {
        if p.ty != "int" {
            return Err(T1Error::UnsupportedType {
                parameter: p.name.clone(),
                ty: p.ty.clone(),
            });
        }
        if p.values.is_empty() {
            return Err(T1Error::EmptyValues(p.name.clone()));
        }
        b = b.param(Param::new(p.name.clone(), p.values.clone()));
    }
    for c in &doc.configuration_space.constraints {
        b = b.restrict(c);
    }
    b.build().map_err(T1Error::Space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{all_kernels, kernel_by_name};

    #[test]
    fn every_builtin_benchmark_round_trips_through_t1() {
        for spec in all_kernels() {
            let original = spec.build_space();
            let doc = to_t1(spec.as_ref(), "CUDA");
            let json = doc.to_json();
            let parsed = T1Document::from_json(&json).unwrap();
            assert_eq!(parsed, doc, "{}", spec.name());
            let rebuilt = space_from_t1(&parsed).unwrap();
            assert_eq!(
                rebuilt.cardinality(),
                original.cardinality(),
                "{}: cardinality changed through T1",
                spec.name()
            );
            assert_eq!(rebuilt.names(), original.names(), "{}", spec.name());
            assert_eq!(
                rebuilt.count_valid_factored(),
                original.count_valid_factored(),
                "{}: constrained count changed through T1",
                spec.name()
            );
        }
    }

    #[test]
    fn gemm_t1_contains_the_clblast_parameters() {
        let doc = to_t1(kernel_by_name("gemm").unwrap().as_ref(), "OpenCL");
        let names: Vec<&str> = doc
            .configuration_space
            .tuning_parameters
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            names,
            ["MWG", "NWG", "MDIMC", "NDIMC", "MDIMA", "NDIMB", "VWM", "VWN", "SA", "SB"]
        );
        assert!(!doc.configuration_space.constraints.is_empty());
        assert_eq!(doc.kernel_specification.language, "OpenCL");
    }

    #[test]
    fn custom_benchmark_from_json() {
        let json = r#"{
            "general": {"benchmark_name": "saxpy", "schema_version": "1.0.0"},
            "configuration_space": {
                "tuning_parameters": [
                    {"name": "block_size", "type": "int", "values": [64, 128, 256, 512]},
                    {"name": "work_per_thread", "type": "int", "values": [1, 2, 4]}
                ],
                "constraints": ["block_size * work_per_thread <= 1024"]
            },
            "kernel_specification": {"language": "CUDA", "kernel_name": "saxpy"}
        }"#;
        let doc = T1Document::from_json(json).unwrap();
        let space = space_from_t1(&doc).unwrap();
        assert_eq!(space.cardinality(), 12);
        assert_eq!(space.count_valid(), 11); // 512×4 = 2048 violates
        assert!(space.is_valid(&[512, 2]));
        assert!(!space.is_valid(&[512, 4]));
    }

    #[test]
    fn missing_constraints_block_defaults_to_empty() {
        let json = r#"{
            "general": {"benchmark_name": "x", "schema_version": "1.0.0"},
            "configuration_space": {
                "tuning_parameters": [
                    {"name": "a", "type": "int", "values": [1, 2]}
                ]
            },
            "kernel_specification": {"language": "CUDA", "kernel_name": "x"}
        }"#;
        let doc = T1Document::from_json(json).unwrap();
        assert!(doc.configuration_space.constraints.is_empty());
        assert_eq!(space_from_t1(&doc).unwrap().cardinality(), 2);
    }

    #[test]
    fn unsupported_type_is_rejected() {
        let doc = T1Document {
            general: T1General {
                benchmark_name: "x".into(),
                schema_version: T1_SCHEMA_VERSION.into(),
            },
            configuration_space: T1ConfigurationSpace {
                tuning_parameters: vec![T1Parameter {
                    name: "s".into(),
                    ty: "string".into(),
                    values: vec![],
                }],
                constraints: vec![],
            },
            kernel_specification: T1KernelSpecification {
                language: "CUDA".into(),
                kernel_name: "x".into(),
            },
        };
        assert!(matches!(
            space_from_t1(&doc),
            Err(T1Error::UnsupportedType { .. })
        ));
    }

    #[test]
    fn bad_constraint_surfaces_the_space_error() {
        let doc = T1Document {
            general: T1General {
                benchmark_name: "x".into(),
                schema_version: T1_SCHEMA_VERSION.into(),
            },
            configuration_space: T1ConfigurationSpace {
                tuning_parameters: vec![T1Parameter {
                    name: "a".into(),
                    ty: "int".into(),
                    values: vec![1, 2],
                }],
                constraints: vec!["a % == 0".into()],
            },
            kernel_specification: T1KernelSpecification {
                language: "CUDA".into(),
                kernel_name: "x".into(),
            },
        };
        assert!(matches!(space_from_t1(&doc), Err(T1Error::Space(_))));
    }
}
