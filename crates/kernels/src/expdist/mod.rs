//! Expdist: Bhattacharyya-style distance between localization clouds.
//!
//! Part of a template-free particle-fusion pipeline for localization
//! microscopy (Heydarian et al., Nature Methods 2018): registration quality
//! of two particles is the double sum over all localization pairs of a
//! Gaussian kernel weighted by localization uncertainty. Quadratic in the
//! number of localizations and heavily compute-bound.
//!
//! Tunables (Table VI): 2D block/tile shape, three shared-memory staging
//! strategies, per-axis inner-loop unrolling, and an alternative "column"
//! parallelization (`use_column`) that processes the m-cloud in
//! `n_y_blocks` strips to shrink the reduction tree.

pub mod exec;

use bat_gpusim::KernelModel;
use bat_space::{ConfigSpace, Param};

use crate::common::{apply_launch_bounds, ceil_div, KernelSpec};

/// Slot order of the Expdist space (Table VI order).
pub mod slots {
    /// Thread-block width.
    pub const BLOCK_SIZE_X: usize = 0;
    /// Thread-block height.
    pub const BLOCK_SIZE_Y: usize = 1;
    /// t-localizations per thread.
    pub const TILE_SIZE_X: usize = 2;
    /// m-localizations per thread.
    pub const TILE_SIZE_Y: usize = 3;
    /// Shared-memory staging strategy (0 = none, 1 = m-tile, 2 = both).
    pub const USE_SHARED_MEM: usize = 4;
    /// Unroll factor of the x inner loop.
    pub const LOOP_UNROLL_FACTOR_X: usize = 5;
    /// Unroll factor of the y inner loop.
    pub const LOOP_UNROLL_FACTOR_Y: usize = 6;
    /// Column-strip parallelization?
    pub const USE_COLUMN: usize = 7;
    /// Fixed y-block count in column mode.
    pub const N_Y_BLOCKS: usize = 8;
}

/// Decoded Expdist configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpdistConfig {
    /// Thread-block width.
    pub block_size_x: i64,
    /// Thread-block height.
    pub block_size_y: i64,
    /// t-points per thread.
    pub tile_size_x: i64,
    /// m-points per thread.
    pub tile_size_y: i64,
    /// Shared-memory strategy.
    pub use_shared_mem: i64,
    /// x unroll factor.
    pub unroll_x: i64,
    /// y unroll factor.
    pub unroll_y: i64,
    /// Column mode.
    pub use_column: bool,
    /// y blocks in column mode.
    pub n_y_blocks: i64,
}

impl ExpdistConfig {
    /// Decode from a space-ordered value slice.
    pub fn from_values(v: &[i64]) -> Self {
        ExpdistConfig {
            block_size_x: v[slots::BLOCK_SIZE_X],
            block_size_y: v[slots::BLOCK_SIZE_Y],
            tile_size_x: v[slots::TILE_SIZE_X],
            tile_size_y: v[slots::TILE_SIZE_Y],
            use_shared_mem: v[slots::USE_SHARED_MEM],
            unroll_x: v[slots::LOOP_UNROLL_FACTOR_X],
            unroll_y: v[slots::LOOP_UNROLL_FACTOR_Y],
            use_column: v[slots::USE_COLUMN] != 0,
            n_y_blocks: v[slots::N_Y_BLOCKS],
        }
    }
}

/// FLOPs per localization pair (2D distance, uncertainty scaling, expf).
pub const FLOPS_PER_PAIR: f64 = 26.0;

/// The Expdist benchmark.
#[derive(Debug, Clone)]
pub struct ExpdistKernel {
    /// Localizations in the t (template) particle.
    pub kt: u64,
    /// Localizations in the m (moving) particle.
    pub km: u64,
}

impl Default for ExpdistKernel {
    fn default() -> Self {
        ExpdistKernel { kt: 2048, km: 2048 }
    }
}

impl ExpdistKernel {
    /// Create with explicit localization counts.
    pub fn with_size(kt: u64, km: u64) -> Self {
        ExpdistKernel { kt, km }
    }
}

impl KernelSpec for ExpdistKernel {
    fn name(&self) -> &'static str {
        "expdist"
    }

    fn build_space(&self) -> ConfigSpace {
        let nyb: Vec<i64> = (0..=10).map(|e| 1i64 << e).collect(); // 1..1024
        ConfigSpace::builder()
            .param(Param::pow2("block_size_x", 32, 1024))
            .param(Param::pow2("block_size_y", 1, 32))
            .param(Param::int_range("tile_size_x", 1, 8))
            .param(Param::int_range("tile_size_y", 1, 8))
            .param(Param::new("use_shared_mem", vec![0, 1, 2]))
            .param(Param::int_range("loop_unroll_factor_x", 1, 8))
            .param(Param::int_range("loop_unroll_factor_y", 1, 8))
            .param(Param::boolean("use_column"))
            .param(Param::new("n_y_blocks", nyb))
            // Hardware block limit.
            .restrict("block_size_x * block_size_y <= 1024")
            // Partial unrolling must evenly divide the per-thread tile.
            .restrict("tile_size_x % loop_unroll_factor_x == 0")
            .restrict("tile_size_y % loop_unroll_factor_y == 0")
            // n_y_blocks only exists in the column variant.
            .restrict("use_column == 1 or n_y_blocks == 1")
            .build()
            .expect("Expdist space is statically well-formed")
    }

    fn model(&self, config: &[i64]) -> KernelModel {
        let c = ExpdistConfig::from_values(config);
        let threads = (c.block_size_x * c.block_size_y) as u32;
        let x_blocks = ceil_div(self.kt, (c.block_size_x * c.tile_size_x) as u64);
        let y_span = (c.block_size_y * c.tile_size_y) as u64; // m-points per block pass
        let y_blocks = if c.use_column {
            c.n_y_blocks as u64
        } else {
            ceil_div(self.km, y_span)
        };
        let grid = x_blocks * y_blocks;
        let mut m = KernelModel::new("expdist", grid, threads.max(1));

        // In column mode each block strides over its share of the m-cloud.
        let j_iters = if c.use_column {
            ceil_div(ceil_div(self.km, c.n_y_blocks as u64), y_span).max(1)
        } else {
            1
        };
        let pairs_per_thread = (c.tile_size_x * c.tile_size_y) as f64 * j_iters as f64;
        m.flops_per_thread = pairs_per_thread * FLOPS_PER_PAIR;

        // Localizations are (x, y, σ²) records; model 16 B aligned.
        let point_bytes = 16.0;
        let t_tile = (c.block_size_x * c.tile_size_x) as f64 * point_bytes;
        let m_tile = y_span as f64 * point_bytes * j_iters as f64;
        let (smem, m_l2, t_l2) = match c.use_shared_mem {
            0 => (0.0, 0.90, 0.90), // direct broadcast reads, cache-served
            1 => ((y_span as f64) * point_bytes, 0.20, 0.90),
            2 => ((y_span as f64) * point_bytes + t_tile, 0.20, 0.20),
            _ => unreachable!("use_shared_mem out of range"),
        };
        m.smem_per_block = smem as u32;
        if c.use_shared_mem >= 1 {
            // Each pair reads one staged m-point (4 words).
            m.smem_accesses_per_thread = pairs_per_thread * 4.0;
        }
        if c.use_shared_mem == 2 {
            m.smem_accesses_per_thread += pairs_per_thread * 4.0;
        }

        // Partial-sum reduction: block tree in shared memory + one global
        // scratch write per block (second-stage reduction kernel is folded
        // into launch overhead).
        m.smem_accesses_per_thread += (f64::from(threads).log2().max(1.0)) * 2.0;
        let reduction_bytes = 8.0; // one double per block
        let total_bytes = t_tile + m_tile + reduction_bytes;
        m.gmem_bytes_per_thread = total_bytes / f64::from(threads);
        m.l2_hit_rate = (t_tile * t_l2 + m_tile * m_l2) / total_bytes;
        m.coalescing = 1.0; // SoA point records, cooperative loads
        m.gmem_transactions_per_thread = total_bytes / f64::from(threads) / 16.0;

        // expf maps to SFU ops: fewer per-cycle than FMA; fold into a mild
        // divergence-style penalty.
        m.divergence_factor = 1.10;

        let u = (c.unroll_x * c.unroll_y) as f64;
        m.int_ops_per_thread = pairs_per_thread * 2.0 / u.max(1.0) + j_iters as f64 * 8.0;

        let natural_regs = (26.0
            + (c.tile_size_x * c.tile_size_y) as f64 * 2.0
            + 2.0 * (c.unroll_x + c.unroll_y) as f64) as u32;
        let (regs, spill) = apply_launch_bounds(natural_regs, threads, 0);
        m.regs_per_thread = regs;
        m.spill_bytes_per_thread = spill * j_iters as f64;

        m.ilp = ((c.tile_size_x * c.tile_size_y) as f64 * (1.0 + u / 16.0)).clamp(1.0, 14.0);

        m
    }

    fn source(&self, config: &[i64]) -> String {
        let c = ExpdistConfig::from_values(config);
        format!(
            "// Expdist registration-quality kernel (BAT-rs generated)\n\
             #define BLOCK_SIZE_X {}\n#define BLOCK_SIZE_Y {}\n\
             #define TILE_SIZE_X {}\n#define TILE_SIZE_Y {}\n\
             #define USE_SHARED_MEM {}\n#define LOOP_UNROLL_FACTOR_X {}\n\
             #define LOOP_UNROLL_FACTOR_Y {}\n#define USE_COLUMN {}\n\
             #define N_Y_BLOCKS {}\n\
             \n\
             extern \"C\" __global__ void ExpDist(const float* A, const float* B,\n\
             \x20   int m, int n, const float* scale_A, const float* scale_B,\n\
             \x20   double* d_cost) {{\n\
             \x20 // double sum over pairs of expf(-dist2 / (sA + sB));\n\
             \x20 // USE_COLUMN strips the B cloud over N_Y_BLOCKS blocks ...\n\
             }}\n",
            c.block_size_x,
            c.block_size_y,
            c.tile_size_x,
            c.tile_size_y,
            c.use_shared_mem,
            c.unroll_x,
            c.unroll_y,
            i64::from(c.use_column),
            c.n_y_blocks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_table_vi() {
        let s = ExpdistKernel::default().build_space();
        assert_eq!(s.cardinality(), 9_732_096);
    }

    #[test]
    fn constrained_count_is_reported() {
        // Paper: 540 000 (restrictions not printed). Our reconstruction:
        // 21 (bx,by) × 20 (tx,ux) × 20 (ty,uy) × 3 × 12 (col,nyb) = 302 400.
        let s = ExpdistKernel::default().build_space();
        assert_eq!(s.count_valid_factored(), 302_400);
    }

    #[test]
    fn pair_work_is_conserved_in_row_mode() {
        let k = ExpdistKernel::default();
        let total_pairs = |cfg: &[i64]| {
            let m = k.model(cfg);
            m.flops_per_thread * m.total_threads() / FLOPS_PER_PAIR
        };
        let exact = 2048.0 * 2048.0;
        for cfg in [
            [32, 1, 1, 1, 0, 1, 1, 0, 1],
            [64, 4, 2, 2, 1, 2, 2, 0, 1],
            [128, 8, 4, 1, 2, 4, 1, 0, 1],
        ] {
            let t = total_pairs(&cfg);
            assert!((t - exact).abs() / exact < 0.05, "{cfg:?}: {t}");
        }
    }

    #[test]
    fn column_mode_shrinks_grid() {
        let k = ExpdistKernel::default();
        let row = k.model(&[64, 4, 2, 2, 1, 1, 1, 0, 1]);
        let col = k.model(&[64, 4, 2, 2, 1, 1, 1, 1, 4]);
        assert!(col.grid_blocks < row.grid_blocks);
        // Same total pair work regardless.
        let pairs = |m: &bat_gpusim::KernelModel| m.flops_per_thread * m.total_threads();
        let rel = (pairs(&col) - pairs(&row)).abs() / pairs(&row);
        assert!(rel < 0.05, "pair work drifted by {rel}");
    }

    #[test]
    fn staging_moves_traffic_from_l2_to_smem() {
        let k = ExpdistKernel::default();
        let direct = k.model(&[128, 2, 2, 2, 0, 1, 1, 0, 1]);
        let staged = k.model(&[128, 2, 2, 2, 1, 1, 1, 0, 1]);
        assert_eq!(direct.smem_per_block, 0);
        assert!(staged.smem_per_block > 0);
        assert!(staged.smem_accesses_per_thread > direct.smem_accesses_per_thread);
    }

    #[test]
    fn models_validate_across_space_sample() {
        let k = ExpdistKernel::default();
        let s = k.build_space();
        let mut scratch = vec![0i64; s.num_params()];
        let mut n = 0;
        for idx in (0..s.cardinality()).step_by(4_099) {
            s.decode_into(idx, &mut scratch);
            if s.is_valid(&scratch) {
                assert_eq!(k.model(&scratch).validate(), Ok(()), "{scratch:?}");
                n += 1;
            }
        }
        assert!(n > 20);
    }
}
