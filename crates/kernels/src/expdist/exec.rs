//! Functional executor for the Expdist benchmark.
//!
//! Computes the registration cost
//! `D = Σᵢ Σⱼ exp(−‖t_i − m_j‖² / (σt_i² + σm_j²))`
//! with the block decomposition implied by a configuration (row mode or
//! column-strip mode with `n_y_blocks` strips) and per-block partial sums,
//! mirroring the GPU reduction structure.

use rayon::prelude::*;

use super::ExpdistConfig;

/// A localization: position plus squared uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Localization {
    /// x position.
    pub x: f32,
    /// y position.
    pub y: f32,
    /// squared uncertainty σ².
    pub sigma_sq: f32,
}

/// Deterministic pseudo-random particle of `n` localizations.
pub fn random_particle(n: usize, seed: u64) -> Vec<Localization> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Localization {
            x: (next() * 2.0 - 1.0) as f32,
            y: (next() * 2.0 - 1.0) as f32,
            sigma_sq: (0.01 + 0.05 * next()) as f32,
        })
        .collect()
}

#[inline]
fn pair_cost(t: Localization, m: Localization) -> f64 {
    let dx = f64::from(t.x) - f64::from(m.x);
    let dy = f64::from(t.y) - f64::from(m.y);
    let denom = f64::from(t.sigma_sq) + f64::from(m.sigma_sq);
    (-(dx * dx + dy * dy) / denom).exp()
}

/// Naive reference cost.
pub fn expdist_reference(t: &[Localization], m: &[Localization]) -> f64 {
    t.par_iter()
        .map(|&ti| m.iter().map(|&mj| pair_cost(ti, mj)).sum::<f64>())
        .sum()
}

/// Cost with the decomposition implied by `cfg`: per-block partial sums
/// accumulated exactly as the GPU grid would produce them.
pub fn expdist_tiled(cfg: &ExpdistConfig, t: &[Localization], m: &[Localization]) -> f64 {
    let x_span = (cfg.block_size_x * cfg.tile_size_x) as usize;
    let y_span = (cfg.block_size_y * cfg.tile_size_y) as usize;
    let x_blocks = t.len().div_ceil(x_span);
    let y_blocks = if cfg.use_column {
        cfg.n_y_blocks as usize
    } else {
        m.len().div_ceil(y_span)
    };

    let block_ids: Vec<(usize, usize)> = (0..x_blocks)
        .flat_map(|bx| (0..y_blocks).map(move |by| (bx, by)))
        .collect();

    block_ids
        .par_iter()
        .map(|&(bx, by)| {
            let t_lo = bx * x_span;
            let t_hi = (t_lo + x_span).min(t.len());
            let mut partial = 0.0f64;
            if cfg.use_column {
                // Strip by: m-indices by, by + nyb, ... in y_span chunks.
                let strip = cfg.n_y_blocks as usize;
                let mut j0 = by * y_span;
                while j0 < m.len() {
                    let j_hi = (j0 + y_span).min(m.len());
                    for ti in &t[t_lo..t_hi] {
                        for mj in &m[j0..j_hi] {
                            partial += pair_cost(*ti, *mj);
                        }
                    }
                    j0 += strip * y_span;
                }
            } else {
                let j0 = by * y_span;
                let j_hi = (j0 + y_span).min(m.len());
                for ti in &t[t_lo..t_hi] {
                    for mj in &m[j0..j_hi] {
                        partial += pair_cost(*ti, *mj);
                    }
                }
            }
            partial
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(cfg_values: &[i64], kt: usize, km: usize) {
        let cfg = ExpdistConfig::from_values(cfg_values);
        let t = random_particle(kt, 31);
        let m = random_particle(km, 32);
        let reference = expdist_reference(&t, &m);
        let tiled = expdist_tiled(&cfg, &t, &m);
        let rel = (reference - tiled).abs() / reference.abs();
        assert!(rel < 1e-9, "config {cfg_values:?} diverged: {rel}");
    }

    #[test]
    fn row_mode_matches_reference() {
        check(&[32, 2, 2, 2, 0, 1, 1, 0, 1], 256, 256);
    }

    #[test]
    fn column_mode_matches_reference() {
        check(&[32, 2, 2, 2, 1, 2, 2, 1, 4], 256, 256);
    }

    #[test]
    fn column_mode_single_strip_matches_reference() {
        check(&[64, 1, 1, 4, 2, 1, 2, 1, 1], 128, 512);
    }

    #[test]
    fn uneven_sizes_are_handled() {
        check(&[32, 2, 3, 2, 0, 3, 1, 0, 1], 250, 190);
        check(&[32, 4, 2, 3, 1, 2, 3, 1, 8], 250, 190);
    }

    #[test]
    fn identical_points_give_pair_count() {
        // All points identical: every pair contributes exp(0) = 1.
        let p = Localization {
            x: 0.5,
            y: -0.25,
            sigma_sq: 0.1,
        };
        let t = vec![p; 64];
        let m = vec![p; 48];
        let cfg = ExpdistConfig::from_values(&[32, 2, 1, 1, 0, 1, 1, 0, 1]);
        let d = expdist_tiled(&cfg, &t, &m);
        assert!((d - (64.0 * 48.0)).abs() < 1e-9);
    }

    #[test]
    fn distant_clouds_have_near_zero_cost() {
        let mut t = random_particle(64, 7);
        for p in &mut t {
            p.x += 100.0;
        }
        let m = random_particle(64, 8);
        assert!(expdist_reference(&t, &m) < 1e-12);
    }
}
