//! Structured span tracing: the `bat/trace/v1` JSONL schema.
//!
//! A trace is one JSON document per line. The first line is the meta
//! record — the only place wall-clock time appears:
//!
//! ```json
//! {"v":"bat/trace/v1","meta":{"epoch_unix_ms":1754600000000}}
//! ```
//!
//! Every following line is one completed span:
//!
//! ```json
//! {"v":"bat/trace/v1","span":"trial","id":5,"parent":1,"t_us":120,"dur_us":84321,"tuner":"pso","seed":3}
//! ```
//!
//! `id` is process-unique and nonzero; `parent` is the enclosing span's id
//! or `0` for roots; `t_us`/`dur_us` are microseconds since the epoch
//! instant and span duration, both monotonic. Remaining keys are
//! span-specific attributes (strings, integers, floats). Spans are written
//! on drop, so a parent appears *after* its children — consumers sort by
//! `t_us` or rebuild the tree from `parent` links.
//!
//! Parent linking is a per-thread span stack: a [`Span`] created while
//! another is live on the same thread nests under it. Work that fans out
//! to pool workers crosses threads, so the fan-out site captures
//! [`current`] and passes it to [`span_at`] explicitly.
//!
//! The sink is process-global and installed at most once ([`install`]);
//! when no sink is installed — or tracing is [`disable`]d, or the crate is
//! built with `no-obs` — span construction is a single relaxed atomic load
//! and spans are inert. Writes are buffered: call [`flush`] before reading
//! the file.

/// The trace-schema identifier every record carries.
pub const TRACE_SCHEMA: &str = "bat/trace/v1";

#[cfg(not(feature = "no-obs"))]
mod imp {
    use super::TRACE_SCHEMA;
    use std::cell::RefCell;
    use std::fmt::Write as _;
    use std::fs::File;
    use std::io::{self, BufWriter, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    struct Sink {
        file: Mutex<BufWriter<File>>,
        epoch: Instant,
    }

    static SINK: OnceLock<Sink> = OnceLock::new();
    static ENABLED: AtomicBool = AtomicBool::new(false);
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// Install the process trace sink, writing to `path`, and enable
    /// tracing. At most one sink per process; a second install fails.
    pub fn install(path: &Path) -> io::Result<()> {
        if SINK.get().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "trace sink already installed",
            ));
        }
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        let epoch_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        writeln!(
            w,
            "{{\"v\":\"{TRACE_SCHEMA}\",\"meta\":{{\"epoch_unix_ms\":{epoch_unix_ms}}}}}"
        )?;
        let sink = Sink {
            file: Mutex::new(w),
            epoch: Instant::now(),
        };
        SINK.set(sink).map_err(|_| {
            io::Error::new(io::ErrorKind::AlreadyExists, "trace sink already installed")
        })?;
        ENABLED.store(true, Ordering::Release);
        Ok(())
    }

    /// True when a sink is installed and tracing is enabled — the hot-path
    /// gate, one atomic load.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Stop emitting spans (the sink stays installed) and flush.
    pub fn disable() {
        ENABLED.store(false, Ordering::Release);
        flush();
    }

    /// Resume emitting spans on the installed sink. No-op without a sink.
    pub fn enable() {
        if SINK.get().is_some() {
            ENABLED.store(true, Ordering::Release);
        }
    }

    /// Flush buffered trace output to the file.
    pub fn flush() {
        if let Some(sink) = SINK.get() {
            let _ = sink.file.lock().expect("trace sink poisoned").flush();
        }
    }

    /// The innermost live span id on this thread (`0` when none) — capture
    /// before fanning work out to other threads, feed to [`span_at`].
    pub fn current() -> u64 {
        STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    struct SpanInner {
        kind: &'static str,
        id: u64,
        parent: u64,
        start: Instant,
        attrs: String,
    }

    /// A live span: records attributes, writes one JSONL record on drop.
    /// Inert (zero allocation, no I/O) while tracing is disabled.
    pub struct Span(Option<SpanInner>);

    /// Escape `v` as JSON string contents into `out`.
    fn escape_into(out: &mut String, v: &str) {
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    }

    fn new_span(kind: &'static str, parent: u64) -> Span {
        if !enabled() {
            return Span(None);
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().push(id));
        Span(Some(SpanInner {
            kind,
            id,
            parent,
            start: Instant::now(),
            attrs: String::new(),
        }))
    }

    /// Open a span nested under this thread's innermost live span.
    pub fn span(kind: &'static str) -> Span {
        let parent = if enabled() { current() } else { 0 };
        new_span(kind, parent)
    }

    /// Open a span under an explicit parent id (use across threads, where
    /// the per-thread stack cannot see the logical parent).
    pub fn span_at(kind: &'static str, parent: u64) -> Span {
        new_span(kind, parent)
    }

    impl Span {
        /// This span's id (`0` when inert) — pass to [`span_at`] from
        /// other threads.
        pub fn id(&self) -> u64 {
            self.0.as_ref().map_or(0, |s| s.id)
        }

        /// Record a string attribute.
        pub fn record_str(&mut self, key: &str, value: &str) {
            if let Some(s) = self.0.as_mut() {
                s.attrs.push_str(",\"");
                escape_into(&mut s.attrs, key);
                s.attrs.push_str("\":\"");
                escape_into(&mut s.attrs, value);
                s.attrs.push('"');
            }
        }

        /// Record an integer attribute.
        pub fn record_u64(&mut self, key: &str, value: u64) {
            if let Some(s) = self.0.as_mut() {
                s.attrs.push_str(",\"");
                escape_into(&mut s.attrs, key);
                let _ = write!(s.attrs, "\":{value}");
            }
        }

        /// Record a float attribute (non-finite values become `null`).
        pub fn record_f64(&mut self, key: &str, value: f64) {
            if let Some(s) = self.0.as_mut() {
                s.attrs.push_str(",\"");
                escape_into(&mut s.attrs, key);
                if value.is_finite() {
                    let _ = write!(s.attrs, "\":{value}");
                } else {
                    s.attrs.push_str("\":null");
                }
            }
        }

        /// Builder-style [`Span::record_str`].
        pub fn str_attr(mut self, key: &str, value: &str) -> Self {
            self.record_str(key, value);
            self
        }

        /// Builder-style [`Span::record_u64`].
        pub fn u64_attr(mut self, key: &str, value: u64) -> Self {
            self.record_u64(key, value);
            self
        }

        /// Builder-style [`Span::record_f64`].
        pub fn f64_attr(mut self, key: &str, value: f64) -> Self {
            self.record_f64(key, value);
            self
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(inner) = self.0.take() else { return };
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&inner.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (spans moved across an await-like
                    // boundary we don't have, or leaked): remove by value.
                    stack.retain(|&id| id != inner.id);
                }
            });
            let Some(sink) = SINK.get() else { return };
            let t_us = inner
                .start
                .saturating_duration_since(sink.epoch)
                .as_micros();
            let dur_us = inner.start.elapsed().as_micros();
            let mut line = String::with_capacity(96 + inner.attrs.len());
            let _ = write!(
                line,
                "{{\"v\":\"{TRACE_SCHEMA}\",\"span\":\"{}\",\"id\":{},\"parent\":{},\"t_us\":{},\"dur_us\":{}{}}}",
                inner.kind, inner.id, inner.parent, t_us, dur_us, inner.attrs
            );
            line.push('\n');
            let mut w = sink.file.lock().expect("trace sink poisoned");
            let _ = w.write_all(line.as_bytes());
        }
    }
}

#[cfg(feature = "no-obs")]
mod imp {
    use std::io;
    use std::path::Path;

    /// `no-obs`: installing succeeds but records nothing; spans are
    /// zero-sized and inert.
    pub fn install(_path: &Path) -> io::Result<()> {
        Ok(())
    }

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    pub fn disable() {}
    pub fn enable() {}
    pub fn flush() {}

    #[inline(always)]
    pub fn current() -> u64 {
        0
    }

    pub struct Span;

    #[inline(always)]
    pub fn span(_kind: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn span_at(_kind: &'static str, _parent: u64) -> Span {
        Span
    }

    impl Span {
        #[inline(always)]
        pub fn id(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn record_str(&mut self, _key: &str, _value: &str) {}
        #[inline(always)]
        pub fn record_u64(&mut self, _key: &str, _value: u64) {}
        #[inline(always)]
        pub fn record_f64(&mut self, _key: &str, _value: f64) {}
        #[inline(always)]
        pub fn str_attr(self, _key: &str, _value: &str) -> Self {
            self
        }
        #[inline(always)]
        pub fn u64_attr(self, _key: &str, _value: u64) -> Self {
            self
        }
        #[inline(always)]
        pub fn f64_attr(self, _key: &str, _value: f64) -> Self {
            self
        }
    }
}

pub use imp::{current, disable, enable, enabled, flush, install, span, span_at, Span};

#[cfg(all(test, not(feature = "no-obs")))]
mod tests {
    use super::*;

    // The sink is process-global, so all trace tests share one file and
    // run under one test lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn trace_path() -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bat-obs-trace-test-{}.jsonl", std::process::id()))
    }

    fn install_once() -> std::path::PathBuf {
        let path = trace_path();
        match install(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => enable(),
            Err(e) => panic!("install: {e}"),
        }
        path
    }

    #[test]
    fn spans_nest_on_one_thread_and_records_parse() {
        let _g = LOCK.lock().unwrap();
        let path = install_once();
        let outer_id;
        {
            let mut outer = span("outer");
            outer.record_str("name", "he said \"hi\"\n");
            outer_id = outer.id();
            assert_ne!(outer_id, 0);
            assert_eq!(current(), outer_id);
            {
                let inner = span("inner").u64_attr("k", 7).f64_attr("x", 1.5);
                assert_ne!(inner.id(), outer_id);
            }
            assert_eq!(current(), outer_id);
        }
        assert_eq!(current(), 0);
        flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"meta\""));
        let inner_line = lines.iter().find(|l| l.contains("\"inner\"")).unwrap();
        assert!(inner_line.contains(&format!("\"parent\":{outer_id}")));
        assert!(inner_line.contains("\"k\":7"));
        assert!(inner_line.contains("\"x\":1.5"));
        let outer_line = lines.iter().find(|l| l.contains("\"outer\"")).unwrap();
        assert!(outer_line.contains("\\\"hi\\\"\\n"));
        assert!(outer_line.contains("\"parent\":0"));
        for l in &lines {
            assert!(l.starts_with("{\"v\":\"bat/trace/v1\""), "{l}");
            assert!(l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = LOCK.lock().unwrap();
        let path = install_once();
        disable();
        let before = std::fs::read_to_string(&path).unwrap().len();
        {
            let mut s = span("ghost");
            assert_eq!(s.id(), 0);
            s.record_u64("k", 1);
        }
        flush();
        let after = std::fs::read_to_string(&path).unwrap().len();
        assert_eq!(before, after);
        enable();
    }

    #[test]
    fn cross_thread_parents_via_span_at() {
        let _g = LOCK.lock().unwrap();
        let path = install_once();
        let root = span("root-xt");
        let parent = root.id();
        std::thread::spawn(move || {
            let _child = span_at("child-xt", parent);
        })
        .join()
        .unwrap();
        drop(root);
        flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let child = text.lines().find(|l| l.contains("child-xt")).unwrap();
        assert!(child.contains(&format!("\"parent\":{parent}")));
    }
}
