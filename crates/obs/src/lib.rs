//! Observability for the tuning stack: metrics and trace spans.
//!
//! The suite's hard rule is that campaign artifacts are byte-identical
//! however they were produced — across thread counts, endpoints, resume,
//! and now across observability on, off, or compiled out. Everything in
//! this crate is therefore strictly *out-of-band*: counters accumulate in
//! process-global atomics, spans stream to a side-channel JSONL file, and
//! nothing here ever feeds back into a measurement or an artifact.
//!
//! Two halves:
//!
//! * [`metrics`] — a process-wide registry of lock-free counters, gauges
//!   and log-scale histograms, cheap enough for the evaluator hot path
//!   (relaxed `fetch_add` on per-thread shards, merged on read), rendered
//!   as Prometheus-style text exposition for `bat serve --metrics`.
//! * [`trace`] — structured span tracing (campaign → trial → step → batch
//!   → decode/measure), emitted as schema-versioned `bat/trace/v1` JSONL
//!   behind `--trace PATH`. Timestamps are monotonic microseconds relative
//!   to the sink's install instant; the single wall-clock anchor lives in
//!   the file's meta line.
//!
//! The crate depends on nothing but `std`, so every other crate in the
//! workspace — including the vendored compat crates — may depend on it
//! without cycles. Building with the `no-obs` feature compiles both halves
//! down to no-ops.

pub mod metrics;
pub mod trace;
