//! The process-wide metrics registry.
//!
//! Metrics are registered once by name and live for the life of the
//! process ([`counter`], [`gauge`], [`histogram`] leak one allocation per
//! distinct name and return `&'static` handles — call sites cache them in
//! a `OnceLock` so the registry lock is off the hot path). Updates are
//! relaxed atomics; counters additionally shard across cache-line-padded
//! slots keyed by thread so concurrent workers never contend on one line.
//! Reads merge the shards — totals are exact once writers quiesce, and
//! monotone snapshots while they run.
//!
//! Histograms bucket by `floor(log2(v)) + 1` (value 0 in bucket 0), so 32
//! buckets cover the full microsecond range from "sub-µs" to "about an
//! hour" — coarse, but queue waits and block timings vary over orders of
//! magnitude and a log scale is the honest shape for that.
//!
//! [`render_prometheus`] produces the standard text exposition: `# HELP` /
//! `# TYPE` headers, cumulative `_bucket{le="..."}` lines for histograms.
//! With the `no-obs` feature every type here is zero-sized, every method a
//! no-op, and the exposition is a single comment line.

#[cfg(not(feature = "no-obs"))]
mod imp {
    use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Counter shards: enough that a handful of pool workers rarely
    /// collide, few enough that merging on read stays trivial.
    const SHARDS: usize = 8;

    /// Histogram buckets: bucket `i` holds values `< 2^i` (cumulative
    /// upper bound `2^i - 1`), bucket 31 catches the rest.
    pub const HISTOGRAM_BUCKETS: usize = 32;

    #[repr(align(64))]
    #[derive(Default)]
    struct PaddedU64(AtomicU64);

    thread_local! {
        static SHARD: usize = {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
        };
    }

    /// A monotone counter, sharded per thread.
    #[derive(Default)]
    pub struct Counter {
        shards: [PaddedU64; SHARDS],
    }

    impl Counter {
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        #[inline]
        pub fn add(&self, n: u64) {
            let s = SHARD.with(|s| *s);
            self.shards[s].0.fetch_add(n, Ordering::Relaxed);
        }

        /// Sum over all shards.
        pub fn get(&self) -> u64 {
            self.shards
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum()
        }
    }

    /// An up/down instantaneous value (queue depths, open sessions).
    #[derive(Default)]
    pub struct Gauge(AtomicI64);

    impl Gauge {
        #[inline]
        pub fn set(&self, v: i64) {
            self.0.store(v, Ordering::Relaxed);
        }

        #[inline]
        pub fn add(&self, n: i64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }

        #[inline]
        pub fn sub(&self, n: i64) {
            self.0.fetch_sub(n, Ordering::Relaxed);
        }

        pub fn get(&self) -> i64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    /// A log2-bucketed histogram of `u64` observations.
    pub struct Histogram {
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
        sum: AtomicU64,
    }

    impl Default for Histogram {
        fn default() -> Self {
            Histogram {
                buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
                sum: AtomicU64::new(0),
            }
        }
    }

    /// Bucket index for one observation: 0 for 0, else `floor(log2 v) + 1`
    /// clamped to the last bucket.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    impl Histogram {
        #[inline]
        pub fn observe(&self, v: u64) {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }

        /// Total observations.
        pub fn count(&self) -> u64 {
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
        }

        /// Sum of all observed values.
        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }

        /// Non-cumulative per-bucket counts.
        pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
            let mut out = [0u64; HISTOGRAM_BUCKETS];
            for (o, b) in out.iter_mut().zip(&self.buckets) {
                *o = b.load(Ordering::Relaxed);
            }
            out
        }
    }

    enum Metric {
        Counter(&'static Counter),
        Gauge(&'static Gauge),
        Histogram(&'static Histogram),
    }

    struct Entry {
        name: &'static str,
        help: &'static str,
        metric: Metric,
    }

    fn registry() -> &'static Mutex<Vec<Entry>> {
        static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn register<T>(
        name: &'static str,
        help: &'static str,
        pick: impl Fn(&Metric) -> Option<&'static T>,
        make: impl FnOnce() -> (&'static T, Metric),
    ) -> &'static T {
        let mut entries = registry().lock().expect("metrics registry poisoned");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return pick(&e.metric)
                .unwrap_or_else(|| panic!("metric {name:?} registered with a different type"));
        }
        let (handle, metric) = make();
        entries.push(Entry { name, help, metric });
        handle
    }

    /// The counter named `name`, registering it on first use. The first
    /// registration's help text wins; re-registering under a different
    /// metric type panics (it is a naming bug, not a runtime condition).
    pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
        register(
            name,
            help,
            |m| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            },
            || {
                let c: &'static Counter = Box::leak(Box::default());
                (c, Metric::Counter(c))
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
        register(
            name,
            help,
            |m| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            },
            || {
                let g: &'static Gauge = Box::leak(Box::default());
                (g, Metric::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
        register(
            name,
            help,
            |m| match m {
                Metric::Histogram(h) => Some(*h),
                _ => None,
            },
            || {
                let h: &'static Histogram = Box::leak(Box::default());
                (h, Metric::Histogram(h))
            },
        )
    }

    /// Current value of a registered counter, by name.
    pub fn counter_value(name: &str) -> Option<u64> {
        let entries = registry().lock().expect("metrics registry poisoned");
        entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.metric {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
    }

    /// Current value of a registered gauge, by name.
    pub fn gauge_value(name: &str) -> Option<i64> {
        let entries = registry().lock().expect("metrics registry poisoned");
        entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.metric {
                Metric::Gauge(g) => Some(g.get()),
                _ => None,
            })
    }

    /// Render every registered metric as Prometheus text exposition,
    /// sorted by name so scrapes are diffable.
    pub fn render_prometheus() -> String {
        use std::fmt::Write;
        let entries = registry().lock().expect("metrics registry poisoned");
        let mut sorted: Vec<&Entry> = entries.iter().collect();
        sorted.sort_by_key(|e| e.name);
        let mut out = String::new();
        for e in &sorted {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    let buckets = h.buckets();
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cum += b;
                        if i + 1 < HISTOGRAM_BUCKETS {
                            let le = (1u64 << i) - 1;
                            let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", e.name, le, cum);
                        } else {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, cum);
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", e.name, h.count());
                }
            }
        }
        out
    }
}

#[cfg(feature = "no-obs")]
mod imp {
    //! `no-obs`: the same API surface, compiled to nothing. Handles are
    //! zero-sized statics, every update inlines away, every read is zero.

    pub const HISTOGRAM_BUCKETS: usize = 32;

    #[derive(Default)]
    pub struct Counter;

    impl Counter {
        #[inline(always)]
        pub fn inc(&self) {}
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    #[derive(Default)]
    pub struct Gauge;

    impl Gauge {
        #[inline(always)]
        pub fn set(&self, _v: i64) {}
        #[inline(always)]
        pub fn add(&self, _n: i64) {}
        #[inline(always)]
        pub fn sub(&self, _n: i64) {}
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    #[derive(Default)]
    pub struct Histogram;

    impl Histogram {
        #[inline(always)]
        pub fn observe(&self, _v: u64) {}
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn sum(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
            [0; HISTOGRAM_BUCKETS]
        }
    }

    static COUNTER: Counter = Counter;
    static GAUGE: Gauge = Gauge;
    static HISTOGRAM: Histogram = Histogram;

    #[inline(always)]
    pub fn counter(_name: &'static str, _help: &'static str) -> &'static Counter {
        &COUNTER
    }

    #[inline(always)]
    pub fn gauge(_name: &'static str, _help: &'static str) -> &'static Gauge {
        &GAUGE
    }

    #[inline(always)]
    pub fn histogram(_name: &'static str, _help: &'static str) -> &'static Histogram {
        &HISTOGRAM
    }

    pub fn counter_value(_name: &str) -> Option<u64> {
        None
    }

    pub fn gauge_value(_name: &str) -> Option<i64> {
        None
    }

    pub fn render_prometheus() -> String {
        "# observability compiled out (no-obs feature)\n".to_string()
    }
}

pub use imp::{
    counter, counter_value, gauge, gauge_value, histogram, render_prometheus, Counter, Gauge,
    Histogram, HISTOGRAM_BUCKETS,
};

#[cfg(all(test, not(feature = "no-obs")))]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = counter("test_counter_sums_total", "test");
        let before = c.get();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get() - before, 4000);
        assert_eq!(counter_value("test_counter_sums_total"), Some(c.get()));
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test_idempotent_total", "first");
        let b = counter("test_idempotent_total", "second");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauge_tracks_up_and_down() {
        let g = gauge("test_gauge", "test");
        g.set(0);
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        assert_eq!(gauge_value("test_gauge"), Some(3));
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let h = histogram("test_histo_us", "test");
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(2); // bucket 2
        h.observe(3); // bucket 2
        h.observe(1024); // bucket 11
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 2);
        assert_eq!(b[11], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
    }

    #[test]
    fn exposition_has_help_type_and_cumulative_buckets() {
        counter("test_render_total", "Rendered counter.").add(7);
        histogram("test_render_us", "Rendered histogram.").observe(3);
        let text = render_prometheus();
        assert!(text.contains("# HELP test_render_total Rendered counter."));
        assert!(text.contains("# TYPE test_render_total counter"));
        assert!(text.contains("# TYPE test_render_us histogram"));
        assert!(text.contains("test_render_us_bucket{le=\"+Inf\"}"));
        assert!(text.contains("test_render_us_count"));
        // Sorted output: HELP lines appear in name order.
        let pos_total = text.find("# HELP test_render_total").unwrap();
        let pos_us = text.find("# HELP test_render_us").unwrap();
        assert!(pos_total < pos_us);
    }
}

#[cfg(all(test, feature = "no-obs"))]
mod tests {
    use super::*;

    #[test]
    fn everything_is_inert() {
        let c = counter("noop_total", "x");
        c.add(10);
        assert_eq!(c.get(), 0);
        assert_eq!(counter_value("noop_total"), None);
        let g = gauge("noop_gauge", "x");
        g.add(3);
        assert_eq!(g.get(), 0);
        let h = histogram("noop_us", "x");
        h.observe(9);
        assert_eq!(h.count(), 0);
        assert!(render_prometheus().starts_with('#'));
    }
}
