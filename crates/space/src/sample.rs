//! Random sampling from configuration spaces.
//!
//! The paper evaluates Hotspot, Dedispersion and Expdist on 10 000 random
//! configurations per architecture, and runs random search 100 times per
//! benchmark. These helpers provide uniform sampling over the full cartesian
//! product and rejection sampling over the restricted space.

use rand::Rng;

use crate::space::ConfigSpace;

/// Draw `n` dense indices uniformly (with replacement) from the full space.
pub fn sample_indices<R: Rng + ?Sized>(space: &ConfigSpace, n: usize, rng: &mut R) -> Vec<u64> {
    (0..n)
        .map(|_| rng.random_range(0..space.cardinality()))
        .collect()
}

/// Draw `n` *distinct* dense indices uniformly from the full space.
///
/// Uses rejection against a hash set; intended for `n` much smaller than the
/// cardinality (the 10 000-sample protocol on 10⁷–10⁸-point spaces). Falls
/// back to a full shuffle when `n` is a large fraction of the space.
pub fn sample_indices_distinct<R: Rng + ?Sized>(
    space: &ConfigSpace,
    n: usize,
    rng: &mut R,
) -> Vec<u64> {
    let card = space.cardinality();
    assert!(
        (n as u64) <= card,
        "cannot draw {n} distinct samples from a space of {card}"
    );
    if (n as u64) * 4 >= card {
        // Dense case: shuffle the whole index range.
        let mut all: Vec<u64> = (0..card).collect();
        // Partial Fisher-Yates: only the first n positions are needed.
        for i in 0..n {
            let j = rng.random_range(i as u64..card) as usize;
            all.swap(i, j);
        }
        all.truncate(n);
        return all;
    }
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let idx = rng.random_range(0..card);
        if seen.insert(idx) {
            out.push(idx);
        }
    }
    out
}

/// Draw `n` indices of *valid* configurations (satisfying the restriction
/// set) by rejection sampling, with replacement.
///
/// Returns `None` if `max_tries` draws fail to produce enough valid samples
/// (i.e. the restricted space is a vanishing fraction of the product space).
pub fn sample_valid_indices<R: Rng + ?Sized>(
    space: &ConfigSpace,
    n: usize,
    rng: &mut R,
    max_tries: usize,
) -> Option<Vec<u64>> {
    let mut scratch = vec![0i64; space.num_params()];
    let mut out = Vec::with_capacity(n);
    for _ in 0..max_tries {
        if out.len() == n {
            break;
        }
        let idx = rng.random_range(0..space.cardinality());
        space.decode_into(idx, &mut scratch);
        if space.is_valid(&scratch) {
            out.push(idx);
        }
    }
    (out.len() == n).then_some(out)
}

/// Draw `n` *distinct* valid indices by rejection sampling.
pub fn sample_valid_indices_distinct<R: Rng + ?Sized>(
    space: &ConfigSpace,
    n: usize,
    rng: &mut R,
    max_tries: usize,
) -> Option<Vec<u64>> {
    let mut scratch = vec![0i64; space.num_params()];
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    for _ in 0..max_tries {
        if out.len() == n {
            break;
        }
        let idx = rng.random_range(0..space.cardinality());
        space.decode_into(idx, &mut scratch);
        if space.is_valid(&scratch) && seen.insert(idx) {
            out.push(idx);
        }
    }
    (out.len() == n).then_some(out)
}

/// Draw one valid configuration index, or `None` after `max_tries` draws.
pub fn sample_one_valid<R: Rng + ?Sized>(
    space: &ConfigSpace,
    rng: &mut R,
    max_tries: usize,
) -> Option<u64> {
    let mut scratch = vec![0i64; space.num_params()];
    for _ in 0..max_tries {
        let idx = rng.random_range(0..space.cardinality());
        space.decode_into(idx, &mut scratch);
        if space.is_valid(&scratch) {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8]))
            .param(Param::new("b", vec![1, 2, 3]))
            .param(Param::boolean("c"))
            .restrict("a * b <= 12")
            .build()
            .unwrap()
    }

    #[test]
    fn samples_are_in_range() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        for idx in sample_indices(&s, 100, &mut rng) {
            assert!(idx < s.cardinality());
        }
    }

    #[test]
    fn distinct_sampling_has_no_repeats() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let mut v = sample_indices_distinct(&s, 20, &mut rng);
        v.sort_unstable();
        let before = v.len();
        v.dedup();
        assert_eq!(v.len(), before);
    }

    #[test]
    fn distinct_sampling_can_exhaust_space() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let card = s.cardinality() as usize;
        let mut v = sample_indices_distinct(&s, card, &mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..card as u64).collect::<Vec<_>>());
    }

    #[test]
    fn valid_sampling_respects_restrictions() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(42);
        let v = sample_valid_indices(&s, 50, &mut rng, 100_000).unwrap();
        assert_eq!(v.len(), 50);
        assert!(v.iter().all(|&i| s.is_valid_index(i)));
    }

    #[test]
    fn impossible_restriction_times_out() {
        let s = ConfigSpace::builder()
            .param(Param::boolean("x"))
            .restrict("x == 2")
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_valid_indices(&s, 1, &mut rng, 1000).is_none());
        assert!(sample_one_valid(&s, &mut rng, 1000).is_none());
    }
}
