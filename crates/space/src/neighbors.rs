//! Neighbourhood structures over configuration spaces.
//!
//! The fitness flow graph of Schoonhoven et al. (used by the paper's
//! proportion-of-centrality metric, Fig. 3) and the local-search tuners both
//! need a notion of "neighbouring configuration". Two variants are provided:
//!
//! * [`Neighborhood::HammingAny`] — configurations differing in exactly one
//!   parameter, to *any* other candidate value;
//! * [`Neighborhood::Adjacent`] — configurations differing in exactly one
//!   parameter, to an *adjacent* candidate value in the parameter's ordered
//!   value list (a "strictly-adjacent" neighbourhood).

use crate::space::ConfigSpace;

/// Neighbourhood kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighborhood {
    /// Change one parameter to any other value.
    HammingAny,
    /// Change one parameter one step up or down its ordered value list.
    Adjacent,
}

impl Neighborhood {
    /// Dense indices of all neighbours of `index` (unrestricted space).
    ///
    /// Neighbour indices are produced by stride arithmetic; no configs are
    /// decoded. The output order is deterministic: parameters in slot order,
    /// values in list order.
    pub fn neighbor_indices(self, space: &ConfigSpace, index: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_neighbor(space, index, |n| out.push(n));
        out
    }

    /// Visit each neighbour index of `index` without allocating.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(u64)>(self, space: &ConfigSpace, index: u64, mut f: F) {
        debug_assert!(index < space.cardinality());
        let mut rem = index;
        for (i, p) in space.params().iter().enumerate() {
            let stride = space.stride(i);
            let pos = (rem / stride) as usize;
            rem %= stride;
            let base = index - (pos as u64) * stride;
            match self {
                Neighborhood::HammingAny => {
                    for alt in 0..p.len() {
                        if alt != pos {
                            f(base + (alt as u64) * stride);
                        }
                    }
                }
                Neighborhood::Adjacent => {
                    if pos > 0 {
                        f(base + (pos as u64 - 1) * stride);
                    }
                    if pos + 1 < p.len() {
                        f(base + (pos as u64 + 1) * stride);
                    }
                }
            }
        }
    }

    /// Neighbours of `index` that satisfy the restriction set.
    ///
    /// A neighbour differs from `index` in exactly one slot, so only the
    /// restrictions *touching* that slot can change verdict: the base
    /// configuration is decoded and evaluated once, and each candidate then
    /// patches a single value and re-checks just the touching restrictions
    /// — instead of fully decoding and re-validating every neighbour.
    pub fn valid_neighbor_indices(self, space: &ConfigSpace, index: u64) -> Vec<u64> {
        debug_assert!(index < space.cardinality());
        let engine = space.engine();
        if engine.always_false {
            return Vec::new();
        }
        let mut scratch = vec![0i64; space.num_params()];
        space.decode_into(index, &mut scratch);
        // Verdict of every active restriction on the base configuration.
        let mut base_ok = vec![true; engine.programs.len()];
        let mut total_false = 0usize;
        for &ri in &engine.active {
            if !engine.programs[ri].eval_bool(&scratch) {
                base_ok[ri] = false;
                total_false += 1;
            }
        }
        let mut out = Vec::new();
        let mut rem = index;
        for (i, p) in space.params().iter().enumerate() {
            let stride = space.stride(i);
            let pos = (rem / stride) as usize;
            rem %= stride;
            let touching = &engine.touching[i];
            // Restrictions not touching slot i keep their base verdict, so
            // every failing one must touch slot i or no neighbour along this
            // slot can be valid.
            let false_touching = touching.iter().filter(|&&ri| !base_ok[ri]).count();
            if false_touching != total_false {
                continue;
            }
            let base = index - (pos as u64) * stride;
            let old = scratch[i];
            let try_alt = |alt: usize, scratch: &mut [i64], out: &mut Vec<u64>| {
                scratch[i] = p.values[alt];
                if touching
                    .iter()
                    .all(|&ri| engine.programs[ri].eval_bool(scratch))
                {
                    out.push(base + (alt as u64) * stride);
                }
            };
            match self {
                Neighborhood::HammingAny => {
                    for alt in 0..p.len() {
                        if alt != pos {
                            try_alt(alt, &mut scratch, &mut out);
                        }
                    }
                }
                Neighborhood::Adjacent => {
                    if pos > 0 {
                        try_alt(pos - 1, &mut scratch, &mut out);
                    }
                    if pos + 1 < p.len() {
                        try_alt(pos + 1, &mut scratch, &mut out);
                    }
                }
            }
            scratch[i] = old;
        }
        out
    }

    /// Upper bound on the number of neighbours any configuration can have.
    pub fn max_degree(self, space: &ConfigSpace) -> usize {
        match self {
            Neighborhood::HammingAny => space.params().iter().map(|p| p.len() - 1).sum(),
            Neighborhood::Adjacent => space
                .params()
                .iter()
                .map(|p| if p.len() > 1 { 2 } else { 0 })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8]))
            .param(Param::new("b", vec![0, 1]))
            .build()
            .unwrap()
    }

    #[test]
    fn hamming_degree() {
        let s = space();
        let n = Neighborhood::HammingAny.neighbor_indices(&s, 0);
        assert_eq!(n.len(), 4); // 3 alternatives for a + 1 for b
        assert_eq!(Neighborhood::HammingAny.max_degree(&s), 4);
    }

    #[test]
    fn adjacent_degree_depends_on_position() {
        let s = space();
        // index 0 => a at first position, b at first position: 1 + 1 neighbours
        assert_eq!(Neighborhood::Adjacent.neighbor_indices(&s, 0).len(), 2);
        // a in the middle (pos 1), b at 0: 2 + 1 neighbours
        let idx = s.index_of(&[2, 0]).unwrap();
        assert_eq!(Neighborhood::Adjacent.neighbor_indices(&s, idx).len(), 3);
    }

    #[test]
    fn neighbors_differ_in_exactly_one_param() {
        let s = space();
        let idx = s.index_of(&[4, 1]).unwrap();
        for n in Neighborhood::HammingAny.neighbor_indices(&s, idx) {
            let a = s.config_at(idx);
            let b = s.config_at(n);
            let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(diff, 1, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let s = space();
        for idx in 0..s.cardinality() {
            for n in Neighborhood::HammingAny.neighbor_indices(&s, idx) {
                let back = Neighborhood::HammingAny.neighbor_indices(&s, n);
                assert!(back.contains(&idx));
            }
        }
    }

    #[test]
    fn valid_neighbors_respect_restrictions() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8]))
            .param(Param::new("b", vec![1, 2]))
            .restrict("a * b <= 8")
            .build()
            .unwrap();
        let idx = s.index_of(&[4, 1]).unwrap();
        let valid = Neighborhood::HammingAny.valid_neighbor_indices(&s, idx);
        // (8,1) ok, (1,1),(2,1) ok, (4,2) ok => 4 valid neighbours
        assert_eq!(valid.len(), 4);
        let all = Neighborhood::HammingAny.neighbor_indices(&s, idx);
        assert_eq!(all.len(), 4); // (8,2) would be from (8,1)? no: from (4,1) only one b-neighbor
    }

    /// The single-slot patching fast path must agree with the naive
    /// decode-and-revalidate baseline from every starting index — valid or
    /// not — including restrictions spanning several parameters.
    #[test]
    fn valid_neighbors_match_naive_baseline_everywhere() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4, 8]))
            .param(Param::new("b", vec![1, 2, 3]))
            .param(Param::new("c", vec![0, 1]))
            .restrict("a * b <= 12")
            .restrict("b != 2 or c == 1")
            .build()
            .unwrap();
        let mut scratch = vec![0i64; s.num_params()];
        for nb in [Neighborhood::HammingAny, Neighborhood::Adjacent] {
            for idx in 0..s.cardinality() {
                let naive: Vec<u64> = nb
                    .neighbor_indices(&s, idx)
                    .into_iter()
                    .filter(|&n| s.is_valid_index_into(n, &mut scratch))
                    .collect();
                assert_eq!(
                    nb.valid_neighbor_indices(&s, idx),
                    naive,
                    "index {idx} ({nb:?})"
                );
            }
        }
    }
}
