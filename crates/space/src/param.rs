//! Tunable parameter definitions.

use serde::{Deserialize, Serialize};

/// A discrete tunable parameter: a name plus an ordered list of integer
/// values it may take.
///
/// All BAT 2.0 parameters are integers (thread-block sizes, tile sizes,
/// unroll factors, boolean switches encoded as 0/1), matching Tables I–VII
/// of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name as used in restriction expressions and kernel sources.
    pub name: String,
    /// Ordered candidate values. Order defines the "adjacent" neighbourhood.
    pub values: Vec<i64>,
}

impl Param {
    /// Create a parameter from an explicit value list.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains duplicates — both would make
    /// the mixed-radix index bijection ill-defined.
    pub fn new(name: impl Into<String>, values: impl Into<Vec<i64>>) -> Self {
        let name = name.into();
        let values = values.into();
        assert!(!values.is_empty(), "parameter {name:?} has no values");
        let mut seen = values.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            values.len(),
            "parameter {name:?} has duplicate values"
        );
        Param { name, values }
    }

    /// Powers of two from `lo` to `hi` inclusive (both must be powers of two).
    pub fn pow2(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo > 0 && hi >= lo, "invalid pow2 range");
        assert!(
            lo.count_ones() == 1 && hi.count_ones() == 1,
            "bounds must be powers of two"
        );
        let mut values = Vec::new();
        let mut v = lo;
        while v <= hi {
            values.push(v);
            v *= 2;
        }
        Param::new(name, values)
    }

    /// The inclusive integer range `lo..=hi`.
    pub fn int_range(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(hi >= lo, "invalid range");
        Param::new(name, (lo..=hi).collect::<Vec<_>>())
    }

    /// Multiples of `step` from `lo` to `hi` inclusive.
    pub fn multiples(name: impl Into<String>, step: i64, lo: i64, hi: i64) -> Self {
        assert!(
            step > 0 && lo % step == 0 && hi >= lo,
            "invalid multiples range"
        );
        let mut values = Vec::new();
        let mut v = lo;
        while v <= hi {
            values.push(v);
            v += step;
        }
        Param::new(name, values)
    }

    /// A boolean switch `{0, 1}`.
    pub fn boolean(name: impl Into<String>) -> Self {
        Param::new(name, vec![0, 1])
    }

    /// Number of candidate values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when only one value exists (the parameter is pinned).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at ordinal position `i`.
    #[inline]
    pub fn value(&self, i: usize) -> i64 {
        self.values[i]
    }

    /// Ordinal position of `v`, if it is a candidate value.
    #[inline]
    pub fn position(&self, v: i64) -> Option<usize> {
        self.values.iter().position(|&x| x == v)
    }

    /// A copy of this parameter pinned to a single value (used when reducing
    /// search spaces per Table VIII).
    pub fn pinned(&self, v: i64) -> Self {
        assert!(
            self.position(v).is_some(),
            "cannot pin {:?} to non-candidate value {v}",
            self.name
        );
        Param {
            name: self.name.clone(),
            values: vec![v],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_generates_expected_values() {
        let p = Param::pow2("block", 16, 128);
        assert_eq!(p.values, vec![16, 32, 64, 128]);
    }

    #[test]
    fn multiples_generates_expected_values() {
        let p = Param::multiples("bx", 32, 32, 1024);
        assert_eq!(p.len(), 32);
        assert_eq!(p.values[0], 32);
        assert_eq!(*p.values.last().unwrap(), 1024);
    }

    #[test]
    fn int_range_inclusive() {
        let p = Param::int_range("t", 1, 10);
        assert_eq!(p.len(), 10);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        let _ = Param::new("p", vec![1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_rejected() {
        let _ = Param::new("p", Vec::<i64>::new());
    }

    #[test]
    fn position_lookup() {
        let p = Param::new("p", vec![4, 8, 15, 16]);
        assert_eq!(p.position(15), Some(2));
        assert_eq!(p.position(23), None);
    }

    #[test]
    fn pinning() {
        let p = Param::new("p", vec![4, 8, 16]).pinned(8);
        assert_eq!(p.values, vec![8]);
    }
}
