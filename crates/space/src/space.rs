//! Configuration spaces: the cartesian product of parameters plus a
//! restriction set, with a mixed-radix index bijection and a prefix-pruned
//! enumeration engine.

use std::fmt;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::expr::{parse, BinOp, CompiledExpr, EvalError, ParseError, Program};
use crate::param::Param;

/// A parsed restriction together with its source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Restriction {
    /// The original expression string (kept for display/serialization).
    pub source: String,
    /// Compiled form with parameter slots resolved.
    pub compiled: CompiledExpr,
}

/// Error constructing a [`ConfigSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// Two parameters share a name.
    DuplicateParam(String),
    /// A restriction failed to parse.
    Parse {
        /// The restriction source text.
        source: String,
        /// The underlying parse error.
        error: ParseError,
    },
    /// A restriction references an unknown parameter.
    Compile {
        /// The restriction source text.
        source: String,
        /// The underlying resolution error.
        error: EvalError,
    },
    /// The space has no parameters.
    Empty,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateParam(n) => write!(f, "duplicate parameter name {n:?}"),
            SpaceError::Parse { source, error } => {
                write!(f, "failed to parse restriction {source:?}: {error}")
            }
            SpaceError::Compile { source, error } => {
                write!(f, "failed to compile restriction {source:?}: {error}")
            }
            SpaceError::Empty => f.write_str("configuration space has no parameters"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// Precomputed evaluation/enumeration state derived from the restriction
/// set at build time.
///
/// Every restriction is constant-folded and compiled to a flat bytecode
/// [`Program`]. Restrictions that fold to a constant are taken out of the
/// per-configuration hot path entirely: always-true ones are dropped,
/// always-false ones collapse the whole space. The remaining *active*
/// restrictions are bucketed by the highest parameter slot they read, which
/// is what lets the counters/enumerators evaluate each restriction at the
/// shallowest possible depth of the odometer walk and prune whole subtrees.
#[derive(Debug, Clone)]
pub(crate) struct EnumEngine {
    /// Bytecode per restriction (parallel to `ConfigSpace::restrictions`).
    pub(crate) programs: Vec<Program>,
    /// Slots read by each restriction *after folding* (sorted, deduped).
    pub(crate) slots_of: Vec<Vec<usize>>,
    /// Indices of restrictions that did not fold to a constant.
    pub(crate) active: Vec<usize>,
    /// True when some restriction folded to constant false.
    pub(crate) always_false: bool,
    /// Per slot: is it read by any active restriction?
    pub(crate) touched: Vec<bool>,
    /// Per slot: active restrictions whose *highest* slot is this one
    /// (checkable as soon as the slot is assigned in an ascending walk).
    pub(crate) bucket_of_slot: Vec<Vec<usize>>,
    /// Per slot: active restrictions reading it (for single-slot patches).
    pub(crate) touching: Vec<Vec<usize>>,
    /// Product of the radices of untouched slots.
    pub(crate) free_mult: u64,
    /// Highest touched slot, if any restriction is active.
    pub(crate) last_slot: Option<usize>,
    /// The pure-integer active restrictions (no division, no floats) fused
    /// into one short-circuit `and` chain in most-selective-first order.
    /// `is_valid` runs this first: it executes on the wrapping-`i64`
    /// interpreter with no exactness guards, and most restrictions in
    /// practice (divisibility, ordering, equality) land here. `None` when
    /// no active restriction is pure.
    pub(crate) valid_pure: Option<Program>,
    /// The remaining active restrictions — those whose compiled form
    /// promotes to float or divides, and therefore needs the 2⁵³
    /// exactness envelope — fused likewise. Only evaluated when the pure
    /// prefix passed, so the guarded interpreter runs on exactly the
    /// restrictions that need it. `None` when every active restriction is
    /// pure.
    pub(crate) valid_guarded: Option<Program>,
    /// Constrained slots ordered so the most selective restrictions
    /// complete earliest in a counting walk (see `counting_order`).
    pub(crate) count_slots: Vec<usize>,
    /// Buckets parallel to `count_slots`: restriction `ri` sits at the
    /// position where its last slot is placed in `count_slots`.
    pub(crate) count_buckets: Vec<Vec<usize>>,
}

/// Exact-sweep budget for restriction selectivity estimation: when the
/// product of a restriction's own slot radices is at most this, every
/// assignment is evaluated; larger sub-spaces are sampled instead.
const SELECTIVITY_EXACT_MAX: u64 = 1024;

/// Deterministic sample count for large sub-spaces.
const SELECTIVITY_SAMPLES: u64 = 256;

/// SplitMix64 finalizer — the build-time sampler's only source of
/// "randomness", so selectivity estimates are pure functions of the space.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Estimate the fraction of assignments of `slots` that satisfy `program`
/// (exactly for small products, over a fixed deterministic sample
/// otherwise). `scratch` must be full-width; only `slots` are written, and
/// the restriction reads nothing else.
fn estimate_pass_rate(
    params: &[Param],
    program: &Program,
    slots: &[usize],
    scratch: &mut [i64],
    ri: u64,
) -> f64 {
    let product = slots
        .iter()
        .try_fold(1u64, |acc, &s| acc.checked_mul(params[s].len() as u64))
        .unwrap_or(u64::MAX);
    if product <= SELECTIVITY_EXACT_MAX {
        // Odometer over exactly this restriction's slots.
        let mut odo = vec![0usize; slots.len()];
        for &s in slots {
            scratch[s] = params[s].values[0];
        }
        let mut passes = 0u64;
        loop {
            if program.eval_bool(scratch) {
                passes += 1;
            }
            let mut d = slots.len();
            loop {
                if d == 0 {
                    return passes as f64 / product as f64;
                }
                d -= 1;
                odo[d] += 1;
                let p = &params[slots[d]];
                if odo[d] < p.len() {
                    scratch[slots[d]] = p.values[odo[d]];
                    break;
                }
                odo[d] = 0;
                scratch[slots[d]] = p.values[0];
            }
        }
    }
    let seed = splitmix(ri.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut passes = 0u64;
    for j in 0..SELECTIVITY_SAMPLES {
        let mut h = splitmix(seed ^ j);
        for &s in slots {
            h = splitmix(h);
            let p = &params[s];
            scratch[s] = p.values[(h % p.len() as u64) as usize];
        }
        if program.eval_bool(scratch) {
            passes += 1;
        }
    }
    passes as f64 / SELECTIVITY_SAMPLES as f64
}

impl EnumEngine {
    fn build(params: &[Param], restrictions: &[Restriction]) -> EnumEngine {
        let n = params.len();
        let mut programs = Vec::with_capacity(restrictions.len());
        let mut slots_of = Vec::with_capacity(restrictions.len());
        let mut active = Vec::new();
        let mut always_false = false;
        let mut folded_of = Vec::with_capacity(restrictions.len());
        for (ri, r) in restrictions.iter().enumerate() {
            let folded = crate::expr::fold(&r.compiled);
            let program = Program::compile_prefolded(&folded);
            match program.const_value() {
                Some(c) => {
                    if !c.truthy() {
                        always_false = true;
                    }
                    // Constant restrictions never reach the hot path.
                    slots_of.push(Vec::new());
                }
                None => {
                    slots_of.push(folded.slots());
                    active.push(ri);
                }
            }
            programs.push(program);
            folded_of.push(folded);
        }
        // Most-selective-first ordering: estimate each active restriction's
        // pass rate deterministically, then check the least-passing ones
        // first so `is_valid` short-circuits invalid configurations as
        // early as possible. Pure reordering of an `all()` conjunction —
        // the boolean result is untouched.
        let mut pass_rate = vec![1.0f64; restrictions.len()];
        if !active.is_empty() {
            let mut scratch: Vec<i64> = params.iter().map(|p| p.values[0]).collect();
            for &ri in &active {
                pass_rate[ri] = estimate_pass_rate(
                    params,
                    &programs[ri],
                    &slots_of[ri],
                    &mut scratch,
                    ri as u64,
                );
            }
            active.sort_by(|&a, &b| pass_rate[a].total_cmp(&pass_rate[b]).then(a.cmp(&b)));
        }
        let mut touched = vec![false; n];
        let mut bucket_of_slot: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut touching: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &ri in &active {
            for &s in &slots_of[ri] {
                touched[s] = true;
                touching[s].push(ri);
            }
            let last = *slots_of[ri]
                .last()
                .expect("active restriction reads a slot");
            bucket_of_slot[last].push(ri);
        }
        let free_mult = (0..n)
            .filter(|&s| !touched[s])
            .map(|s| params[s].len() as u64)
            .product();
        let last_slot = (0..n).rfind(|&s| touched[s]);
        // Fuse the active restrictions into right-nested `and` chains in
        // selectivity order: identical short-circuit evaluation to the
        // `all()` loop, but one interpreter entry per chain. The chain is
        // split by interpreter class — pure-integer restrictions first
        // (cheap wrapping-`i64` evaluation), then the ones needing float
        // promotion or division-exactness guards. A conjunction of total
        // predicates is order-insensitive, so the boolean is untouched.
        let fuse = |ris: &[usize]| {
            let mut it = ris.iter().rev();
            it.next().map(|&last| {
                let mut expr = folded_of[last].clone();
                for &ri in it {
                    expr = CompiledExpr::Binary(
                        BinOp::And,
                        Box::new(folded_of[ri].clone()),
                        Box::new(expr),
                    );
                }
                Program::compile_prefolded(&expr)
            })
        };
        let pure: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&ri| programs[ri].is_pure_int())
            .collect();
        let guarded: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&ri| !programs[ri].is_pure_int())
            .collect();
        let valid_pure = fuse(&pure);
        let valid_guarded = fuse(&guarded);
        let mut engine = EnumEngine {
            programs,
            slots_of,
            active,
            always_false,
            touched,
            bucket_of_slot,
            touching,
            free_mult,
            last_slot,
            valid_pure,
            valid_guarded,
            count_slots: Vec::new(),
            count_buckets: Vec::new(),
        };
        let (count_slots, count_buckets) = engine.counting_order(&engine.active);
        engine.count_slots = count_slots;
        engine.count_buckets = count_buckets;
        engine
    }

    /// Order the slots read by `ris` (given most-selective-first) for a
    /// counting walk: each restriction appends its not-yet-placed slots in
    /// turn, so the most selective restrictions have all their slots
    /// assigned — and prune — at the shallowest possible depth. Restriction
    /// `ri` lands in the bucket of its last-placed slot. Any slot order
    /// counts the same assignments; only the pruning schedule changes.
    fn counting_order(&self, ris: &[usize]) -> (Vec<usize>, Vec<Vec<usize>>) {
        let n = self.touched.len();
        let mut pos: Vec<Option<usize>> = vec![None; n];
        let mut slots: Vec<usize> = Vec::new();
        for &ri in ris {
            for &s in &self.slots_of[ri] {
                if pos[s].is_none() {
                    pos[s] = Some(slots.len());
                    slots.push(s);
                }
            }
        }
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
        for &ri in ris {
            let at = self.slots_of[ri]
                .iter()
                .map(|&s| pos[s].expect("restriction slot placed"))
                .max()
                .expect("active restriction reads a slot");
            buckets[at].push(ri);
        }
        (slots, buckets)
    }
}

/// A discrete configuration space: parameters × restrictions.
///
/// Configurations are identified either by their value vector (`&[i64]`,
/// aligned with [`ConfigSpace::params`]) or by a dense mixed-radix index in
/// `0..cardinality()`. The index bijection makes uniform sampling and
/// neighbour arithmetic O(#params) without hashing.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    params: Vec<Param>,
    names: Vec<String>,
    restrictions: Vec<Restriction>,
    /// Mixed-radix strides: `strides[i]` = product of radices of params after i.
    strides: Vec<u64>,
    /// `1.0 / strides[i]`, for the reciprocal-multiply decode fast path.
    inv_strides: Vec<f64>,
    /// `params[i].len()`, pre-widened for the decode fast path.
    radices: Vec<u64>,
    /// True when `cardinality` fits the exact-f64 envelope (2⁵²), making
    /// the reciprocal decode's one-step correction sound.
    decode_fast: bool,
    cardinality: u64,
    engine: EnumEngine,
}

impl ConfigSpace {
    /// Start building a space.
    pub fn builder() -> ConfigSpaceBuilder {
        ConfigSpaceBuilder::default()
    }

    /// The parameters, in slot order.
    #[inline]
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Parameter names, in slot order.
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of parameters.
    #[inline]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Slot index of the parameter named `name`.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The restriction set.
    #[inline]
    pub fn restrictions(&self) -> &[Restriction] {
        &self.restrictions
    }

    /// The derived evaluation/enumeration state (crate-internal: the
    /// neighbourhood code patches single slots against it).
    #[inline]
    pub(crate) fn engine(&self) -> &EnumEngine {
        &self.engine
    }

    /// Total number of configurations in the unrestricted cartesian product
    /// (the paper's "Cardinality" column in Table VIII).
    #[inline]
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Decode a dense index into a fresh configuration vector.
    pub fn config_at(&self, index: u64) -> Vec<i64> {
        let mut out = vec![0; self.params.len()];
        self.decode_into(index, &mut out);
        out
    }

    /// Decode a dense index into `out` (no allocation; `out.len()` must equal
    /// the number of parameters).
    #[inline]
    pub fn decode_into(&self, index: u64, out: &mut [i64]) {
        debug_assert!(index < self.cardinality, "index out of range");
        debug_assert_eq!(out.len(), self.params.len());
        if self.decode_fast {
            // Reciprocal-multiply decode. Each slot's quotient divides
            // `index` directly rather than a running remainder, so the
            // per-slot work is independent and pipelines instead of
            // serializing on hardware dividers; digit `i` is then
            // `q_i - q_{i-1} * radix_i` (strides are nested products, so
            // `q_{i-1} = q_i / radix_i`). Inside the 2⁵² envelope the
            // rounded quotient is off by at most one, which the
            // correction step repairs exactly.
            let x = index as f64;
            let mut prev_q = 0u64;
            for (i, slot) in out.iter_mut().enumerate().take(self.params.len()) {
                let stride = self.strides[i];
                let mut q = (x * self.inv_strides[i]) as u64;
                if q * stride > index {
                    q -= 1;
                } else if (q + 1) * stride <= index {
                    q += 1;
                }
                let pos = (q - prev_q * self.radices[i]) as usize;
                *slot = self.params[i].values[pos];
                prev_q = q;
            }
            return;
        }
        let mut rem = index;
        for (i, p) in self.params.iter().enumerate() {
            let pos = (rem / self.strides[i]) as usize;
            rem %= self.strides[i];
            out[i] = p.values[pos];
        }
    }

    /// Encode a configuration into its dense index. Returns `None` if any
    /// value is not a candidate value of its parameter.
    pub fn index_of(&self, config: &[i64]) -> Option<u64> {
        assert_eq!(config.len(), self.params.len());
        let mut idx = 0u64;
        for (i, p) in self.params.iter().enumerate() {
            let pos = p.position(config[i])? as u64;
            idx += pos * self.strides[i];
        }
        Some(idx)
    }

    /// Evaluate the restriction set on a configuration.
    #[inline]
    pub fn is_valid(&self, config: &[i64]) -> bool {
        if self.engine.always_false {
            return false;
        }
        if let Some(p) = &self.engine.valid_pure {
            if !p.eval_bool(config) {
                return false;
            }
        }
        match &self.engine.valid_guarded {
            Some(p) => p.eval_bool(config),
            None => true,
        }
    }

    /// Like [`ConfigSpace::is_valid`] but for a dense index.
    ///
    /// Allocates a scratch configuration; inside loops prefer
    /// [`ConfigSpace::is_valid_index_into`].
    pub fn is_valid_index(&self, index: u64) -> bool {
        let mut scratch = vec![0; self.params.len()];
        self.is_valid_index_into(index, &mut scratch)
    }

    /// Like [`ConfigSpace::is_valid_index`] but decoding into a caller-
    /// provided scratch buffer (`scratch.len()` must equal the number of
    /// parameters), so repeated checks perform no allocation.
    #[inline]
    pub fn is_valid_index_into(&self, index: u64, scratch: &mut [i64]) -> bool {
        self.decode_into(index, scratch);
        self.is_valid(scratch)
    }

    /// Iterate over all configurations (restricted or not) in index order.
    pub fn iter(&self) -> ConfigIter<'_> {
        ConfigIter {
            space: self,
            next: 0,
            scratch: vec![0; self.params.len()],
        }
    }

    /// Count configurations satisfying the restriction set, exactly, by a
    /// prefix-pruned odometer walk: parameters are visited in slot order and
    /// every restriction is evaluated as soon as its highest slot is
    /// assigned, so one failed check skips every completion of that prefix
    /// at once, and parameters no restriction reads are never enumerated at
    /// all (they contribute a multiplier). Restriction-free spaces return
    /// [`ConfigSpace::cardinality`] directly.
    pub fn count_valid(&self) -> u64 {
        if self.engine.always_false {
            return 0;
        }
        if self.engine.active.is_empty() {
            return self.cardinality;
        }
        // Walk the precomputed selectivity-ordered slots: the most
        // selective restrictions complete (and prune) at the shallowest
        // depths. Any slot order counts the same assignment set.
        self.pruned_count_over(&self.engine.count_slots, &self.engine.count_buckets)
            * self.engine.free_mult
    }

    /// Count valid configurations by exhaustive parallel brute force over
    /// the full cartesian product — O(cardinality). Kept as the reference
    /// implementation the pruned [`ConfigSpace::count_valid`] is verified
    /// (and benchmarked) against.
    pub fn count_valid_brute(&self) -> u64 {
        if self.engine.active.is_empty() && !self.engine.always_false {
            return self.cardinality;
        }
        const CHUNK: u64 = 1 << 16;
        let n_chunks = self.cardinality.div_ceil(CHUNK);
        (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * CHUNK;
                let end = (start + CHUNK).min(self.cardinality);
                let mut scratch = vec![0i64; self.params.len()];
                let mut count = 0u64;
                for idx in start..end {
                    if self.is_valid_index_into(idx, &mut scratch) {
                        count += 1;
                    }
                }
                count
            })
            .sum()
    }

    /// Minimum number of independent work items to aim for before handing
    /// the remaining subtrees to the parallel iterator (the first slot's
    /// radix alone is often just 2–4, which would starve a multicore host).
    const MIN_PARALLEL_TASKS: usize = 64;

    /// Count assignments of `slots` (ascending) satisfying the restrictions
    /// in `buckets` (parallel to `slots`; each bucket holds the restriction
    /// indices to check once that slot is assigned), with a pruned DFS.
    /// The leading slots are expanded — with pruning — into concrete prefix
    /// assignments until there are enough surviving prefixes to spread over
    /// all cores; each prefix then runs a sequential pruned DFS.
    fn pruned_count_over(&self, slots: &[usize], buckets: &[Vec<usize>]) -> u64 {
        if slots.is_empty() {
            return 1;
        }
        let init: Vec<i64> = self.params.iter().map(|p| p.values[0]).collect();
        let mut prefixes: Vec<Vec<i64>> = vec![init];
        let mut depth = 0;
        while depth < slots.len() && prefixes.len() < Self::MIN_PARALLEL_TASKS {
            let s = slots[depth];
            let mut next = Vec::with_capacity(prefixes.len() * self.params[s].len());
            for prefix in &prefixes {
                for &v in &self.params[s].values {
                    let mut scratch = prefix.clone();
                    scratch[s] = v;
                    if self.bucket_ok(&buckets[depth], &scratch) {
                        next.push(scratch);
                    }
                }
            }
            prefixes = next;
            depth += 1;
            if prefixes.is_empty() {
                return 0;
            }
        }
        prefixes
            .into_par_iter()
            .map(|mut scratch| self.count_dfs(depth, slots, buckets, &mut scratch))
            .sum()
    }

    #[inline]
    fn bucket_ok(&self, bucket: &[usize], scratch: &[i64]) -> bool {
        bucket
            .iter()
            .all(|&ri| self.engine.programs[ri].eval_bool(scratch))
    }

    fn count_dfs(
        &self,
        depth: usize,
        slots: &[usize],
        buckets: &[Vec<usize>],
        scratch: &mut [i64],
    ) -> u64 {
        if depth == slots.len() {
            return 1;
        }
        let s = slots[depth];
        let mut total = 0;
        for &v in &self.params[s].values {
            scratch[s] = v;
            if self.bucket_ok(&buckets[depth], scratch) {
                total += self.count_dfs(depth + 1, slots, buckets, scratch);
            }
        }
        total
    }

    /// Count valid configurations by factoring the space into connected
    /// components of the restriction/parameter graph and multiplying the
    /// per-component counts (each component counted with the same pruned
    /// DFS as [`ConfigSpace::count_valid`]). Exact; asymptotically the
    /// fastest counter when restrictions decompose into small groups (e.g.
    /// the 1.2×10⁸-point Dedispersion space).
    pub fn count_valid_factored(&self) -> u64 {
        if self.engine.always_false {
            return 0;
        }
        if self.engine.active.is_empty() {
            return self.cardinality;
        }
        let components = self.constraint_components();
        let mut total: u128 = 1;
        for comp in &components {
            total *= u128::from(self.count_component(comp));
        }
        for (i, p) in self.params.iter().enumerate() {
            if !self.engine.touched[i] {
                total *= p.len() as u128;
            }
        }
        u64::try_from(total).expect("valid count exceeds u64")
    }

    /// Group the active restrictions into connected components over the
    /// parameters they read.
    fn constraint_components(&self) -> Vec<Component> {
        // Union-find over parameter slots.
        let n = self.params.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &ri in &self.engine.active {
            let slots = &self.engine.slots_of[ri];
            if let Some(&first) = slots.first() {
                for &s in &slots[1..] {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, s));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        // Group restrictions by the root of their (connected) parameter set.
        let mut comps: Vec<Component> = Vec::new();
        let mut root_to_comp: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for &ri in &self.engine.active {
            let slots = &self.engine.slots_of[ri];
            let root = find(&mut parent, slots[0]);
            let ci = *root_to_comp.entry(root).or_insert_with(|| {
                comps.push(Component {
                    params: Vec::new(),
                    restrictions: Vec::new(),
                });
                comps.len() - 1
            });
            comps[ci].restrictions.push(ri);
        }
        for p in 0..n {
            let root = find(&mut parent, p);
            if let Some(&ci) = root_to_comp.get(&root) {
                if !comps[ci].params.contains(&p) {
                    comps[ci].params.push(p);
                }
            }
        }
        comps
    }

    /// Count assignments of a component's parameters satisfying its
    /// restrictions, with the pruned DFS (other parameters held at their
    /// first value — they are never read by these restrictions).
    fn count_component(&self, comp: &Component) -> u64 {
        // `comp.restrictions` inherits the engine's most-selective-first
        // order, so the component walk prunes on the same schedule as the
        // whole-space counter.
        let (slots, buckets) = self.engine.counting_order(&comp.restrictions);
        debug_assert_eq!(
            {
                let mut s = slots.clone();
                s.sort_unstable();
                s
            },
            {
                let mut p = comp.params.clone();
                p.sort_unstable();
                p
            },
            "component slots must cover exactly its parameters"
        );
        self.pruned_count_over(&slots, &buckets)
    }

    /// Enumerate the dense indices of all valid configurations, in
    /// ascending order, with the same prefix-pruned walk as
    /// [`ConfigSpace::count_valid`]: once every restriction has been
    /// checked, the whole remaining subtree is appended as one contiguous
    /// index range. Intended for spaces small enough to exhaust (the paper
    /// exhausts Pnpoly, Nbody, GEMM and Convolution).
    pub fn valid_indices(&self) -> Vec<u64> {
        if self.engine.always_false {
            return Vec::new();
        }
        let Some(last) = self.engine.last_slot else {
            // Restriction-free: every index is valid.
            return (0..self.cardinality).collect();
        };
        // Expand leading slots — with pruning — into (assignment, base
        // index) prefixes until there is enough independent work to spread
        // over all cores. Prefixes are generated in lexicographic position
        // order, so concatenating their outputs preserves ascending order.
        let init: Vec<i64> = self.params.iter().map(|p| p.values[0]).collect();
        let mut prefixes: Vec<(Vec<i64>, u64)> = vec![(init, 0)];
        let mut slot = 0;
        while slot <= last && prefixes.len() < Self::MIN_PARALLEL_TASKS {
            let mut next = Vec::with_capacity(prefixes.len() * self.params[slot].len());
            for (prefix, base) in &prefixes {
                for (pos, &v) in self.params[slot].values.iter().enumerate() {
                    let mut scratch = prefix.clone();
                    scratch[slot] = v;
                    if self.bucket_ok(&self.engine.bucket_of_slot[slot], &scratch) {
                        next.push((scratch, base + pos as u64 * self.strides[slot]));
                    }
                }
            }
            prefixes = next;
            slot += 1;
            if prefixes.is_empty() {
                return Vec::new();
            }
        }
        let mut chunks: Vec<Vec<u64>> = prefixes
            .into_par_iter()
            .map(|(mut scratch, base)| {
                let mut out = Vec::new();
                self.enum_dfs(slot, base, last, &mut scratch, &mut out);
                out
            })
            .collect();
        let total: usize = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in &mut chunks {
            out.append(c);
        }
        out
    }

    fn enum_dfs(
        &self,
        slot: usize,
        base: u64,
        last: usize,
        scratch: &mut [i64],
        out: &mut Vec<u64>,
    ) {
        if slot > last {
            // Every restriction is checked; the remaining slots are free, and
            // their completions form one contiguous index range.
            out.extend(base..base + self.strides[last]);
            return;
        }
        for (pos, &v) in self.params[slot].values.iter().enumerate() {
            scratch[slot] = v;
            let b = base + pos as u64 * self.strides[slot];
            if self.bucket_ok(&self.engine.bucket_of_slot[slot], scratch) {
                self.enum_dfs(slot + 1, b, last, scratch, out);
            }
        }
    }

    /// Radix (value count) of each parameter.
    pub fn radices(&self) -> Vec<usize> {
        self.params.iter().map(Param::len).collect()
    }

    /// Mixed-radix stride of parameter slot `i`.
    #[inline]
    pub fn stride(&self, i: usize) -> u64 {
        self.strides[i]
    }

    /// A copy of this space with the given parameters pinned to fixed values
    /// and all restrictions retained (used for Table VIII's "Reduced" and
    /// "Reduce-Constrained" columns).
    pub fn pinned(&self, pins: &[(&str, i64)]) -> Result<ConfigSpace, SpaceError> {
        let mut b = ConfigSpace::builder();
        for p in &self.params {
            if let Some((_, v)) = pins.iter().find(|(n, _)| *n == p.name) {
                b = b.param(p.pinned(*v));
            } else {
                b = b.param(p.clone());
            }
        }
        for r in &self.restrictions {
            b = b.restrict(&r.source);
        }
        b.build()
    }
}

struct Component {
    params: Vec<usize>,
    restrictions: Vec<usize>,
}

/// Iterator over all configurations of a space in index order.
pub struct ConfigIter<'a> {
    space: &'a ConfigSpace,
    next: u64,
    scratch: Vec<i64>,
}

impl Iterator for ConfigIter<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.space.cardinality() {
            return None;
        }
        self.space.decode_into(self.next, &mut self.scratch);
        self.next += 1;
        Some(self.scratch.clone())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.space.cardinality() - self.next) as usize;
        (rem, Some(rem))
    }
}

/// Builder for [`ConfigSpace`].
#[derive(Default)]
pub struct ConfigSpaceBuilder {
    params: Vec<Param>,
    restriction_sources: Vec<String>,
}

impl ConfigSpaceBuilder {
    /// Add a parameter.
    pub fn param(mut self, p: Param) -> Self {
        self.params.push(p);
        self
    }

    /// Add a restriction expression (parsed at [`ConfigSpaceBuilder::build`]).
    pub fn restrict(mut self, source: &str) -> Self {
        self.restriction_sources.push(source.to_string());
        self
    }

    /// Finalize the space.
    pub fn build(self) -> Result<ConfigSpace, SpaceError> {
        if self.params.is_empty() {
            return Err(SpaceError::Empty);
        }
        let names: Vec<String> = self.params.iter().map(|p| p.name.clone()).collect();
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(SpaceError::DuplicateParam(n.clone()));
            }
        }
        let mut restrictions = Vec::with_capacity(self.restriction_sources.len());
        for source in self.restriction_sources {
            let expr = parse(&source).map_err(|error| SpaceError::Parse {
                source: source.clone(),
                error,
            })?;
            let compiled =
                CompiledExpr::compile(&expr, &names).map_err(|error| SpaceError::Compile {
                    source: source.clone(),
                    error,
                })?;
            restrictions.push(Restriction { source, compiled });
        }
        let mut strides = vec![1u64; self.params.len()];
        let mut acc = 1u64;
        for i in (0..self.params.len()).rev() {
            strides[i] = acc;
            acc = acc
                .checked_mul(self.params[i].len() as u64)
                .expect("space cardinality exceeds u64");
        }
        let engine = EnumEngine::build(&self.params, &restrictions);
        let inv_strides: Vec<f64> = strides.iter().map(|&s| 1.0 / s as f64).collect();
        let radices: Vec<u64> = self.params.iter().map(|p| p.len() as u64).collect();
        Ok(ConfigSpace {
            params: self.params,
            names,
            restrictions,
            strides,
            inv_strides,
            radices,
            decode_fast: acc <= (1 << 52),
            cardinality: acc,
            engine,
        })
    }
}

/// Serializable description of a space (restrictions as source strings).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSpec {
    /// Parameter definitions.
    pub params: Vec<Param>,
    /// Restriction expression strings.
    pub restrictions: Vec<String>,
}

impl From<&ConfigSpace> for SpaceSpec {
    fn from(s: &ConfigSpace) -> Self {
        SpaceSpec {
            params: s.params.to_vec(),
            restrictions: s.restrictions.iter().map(|r| r.source.clone()).collect(),
        }
    }
}

impl TryFrom<SpaceSpec> for ConfigSpace {
    type Error = SpaceError;

    fn try_from(spec: SpaceSpec) -> Result<Self, Self::Error> {
        let mut b = ConfigSpace::builder();
        for p in spec.params {
            b = b.param(p);
        }
        for r in &spec.restrictions {
            b = b.restrict(r);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4]))
            .param(Param::new("b", vec![1, 2]))
            .param(Param::new("c", vec![0, 1]))
            .restrict("a * b <= 4")
            .build()
            .unwrap()
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(small_space().cardinality(), 12);
    }

    #[test]
    fn index_bijection_round_trips() {
        let s = small_space();
        for idx in 0..s.cardinality() {
            let cfg = s.config_at(idx);
            assert_eq!(s.index_of(&cfg), Some(idx));
        }
    }

    #[test]
    fn index_of_rejects_non_candidate_values() {
        let s = small_space();
        assert_eq!(s.index_of(&[3, 1, 0]), None);
    }

    #[test]
    fn validity_matches_expression() {
        let s = small_space();
        assert!(s.is_valid(&[2, 2, 0])); // 4 <= 4
        assert!(!s.is_valid(&[4, 2, 1])); // 8 > 4
    }

    #[test]
    fn count_valid_brute_and_factored_agree() {
        let s = small_space();
        // valid (a,b): (1,1),(1,2),(2,1),(2,2),(4,1) = 5; times c (2) = 10
        assert_eq!(s.count_valid(), 10);
        assert_eq!(s.count_valid_brute(), 10);
        assert_eq!(s.count_valid_factored(), 10);
    }

    #[test]
    fn factored_counting_handles_disjoint_groups() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3]))
            .param(Param::new("b", vec![1, 2, 3]))
            .param(Param::new("c", vec![1, 2, 3]))
            .param(Param::new("d", vec![1, 2, 3]))
            .restrict("a >= b")
            .restrict("c != 2")
            .build()
            .unwrap();
        // (a>=b): 6 of 9; (c!=2): 2 of 3; d free: 3 -> 6*2*3 = 36
        assert_eq!(s.count_valid(), 36);
        assert_eq!(s.count_valid_brute(), 36);
        assert_eq!(s.count_valid_factored(), 36);
    }

    #[test]
    fn valid_indices_are_sorted_and_valid() {
        let s = small_space();
        let v = s.valid_indices();
        assert_eq!(v.len(), 10);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&i| s.is_valid_index(i)));
    }

    #[test]
    fn selectivity_orders_active_most_selective_first() {
        // "b == 0" passes 1/3 of assignments; "a <= 3" passes 3/4. The
        // engine must schedule the rarer restriction first even though it
        // was declared second.
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3, 4]))
            .param(Param::new("b", vec![0, 1, 2]))
            .restrict("a <= 3")
            .restrict("b == 0")
            .build()
            .unwrap();
        assert_eq!(s.engine.active, vec![1, 0]);
    }

    #[test]
    fn reordered_validity_matches_declaration_order() {
        // The selectivity reordering must be invisible: for every index,
        // `is_valid` equals evaluating all restrictions in declaration
        // order (an `all()` conjunction is order-neutral).
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3, 4]))
            .param(Param::new("b", vec![0, 1, 2]))
            .param(Param::new("c", vec![1, 2]))
            .restrict("a + b <= 4")
            .restrict("c == 1")
            .restrict("a * c != 4")
            .build()
            .unwrap();
        let mut scratch = vec![0i64; 3];
        for idx in 0..s.cardinality() {
            s.decode_into(idx, &mut scratch);
            let declared =
                (0..s.restrictions.len()).all(|ri| s.engine.programs[ri].eval_bool(&scratch));
            assert_eq!(s.is_valid(&scratch), declared, "index {idx}");
        }
    }

    #[test]
    fn validity_split_partitions_by_interpreter_class() {
        // Divisibility via `%` is pure integer work; true division
        // promotes. The engine must put each in the right chain, and the
        // split evaluation must equal the declaration-order conjunction on
        // every configuration.
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3, 4, 6, 8]))
            .param(Param::new("b", vec![1, 2, 3, 4]))
            .restrict("a % b == 0")
            .restrict("a / b <= 3")
            .restrict("a + b <= 10")
            .build()
            .unwrap();
        assert!(s.engine.valid_pure.is_some(), "modulo/sum chain exists");
        assert!(s.engine.valid_guarded.is_some(), "division chain exists");
        assert!(s.engine.valid_pure.as_ref().unwrap().is_pure_int());
        assert!(!s.engine.valid_guarded.as_ref().unwrap().is_pure_int());
        let mut scratch = vec![0i64; 2];
        for idx in 0..s.cardinality() {
            s.decode_into(idx, &mut scratch);
            let declared =
                (0..s.restrictions.len()).all(|ri| s.engine.programs[ri].eval_bool(&scratch));
            assert_eq!(s.is_valid(&scratch), declared, "index {idx}");
        }
    }

    #[test]
    fn all_pure_restrictions_leave_no_guarded_chain() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![16, 32, 64]))
            .param(Param::new("b", vec![1, 2, 4]))
            .restrict("a % b == 0")
            .restrict("a * b <= 128")
            .build()
            .unwrap();
        assert!(s.engine.valid_pure.is_some());
        assert!(s.engine.valid_guarded.is_none());
    }

    #[test]
    fn valid_indices_match_brute_force_on_mixed_buckets() {
        // Restrictions attach to different highest slots, including one on
        // the first slot and one spanning first and last.
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3, 4]))
            .param(Param::new("b", vec![0, 1, 2]))
            .param(Param::new("c", vec![1, 2]))
            .param(Param::new("d", vec![0, 1, 2]))
            .restrict("a != 3")
            .restrict("a + b <= 4")
            .restrict("a * d != 4")
            .build()
            .unwrap();
        let brute: Vec<u64> = (0..s.cardinality())
            .filter(|&i| s.is_valid_index(i))
            .collect();
        assert_eq!(s.valid_indices(), brute);
        assert_eq!(s.count_valid(), brute.len() as u64);
        assert_eq!(s.count_valid_brute(), brute.len() as u64);
        assert_eq!(s.count_valid_factored(), brute.len() as u64);
    }

    #[test]
    fn trivial_restrictions_are_folded_out() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3]))
            .param(Param::new("b", vec![1, 2]))
            .restrict("1 + 1 == 2") // always true: dropped from the hot path
            .restrict("a >= 1 or b >= 100") // also always true, but not constant
            .build()
            .unwrap();
        assert_eq!(s.engine().active.len(), 1);
        assert_eq!(s.restrictions().len(), 2, "sources are preserved");
        assert_eq!(s.count_valid(), 6);
        assert_eq!(s.count_valid_brute(), 6);
    }

    #[test]
    fn always_false_restriction_empties_the_space() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3]))
            .restrict("1 == 2")
            .build()
            .unwrap();
        assert_eq!(s.count_valid(), 0);
        assert_eq!(s.count_valid_brute(), 0);
        assert_eq!(s.count_valid_factored(), 0);
        assert!(s.valid_indices().is_empty());
        assert!(!s.is_valid(&[1]));
    }

    #[test]
    fn scratch_validity_variant_agrees() {
        let s = small_space();
        let mut scratch = vec![0i64; s.num_params()];
        for idx in 0..s.cardinality() {
            assert_eq!(
                s.is_valid_index(idx),
                s.is_valid_index_into(idx, &mut scratch)
            );
        }
    }

    #[test]
    fn builder_rejects_duplicates_and_unknowns() {
        let err = ConfigSpace::builder()
            .param(Param::boolean("x"))
            .param(Param::boolean("x"))
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::DuplicateParam(_)));

        let err = ConfigSpace::builder()
            .param(Param::boolean("x"))
            .restrict("y == 1")
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::Compile { .. }));
    }

    #[test]
    fn pinning_preserves_restrictions() {
        let s = small_space();
        let pinned = s.pinned(&[("b", 2)]).unwrap();
        assert_eq!(pinned.cardinality(), 6);
        // a*b<=4 with b=2 -> a in {1,2}: 2 of 3, times c: 4
        assert_eq!(pinned.count_valid(), 4);
    }

    #[test]
    fn spec_round_trip() {
        let s = small_space();
        let spec = SpaceSpec::from(&s);
        let back = ConfigSpace::try_from(spec).unwrap();
        assert_eq!(back.cardinality(), s.cardinality());
        assert_eq!(back.count_valid(), s.count_valid());
    }

    #[test]
    fn iter_visits_every_config_once() {
        let s = small_space();
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }
}
