//! Configuration spaces: the cartesian product of parameters plus a
//! restriction set, with a mixed-radix index bijection.

use std::fmt;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::expr::{parse, CompiledExpr, EvalError, ParseError};
use crate::param::Param;

/// A parsed restriction together with its source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Restriction {
    /// The original expression string (kept for display/serialization).
    pub source: String,
    /// Compiled form with parameter slots resolved.
    pub compiled: CompiledExpr,
}

/// Error constructing a [`ConfigSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// Two parameters share a name.
    DuplicateParam(String),
    /// A restriction failed to parse.
    Parse {
        /// The restriction source text.
        source: String,
        /// The underlying parse error.
        error: ParseError,
    },
    /// A restriction references an unknown parameter.
    Compile {
        /// The restriction source text.
        source: String,
        /// The underlying resolution error.
        error: EvalError,
    },
    /// The space has no parameters.
    Empty,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateParam(n) => write!(f, "duplicate parameter name {n:?}"),
            SpaceError::Parse { source, error } => {
                write!(f, "failed to parse restriction {source:?}: {error}")
            }
            SpaceError::Compile { source, error } => {
                write!(f, "failed to compile restriction {source:?}: {error}")
            }
            SpaceError::Empty => f.write_str("configuration space has no parameters"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// A discrete configuration space: parameters × restrictions.
///
/// Configurations are identified either by their value vector (`&[i64]`,
/// aligned with [`ConfigSpace::params`]) or by a dense mixed-radix index in
/// `0..cardinality()`. The index bijection makes uniform sampling and
/// neighbour arithmetic O(#params) without hashing.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    params: Vec<Param>,
    names: Vec<String>,
    restrictions: Vec<Restriction>,
    /// Mixed-radix strides: `strides[i]` = product of radices of params after i.
    strides: Vec<u64>,
    cardinality: u64,
}

impl ConfigSpace {
    /// Start building a space.
    pub fn builder() -> ConfigSpaceBuilder {
        ConfigSpaceBuilder::default()
    }

    /// The parameters, in slot order.
    #[inline]
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Parameter names, in slot order.
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of parameters.
    #[inline]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Slot index of the parameter named `name`.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The restriction set.
    #[inline]
    pub fn restrictions(&self) -> &[Restriction] {
        &self.restrictions
    }

    /// Total number of configurations in the unrestricted cartesian product
    /// (the paper's "Cardinality" column in Table VIII).
    #[inline]
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Decode a dense index into a fresh configuration vector.
    pub fn config_at(&self, index: u64) -> Vec<i64> {
        let mut out = vec![0; self.params.len()];
        self.decode_into(index, &mut out);
        out
    }

    /// Decode a dense index into `out` (no allocation; `out.len()` must equal
    /// the number of parameters).
    #[inline]
    pub fn decode_into(&self, index: u64, out: &mut [i64]) {
        debug_assert!(index < self.cardinality, "index out of range");
        debug_assert_eq!(out.len(), self.params.len());
        let mut rem = index;
        for (i, p) in self.params.iter().enumerate() {
            let pos = (rem / self.strides[i]) as usize;
            rem %= self.strides[i];
            out[i] = p.values[pos];
        }
    }

    /// Encode a configuration into its dense index. Returns `None` if any
    /// value is not a candidate value of its parameter.
    pub fn index_of(&self, config: &[i64]) -> Option<u64> {
        assert_eq!(config.len(), self.params.len());
        let mut idx = 0u64;
        for (i, p) in self.params.iter().enumerate() {
            let pos = p.position(config[i])? as u64;
            idx += pos * self.strides[i];
        }
        Some(idx)
    }

    /// Evaluate the restriction set on a configuration.
    #[inline]
    pub fn is_valid(&self, config: &[i64]) -> bool {
        self.restrictions
            .iter()
            .all(|r| r.compiled.eval_bool(config))
    }

    /// Like [`ConfigSpace::is_valid`] but for a dense index.
    pub fn is_valid_index(&self, index: u64) -> bool {
        let mut scratch = vec![0; self.params.len()];
        self.decode_into(index, &mut scratch);
        self.is_valid(&scratch)
    }

    /// Iterate over all configurations (restricted or not) in index order.
    pub fn iter(&self) -> ConfigIter<'_> {
        ConfigIter {
            space: self,
            next: 0,
            scratch: vec![0; self.params.len()],
        }
    }

    /// Count configurations satisfying the restriction set, by brute force,
    /// in parallel. Exact, but O(cardinality).
    pub fn count_valid(&self) -> u64 {
        if self.restrictions.is_empty() {
            return self.cardinality;
        }
        const CHUNK: u64 = 1 << 16;
        let n_chunks = self.cardinality.div_ceil(CHUNK);
        (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * CHUNK;
                let end = (start + CHUNK).min(self.cardinality);
                let mut scratch = vec![0i64; self.params.len()];
                let mut count = 0u64;
                for idx in start..end {
                    self.decode_into(idx, &mut scratch);
                    if self.is_valid(&scratch) {
                        count += 1;
                    }
                }
                count
            })
            .sum()
    }

    /// Count valid configurations by factoring the space into connected
    /// components of the restriction/parameter graph and multiplying the
    /// per-component counts. Exact and usually orders of magnitude faster
    /// than [`ConfigSpace::count_valid`] (e.g. the 1.2×10⁸-point
    /// Dedispersion space factors into small groups).
    pub fn count_valid_factored(&self) -> u64 {
        if self.restrictions.is_empty() {
            return self.cardinality;
        }
        let components = self.constraint_components();
        let mut total: u128 = 1;
        let mut constrained: Vec<bool> = vec![false; self.params.len()];
        for comp in &components {
            for &p in &comp.params {
                constrained[p] = true;
            }
            total *= u128::from(self.count_component(comp));
        }
        for (i, p) in self.params.iter().enumerate() {
            if !constrained[i] {
                total *= p.len() as u128;
            }
        }
        u64::try_from(total).expect("valid count exceeds u64")
    }

    /// Group restrictions into connected components over the parameters they
    /// touch.
    fn constraint_components(&self) -> Vec<Component> {
        // Union-find over parameter slots.
        let n = self.params.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let slot_sets: Vec<Vec<usize>> = self
            .restrictions
            .iter()
            .map(|r| r.compiled.slots())
            .collect();
        for slots in &slot_sets {
            if let Some(&first) = slots.first() {
                for &s in &slots[1..] {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, s));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        // Group restrictions by the root of their (connected) parameter set.
        let mut comps: Vec<Component> = Vec::new();
        let mut root_to_comp: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (ri, slots) in slot_sets.iter().enumerate() {
            if slots.is_empty() {
                // A constant restriction applies globally; treat as its own
                // component over zero params (evaluates once).
                comps.push(Component {
                    params: Vec::new(),
                    restrictions: vec![ri],
                });
                continue;
            }
            let root = find(&mut parent, slots[0]);
            let ci = *root_to_comp.entry(root).or_insert_with(|| {
                comps.push(Component {
                    params: Vec::new(),
                    restrictions: Vec::new(),
                });
                comps.len() - 1
            });
            comps[ci].restrictions.push(ri);
        }
        for p in 0..n {
            let root = find(&mut parent, p);
            if let Some(&ci) = root_to_comp.get(&root) {
                if !comps[ci].params.contains(&p) {
                    comps[ci].params.push(p);
                }
            }
        }
        comps
    }

    /// Count assignments of a component's parameters satisfying its
    /// restrictions (other parameters held at their first value — they are
    /// never read by these restrictions).
    fn count_component(&self, comp: &Component) -> u64 {
        let mut scratch: Vec<i64> = self.params.iter().map(|p| p.values[0]).collect();
        if comp.params.is_empty() {
            let ok = comp
                .restrictions
                .iter()
                .all(|&ri| self.restrictions[ri].compiled.eval_bool(&scratch));
            return u64::from(ok);
        }
        let radices: Vec<usize> = comp.params.iter().map(|&p| self.params[p].len()).collect();
        let total: u64 = radices.iter().map(|&r| r as u64).product();
        let mut count = 0u64;
        let mut digits = vec![0usize; comp.params.len()];
        for _ in 0..total {
            for (d, &p) in digits.iter().zip(&comp.params) {
                scratch[p] = self.params[p].values[*d];
            }
            if comp
                .restrictions
                .iter()
                .all(|&ri| self.restrictions[ri].compiled.eval_bool(&scratch))
            {
                count += 1;
            }
            // Increment mixed-radix digits.
            for i in (0..digits.len()).rev() {
                digits[i] += 1;
                if digits[i] < radices[i] {
                    break;
                }
                digits[i] = 0;
            }
        }
        count
    }

    /// Enumerate the dense indices of all valid configurations, in parallel.
    /// Intended for spaces small enough to exhaust (the paper exhausts
    /// Pnpoly, Nbody, GEMM and Convolution).
    pub fn valid_indices(&self) -> Vec<u64> {
        const CHUNK: u64 = 1 << 14;
        let n_chunks = self.cardinality.div_ceil(CHUNK);
        let mut chunks: Vec<Vec<u64>> = (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * CHUNK;
                let end = (start + CHUNK).min(self.cardinality);
                let mut scratch = vec![0i64; self.params.len()];
                let mut out = Vec::new();
                for idx in start..end {
                    self.decode_into(idx, &mut scratch);
                    if self.is_valid(&scratch) {
                        out.push(idx);
                    }
                }
                out
            })
            .collect();
        let total: usize = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in &mut chunks {
            out.append(c);
        }
        out
    }

    /// Radix (value count) of each parameter.
    pub fn radices(&self) -> Vec<usize> {
        self.params.iter().map(Param::len).collect()
    }

    /// Mixed-radix stride of parameter slot `i`.
    #[inline]
    pub fn stride(&self, i: usize) -> u64 {
        self.strides[i]
    }

    /// A copy of this space with the given parameters pinned to fixed values
    /// and all restrictions retained (used for Table VIII's "Reduced" and
    /// "Reduce-Constrained" columns).
    pub fn pinned(&self, pins: &[(&str, i64)]) -> Result<ConfigSpace, SpaceError> {
        let mut b = ConfigSpace::builder();
        for p in &self.params {
            if let Some((_, v)) = pins.iter().find(|(n, _)| *n == p.name) {
                b = b.param(p.pinned(*v));
            } else {
                b = b.param(p.clone());
            }
        }
        for r in &self.restrictions {
            b = b.restrict(&r.source);
        }
        b.build()
    }
}

struct Component {
    params: Vec<usize>,
    restrictions: Vec<usize>,
}

/// Iterator over all configurations of a space in index order.
pub struct ConfigIter<'a> {
    space: &'a ConfigSpace,
    next: u64,
    scratch: Vec<i64>,
}

impl Iterator for ConfigIter<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.space.cardinality() {
            return None;
        }
        self.space.decode_into(self.next, &mut self.scratch);
        self.next += 1;
        Some(self.scratch.clone())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.space.cardinality() - self.next) as usize;
        (rem, Some(rem))
    }
}

/// Builder for [`ConfigSpace`].
#[derive(Default)]
pub struct ConfigSpaceBuilder {
    params: Vec<Param>,
    restriction_sources: Vec<String>,
}

impl ConfigSpaceBuilder {
    /// Add a parameter.
    pub fn param(mut self, p: Param) -> Self {
        self.params.push(p);
        self
    }

    /// Add a restriction expression (parsed at [`ConfigSpaceBuilder::build`]).
    pub fn restrict(mut self, source: &str) -> Self {
        self.restriction_sources.push(source.to_string());
        self
    }

    /// Finalize the space.
    pub fn build(self) -> Result<ConfigSpace, SpaceError> {
        if self.params.is_empty() {
            return Err(SpaceError::Empty);
        }
        let names: Vec<String> = self.params.iter().map(|p| p.name.clone()).collect();
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(SpaceError::DuplicateParam(n.clone()));
            }
        }
        let mut restrictions = Vec::with_capacity(self.restriction_sources.len());
        for source in self.restriction_sources {
            let expr = parse(&source).map_err(|error| SpaceError::Parse {
                source: source.clone(),
                error,
            })?;
            let compiled =
                CompiledExpr::compile(&expr, &names).map_err(|error| SpaceError::Compile {
                    source: source.clone(),
                    error,
                })?;
            restrictions.push(Restriction { source, compiled });
        }
        let mut strides = vec![1u64; self.params.len()];
        let mut acc = 1u64;
        for i in (0..self.params.len()).rev() {
            strides[i] = acc;
            acc = acc
                .checked_mul(self.params[i].len() as u64)
                .expect("space cardinality exceeds u64");
        }
        Ok(ConfigSpace {
            params: self.params,
            names,
            restrictions,
            strides,
            cardinality: acc,
        })
    }
}

/// Serializable description of a space (restrictions as source strings).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSpec {
    /// Parameter definitions.
    pub params: Vec<Param>,
    /// Restriction expression strings.
    pub restrictions: Vec<String>,
}

impl From<&ConfigSpace> for SpaceSpec {
    fn from(s: &ConfigSpace) -> Self {
        SpaceSpec {
            params: s.params.to_vec(),
            restrictions: s.restrictions.iter().map(|r| r.source.clone()).collect(),
        }
    }
}

impl TryFrom<SpaceSpec> for ConfigSpace {
    type Error = SpaceError;

    fn try_from(spec: SpaceSpec) -> Result<Self, Self::Error> {
        let mut b = ConfigSpace::builder();
        for p in spec.params {
            b = b.param(p);
        }
        for r in &spec.restrictions {
            b = b.restrict(r);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ConfigSpace {
        ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 4]))
            .param(Param::new("b", vec![1, 2]))
            .param(Param::new("c", vec![0, 1]))
            .restrict("a * b <= 4")
            .build()
            .unwrap()
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(small_space().cardinality(), 12);
    }

    #[test]
    fn index_bijection_round_trips() {
        let s = small_space();
        for idx in 0..s.cardinality() {
            let cfg = s.config_at(idx);
            assert_eq!(s.index_of(&cfg), Some(idx));
        }
    }

    #[test]
    fn index_of_rejects_non_candidate_values() {
        let s = small_space();
        assert_eq!(s.index_of(&[3, 1, 0]), None);
    }

    #[test]
    fn validity_matches_expression() {
        let s = small_space();
        assert!(s.is_valid(&[2, 2, 0])); // 4 <= 4
        assert!(!s.is_valid(&[4, 2, 1])); // 8 > 4
    }

    #[test]
    fn count_valid_brute_and_factored_agree() {
        let s = small_space();
        // valid (a,b): (1,1),(1,2),(2,1),(2,2),(4,1) = 5; times c (2) = 10
        assert_eq!(s.count_valid(), 10);
        assert_eq!(s.count_valid_factored(), 10);
    }

    #[test]
    fn factored_counting_handles_disjoint_groups() {
        let s = ConfigSpace::builder()
            .param(Param::new("a", vec![1, 2, 3]))
            .param(Param::new("b", vec![1, 2, 3]))
            .param(Param::new("c", vec![1, 2, 3]))
            .param(Param::new("d", vec![1, 2, 3]))
            .restrict("a >= b")
            .restrict("c != 2")
            .build()
            .unwrap();
        // (a>=b): 6 of 9; (c!=2): 2 of 3; d free: 3 -> 6*2*3 = 36
        assert_eq!(s.count_valid(), 36);
        assert_eq!(s.count_valid_factored(), 36);
    }

    #[test]
    fn valid_indices_are_sorted_and_valid() {
        let s = small_space();
        let v = s.valid_indices();
        assert_eq!(v.len(), 10);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&i| s.is_valid_index(i)));
    }

    #[test]
    fn builder_rejects_duplicates_and_unknowns() {
        let err = ConfigSpace::builder()
            .param(Param::boolean("x"))
            .param(Param::boolean("x"))
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::DuplicateParam(_)));

        let err = ConfigSpace::builder()
            .param(Param::boolean("x"))
            .restrict("y == 1")
            .build()
            .unwrap_err();
        assert!(matches!(err, SpaceError::Compile { .. }));
    }

    #[test]
    fn pinning_preserves_restrictions() {
        let s = small_space();
        let pinned = s.pinned(&[("b", 2)]).unwrap();
        assert_eq!(pinned.cardinality(), 6);
        // a*b<=4 with b=2 -> a in {1,2}: 2 of 3, times c: 4
        assert_eq!(pinned.count_valid(), 4);
    }

    #[test]
    fn spec_round_trip() {
        let s = small_space();
        let spec = SpaceSpec::from(&s);
        let back = ConfigSpace::try_from(spec).unwrap();
        assert_eq!(back.cardinality(), s.cardinality());
        assert_eq!(back.count_valid(), s.count_valid());
    }

    #[test]
    fn iter_visits_every_config_once() {
        let s = small_space();
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }
}
