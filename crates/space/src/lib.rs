//! # bat-space
//!
//! Discrete tunable-parameter spaces for the BAT-rs kernel-tuner benchmarking
//! suite: parameter definitions, a Python-like restriction expression
//! language, a mixed-radix configuration↔index bijection, neighbourhoods,
//! exact counting/enumeration, and random sampling.
//!
//! This crate is the data model behind the paper's "standardized problem
//! interface": a benchmark declares its space as parameters plus restriction
//! strings, and every tuner consumes the same [`ConfigSpace`].
//!
//! ## The enumeration engine
//!
//! Restriction checking is the hottest path in the suite — counting the
//! Dedispersion space alone means examining up to 1.2×10⁸ candidate
//! configurations. Two layers keep it fast:
//!
//! 1. **Bytecode VM** ([`expr::Program`]): at build time every restriction
//!    is constant-folded ([`expr::fold`]) and flattened into a contiguous
//!    postfix instruction buffer with jump-based short-circuiting, replacing
//!    the `Box`-chasing tree walk with a tight dispatch loop and zero
//!    per-evaluation allocation. Restrictions that fold to a constant leave
//!    the hot path entirely: always-true ones are dropped, an always-false
//!    one empties the space without enumerating anything.
//! 2. **Prefix-pruned odometer** ([`ConfigSpace::count_valid`],
//!    [`ConfigSpace::valid_indices`], and the factored counter's
//!    per-component walks): parameters are visited in slot order and every
//!    restriction is evaluated as soon as its highest slot is assigned, so a
//!    failing prefix skips all of its completions at once; parameters no
//!    restriction reads are never enumerated (they contribute a stride
//!    multiplier, and enumeration emits them as contiguous index ranges).
//!    The same per-slot restriction buckets let
//!    [`Neighborhood::valid_neighbor_indices`](Neighborhood) validate a
//!    neighbour by patching a single slot and re-checking only the
//!    restrictions touching it.
//!
//! Measured on the paper's spaces (single-core host, release build):
//! counting Dedispersion takes ~50 µs pruned vs ~6.8 s brute force
//! (≈10⁵×), Hotspot ~0.7 ms vs ~1.0 s (≈1400×), GEMM ~0.7 ms vs ~8.5 ms
//! (≈12×), with the VM evaluating restriction sets ~1.5× faster than the
//! tree walk. [`ConfigSpace::count_valid_brute`] retains the exhaustive
//! parallel path as the reference the pruned engine is verified against
//! (`tests/property_based.rs` proves count/enumeration equivalence, and VM ≡
//! tree-walk, on randomized inputs).
//!
//! ```
//! use bat_space::{ConfigSpace, Param};
//!
//! let space = ConfigSpace::builder()
//!     .param(Param::pow2("MWG", 16, 128))
//!     .param(Param::new("MDIMC", vec![8, 16, 32]))
//!     .param(Param::new("VWM", vec![1, 2, 4, 8]))
//!     .restrict("MWG % (MDIMC * VWM) == 0")
//!     .build()
//!     .unwrap();
//! assert_eq!(space.cardinality(), 48);
//! assert_eq!(space.count_valid(), space.count_valid_factored());
//! ```

#![warn(missing_docs)]

pub mod expr;
mod neighbors;
mod param;
mod sample;
mod space;
mod value;

pub use neighbors::Neighborhood;
pub use param::Param;
pub use sample::{
    sample_indices, sample_indices_distinct, sample_one_valid, sample_valid_indices,
    sample_valid_indices_distinct,
};
pub use space::{ConfigIter, ConfigSpace, ConfigSpaceBuilder, Restriction, SpaceError, SpaceSpec};
pub use value::Num;
