//! # bat-space
//!
//! Discrete tunable-parameter spaces for the BAT-rs kernel-tuner benchmarking
//! suite: parameter definitions, a Python-like restriction expression
//! language, a mixed-radix configuration↔index bijection, neighbourhoods,
//! exact (parallel and factored) counting, and random sampling.
//!
//! This crate is the data model behind the paper's "standardized problem
//! interface": a benchmark declares its space as parameters plus restriction
//! strings, and every tuner consumes the same [`ConfigSpace`].
//!
//! ```
//! use bat_space::{ConfigSpace, Param};
//!
//! let space = ConfigSpace::builder()
//!     .param(Param::pow2("MWG", 16, 128))
//!     .param(Param::new("MDIMC", vec![8, 16, 32]))
//!     .param(Param::new("VWM", vec![1, 2, 4, 8]))
//!     .restrict("MWG % (MDIMC * VWM) == 0")
//!     .build()
//!     .unwrap();
//! assert_eq!(space.cardinality(), 48);
//! assert_eq!(space.count_valid(), space.count_valid_factored());
//! ```

#![warn(missing_docs)]

pub mod expr;
mod neighbors;
mod param;
mod sample;
mod space;
mod value;

pub use neighbors::Neighborhood;
pub use param::Param;
pub use sample::{
    sample_indices, sample_indices_distinct, sample_one_valid, sample_valid_indices,
    sample_valid_indices_distinct,
};
pub use space::{ConfigIter, ConfigSpace, ConfigSpaceBuilder, Restriction, SpaceError, SpaceSpec};
pub use value::Num;
