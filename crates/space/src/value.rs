//! Numeric values used by the constraint expression language.
//!
//! Tunable parameters in BAT are integers, but restriction expressions use
//! Python semantics where `/` is *true division* and may produce fractions
//! (e.g. the CLBlast GEMM restriction `KWG % ((MDIMC*NDIMC)/MDIMA) == 0`).
//! [`Num`] mirrors that behaviour: integers stay exact until an operation
//! forces promotion to a float.

use std::fmt;

/// A number with Python-like promotion semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Exact integer.
    Int(i64),
    /// Double-precision float (result of true division or float literals).
    Float(f64),
}

// The arithmetic methods are deliberately named after the Python operators
// the restriction language evaluates (`add`, `div`, …); they are not the
// std::ops traits because their promotion/zero-division semantics differ.
#[allow(clippy::should_implement_trait)]
impl Num {
    /// The value as a float, regardless of representation.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Float(f) => f,
        }
    }

    /// The value as an integer if it is integral, `None` otherwise.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::Int(i) => Some(i),
            Num::Float(f) if f.fract() == 0.0 && f.abs() < i64::MAX as f64 => Some(f as i64),
            Num::Float(_) => None,
        }
    }

    /// Python truthiness: any non-zero value is true.
    #[inline]
    pub fn truthy(self) -> bool {
        match self {
            Num::Int(i) => i != 0,
            Num::Float(f) => f != 0.0,
        }
    }

    /// Addition with promotion.
    #[inline]
    pub fn add(self, rhs: Num) -> Num {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => Num::Int(a.wrapping_add(b)),
            (a, b) => Num::Float(a.as_f64() + b.as_f64()),
        }
    }

    /// Subtraction with promotion.
    #[inline]
    pub fn sub(self, rhs: Num) -> Num {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => Num::Int(a.wrapping_sub(b)),
            (a, b) => Num::Float(a.as_f64() - b.as_f64()),
        }
    }

    /// Multiplication with promotion.
    #[inline]
    pub fn mul(self, rhs: Num) -> Num {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => Num::Int(a.wrapping_mul(b)),
            (a, b) => Num::Float(a.as_f64() * b.as_f64()),
        }
    }

    /// Python 3 true division: always a float. Division by zero yields an
    /// error value (`NaN`), which makes every comparison false, matching the
    /// convention that a malformed restriction rejects the configuration.
    #[inline]
    pub fn div(self, rhs: Num) -> Num {
        let d = rhs.as_f64();
        if d == 0.0 {
            Num::Float(f64::NAN)
        } else {
            Num::Float(self.as_f64() / d)
        }
    }

    /// Python floor division `//`.
    #[inline]
    pub fn floordiv(self, rhs: Num) -> Num {
        match (self, rhs) {
            (Num::Int(_), Num::Int(0)) => Num::Float(f64::NAN),
            (Num::Int(a), Num::Int(b)) => Num::Int(a.div_euclid(b)),
            (a, b) => {
                let d = b.as_f64();
                if d == 0.0 {
                    Num::Float(f64::NAN)
                } else {
                    Num::Float((a.as_f64() / d).floor())
                }
            }
        }
    }

    /// Python modulo: the result takes the sign of the divisor.
    #[inline]
    pub fn rem(self, rhs: Num) -> Num {
        match (self, rhs) {
            (Num::Int(_), Num::Int(0)) => Num::Float(f64::NAN),
            (Num::Int(a), Num::Int(b)) => {
                let r = a % b;
                Num::Int(if r != 0 && (r < 0) != (b < 0) {
                    r + b
                } else {
                    r
                })
            }
            (a, b) => {
                let (x, y) = (a.as_f64(), b.as_f64());
                if y == 0.0 {
                    Num::Float(f64::NAN)
                } else {
                    let r = x % y;
                    Num::Float(if r != 0.0 && (r < 0.0) != (y < 0.0) {
                        r + y
                    } else {
                        r
                    })
                }
            }
        }
    }

    /// Exponentiation `**`. Integer result for non-negative integer exponents.
    #[inline]
    pub fn pow(self, rhs: Num) -> Num {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) if (0..=62).contains(&b) => {
                Num::Int(a.checked_pow(b as u32).unwrap_or(i64::MAX))
            }
            (a, b) => Num::Float(a.as_f64().powf(b.as_f64())),
        }
    }

    /// Arithmetic negation.
    #[inline]
    pub fn neg(self) -> Num {
        match self {
            Num::Int(i) => Num::Int(-i),
            Num::Float(f) => Num::Float(-f),
        }
    }

    /// Numeric comparison (promoting to floats when representations differ).
    #[inline]
    pub fn cmp_num(self, rhs: Num) -> Option<std::cmp::Ordering> {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => Some(a.cmp(&b)),
            (a, b) => a.as_f64().partial_cmp(&b.as_f64()),
        }
    }

    /// Numeric equality under promotion (`2 == 2.0` is true).
    #[inline]
    pub fn eq_num(self, rhs: Num) -> bool {
        self.cmp_num(rhs) == Some(std::cmp::Ordering::Equal)
    }
}

impl From<i64> for Num {
    fn from(v: i64) -> Self {
        Num::Int(v)
    }
}

impl From<f64> for Num {
    fn from(v: f64) -> Self {
        Num::Float(v)
    }
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Num::Int(i) => write!(f, "{i}"),
            Num::Float(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_stays_exact() {
        assert_eq!(Num::Int(7).add(Num::Int(5)), Num::Int(12));
        assert_eq!(Num::Int(7).mul(Num::Int(5)), Num::Int(35));
        assert_eq!(Num::Int(7).sub(Num::Int(5)), Num::Int(2));
    }

    #[test]
    fn true_division_promotes() {
        assert_eq!(Num::Int(7).div(Num::Int(2)), Num::Float(3.5));
        assert_eq!(Num::Int(8).div(Num::Int(2)), Num::Float(4.0));
    }

    #[test]
    fn floor_division_like_python() {
        assert_eq!(Num::Int(7).floordiv(Num::Int(2)), Num::Int(3));
        assert_eq!(Num::Int(-7).floordiv(Num::Int(2)), Num::Int(-4));
    }

    #[test]
    fn modulo_follows_divisor_sign() {
        assert_eq!(Num::Int(7).rem(Num::Int(3)), Num::Int(1));
        assert_eq!(Num::Int(-7).rem(Num::Int(3)), Num::Int(2));
        assert_eq!(Num::Int(7).rem(Num::Int(-3)), Num::Int(-2));
        // Float modulo used by the CLBlast GEMM restriction.
        let r = Num::Int(32).rem(Num::Float(2.0));
        assert!(r.eq_num(Num::Int(0)));
    }

    #[test]
    fn division_by_zero_is_nan_and_never_equal() {
        let r = Num::Int(32).rem(
            Num::Int(10)
                .div(Num::Int(0))
                .as_i64()
                .map(Num::Int)
                .unwrap_or(Num::Float(f64::NAN)),
        );
        assert!(!r.eq_num(Num::Int(0)));
        assert!(!Num::Int(1).div(Num::Int(0)).eq_num(Num::Float(f64::NAN)));
    }

    #[test]
    fn mixed_equality_promotes() {
        assert!(Num::Int(2).eq_num(Num::Float(2.0)));
        assert!(!Num::Int(2).eq_num(Num::Float(2.5)));
    }

    #[test]
    fn pow_integer_fast_path() {
        assert_eq!(Num::Int(2).pow(Num::Int(10)), Num::Int(1024));
        assert!(Num::Int(2)
            .pow(Num::Float(0.5))
            .eq_num(Num::Float(2f64.sqrt())));
    }

    #[test]
    fn truthiness() {
        assert!(Num::Int(3).truthy());
        assert!(!Num::Int(0).truthy());
        assert!(!Num::Float(0.0).truthy());
        assert!(Num::Float(0.1).truthy());
    }
}
