//! Tokenizer for restriction expressions.

use std::fmt;

/// Lexical token of the restriction language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Identifier (parameter name).
    Ident(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
}

/// Error produced while tokenizing.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` into a vector of tokens.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                if bytes.get(i + 1) == Some(&b'*') {
                    out.push(Token::StarStar);
                    i += 2;
                } else {
                    out.push(Token::Star);
                    i += 1;
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    out.push(Token::SlashSlash);
                    i += 2;
                } else {
                    out.push(Token::Slash);
                    i += 1;
                }
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Eq);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        msg: "single '=' (assignment) is not allowed; use '=='".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        msg: "expected '!='".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    let v: f64 = text.parse().map_err(|e| LexError {
                        pos: start,
                        msg: format!("bad float literal {text:?}: {e}"),
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|e| LexError {
                        pos: start,
                        msg: format!("bad int literal {text:?}: {e}"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                match &src[start..i] {
                    "and" => out.push(Token::And),
                    "or" => out.push(Token::Or),
                    "not" => out.push(Token::Not),
                    ident => out.push(Token::Ident(ident.to_string())),
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_idents() {
        let toks = lex("MWG % (MDIMC*VWM) == 0").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("MWG".into()),
                Token::Percent,
                Token::LParen,
                Token::Ident("MDIMC".into()),
                Token::Star,
                Token::Ident("VWM".into()),
                Token::RParen,
                Token::Eq,
                Token::Int(0),
            ]
        );
    }

    #[test]
    fn distinguishes_star_and_power() {
        assert_eq!(lex("a**b").unwrap()[1], Token::StarStar);
        assert_eq!(lex("a*b").unwrap()[1], Token::Star);
        assert_eq!(lex("a//b").unwrap()[1], Token::SlashSlash);
    }

    #[test]
    fn lexes_float_literals() {
        assert_eq!(lex("1.5").unwrap(), vec![Token::Float(1.5)]);
        assert_eq!(lex("10").unwrap(), vec![Token::Int(10)]);
    }

    #[test]
    fn keywords_are_not_idents() {
        assert_eq!(
            lex("a and not b or c").unwrap(),
            vec![
                Token::Ident("a".into()),
                Token::And,
                Token::Not,
                Token::Ident("b".into()),
                Token::Or,
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("a ! b").is_err());
    }
}
