//! Flat bytecode compilation of restriction expressions.
//!
//! [`CompiledExpr`] resolves names to slots but still evaluates by walking a
//! `Box`-linked tree — pointer chasing and branchy dispatch on the hottest
//! path in the suite (restriction checks run once per candidate
//! configuration; counting the Dedispersion space alone is 10⁸ of them).
//! [`Program`] flattens a compiled expression into one contiguous postfix
//! instruction buffer evaluated by a small stack machine:
//!
//! * constant subtrees are folded at compile time (via [`fold`]), so
//!   trivial restrictions cost zero or near-zero work per configuration;
//! * `and`/`or` short-circuit through explicit jumps, preserving the
//!   tree-walk's lazy evaluation order exactly;
//! * chained comparisons (`32 <= x*y <= 1024`) keep the running operand on
//!   the stack and bail out through a jump on the first failing link;
//! * evaluation uses a fixed-size stack buffer — zero heap allocation per
//!   call for every restriction in the suite.
//!
//! Semantics are identical to [`CompiledExpr::eval_num`] by construction:
//! every arithmetic instruction delegates to the same [`Num`] operations
//! (`tests/property_based.rs` proves equivalence on random expressions).

use super::ast::{BinOp, Builtin, CmpOp, UnOp};
use super::eval::CompiledExpr;
use crate::value::Num;

/// Stack slots reserved inline; programs needing more (none in the suite's
/// restriction sets) fall back to a heap buffer. Kept small: the buffer is
/// zero-initialized on every evaluation, so its size is per-eval overhead.
const INLINE_STACK: usize = 12;

/// One postfix instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a float constant.
    PushFloat(f64),
    /// Push `values[slot]`.
    Load(u32),
    /// Pop one value, push its arithmetic negation.
    Neg,
    /// Pop one value, push `!truthy` as 0/1.
    Not,
    /// Pop one value, push `truthy` as 0/1.
    Truthy,
    /// Pop rhs then lhs, push `lhs op rhs`.
    Bin(BinOp),
    /// Pop rhs then lhs, push the comparison result as 0/1.
    Cmp(CmpOp),
    /// Chained-comparison link: pop rhs then lhs; on success push rhs back
    /// and continue, on failure push 0 and jump to `end`.
    ChainCmp {
        /// Comparison operator of this link.
        op: CmpOp,
        /// Jump target (index into the instruction buffer) on failure.
        end: u32,
    },
    /// Short-circuit `and`: pop the lhs; if falsy push 0 and jump to `end`.
    JumpIfFalse(u32),
    /// Short-circuit `or`: pop the lhs; if truthy push 1 and jump to `end`.
    JumpIfTrue(u32),
    /// Pop one value, push its absolute value.
    Abs,
    /// Pop `n` values, push the minimum.
    Min(u32),
    /// Pop `n` values, push the maximum.
    Max(u32),
    /// Superinstruction: push `values[a] * values[b]` (peephole-fused
    /// `Load a; Load b; Bin(Mul)` — the dominant shape in real restriction
    /// sets, e.g. every CLBlast divisibility check).
    MulLL(u32, u32),
    /// Superinstruction: pop rhs then lhs, push `lhs % rhs == 0` as 0/1
    /// (peephole-fused `Bin(Mod); PushInt(0); Cmp(Eq)`). A zero rhs pushes
    /// 0, exactly like the unfused NaN-poisoned comparison.
    DivisibleBy,
}

/// Constant-fold a compiled expression: every subtree without slot
/// references is evaluated once, and short-circuit operators with constant
/// operands are simplified. Semantics-preserving (expressions are pure).
pub fn fold(expr: &CompiledExpr) -> CompiledExpr {
    fn num_to_expr(n: Num) -> CompiledExpr {
        match n {
            Num::Int(i) => CompiledExpr::Int(i),
            Num::Float(f) => CompiledExpr::Float(f),
        }
    }

    fn as_const(e: &CompiledExpr) -> Option<Num> {
        match e {
            CompiledExpr::Int(i) => Some(Num::Int(*i)),
            CompiledExpr::Float(f) => Some(Num::Float(*f)),
            _ => None,
        }
    }

    /// `not (not e)` — coerces to 0/1 exactly like the tree-walk's `and`/
    /// `or` result without evaluating the other (constant) operand.
    fn truthy_of(e: CompiledExpr) -> CompiledExpr {
        CompiledExpr::Unary(
            UnOp::Not,
            Box::new(CompiledExpr::Unary(UnOp::Not, Box::new(e))),
        )
    }

    match expr {
        CompiledExpr::Int(_) | CompiledExpr::Float(_) | CompiledExpr::Slot(_) => expr.clone(),
        CompiledExpr::Unary(op, e) => {
            let e = fold(e);
            if as_const(&e).is_some() {
                let folded = CompiledExpr::Unary(*op, Box::new(e));
                num_to_expr(folded.eval_num(&[]))
            } else {
                CompiledExpr::Unary(*op, Box::new(e))
            }
        }
        CompiledExpr::Binary(op, a, b) => {
            let a = fold(a);
            let b = fold(b);
            let (ca, cb) = (as_const(&a), as_const(&b));
            match op {
                BinOp::And => match (ca, cb) {
                    (Some(c), _) => {
                        if c.truthy() {
                            truthy_of(b)
                        } else {
                            CompiledExpr::Int(0)
                        }
                    }
                    // `a and FALSE` is always 0 because `a` is pure; `a and
                    // TRUE` is `truthy(a)`.
                    (None, Some(c)) => {
                        if c.truthy() {
                            truthy_of(a)
                        } else {
                            CompiledExpr::Int(0)
                        }
                    }
                    (None, None) => CompiledExpr::Binary(*op, Box::new(a), Box::new(b)),
                },
                BinOp::Or => match (ca, cb) {
                    (Some(c), _) => {
                        if c.truthy() {
                            CompiledExpr::Int(1)
                        } else {
                            truthy_of(b)
                        }
                    }
                    (None, Some(c)) => {
                        if c.truthy() {
                            CompiledExpr::Int(1)
                        } else {
                            truthy_of(a)
                        }
                    }
                    (None, None) => CompiledExpr::Binary(*op, Box::new(a), Box::new(b)),
                },
                _ => {
                    if ca.is_some() && cb.is_some() {
                        let folded = CompiledExpr::Binary(*op, Box::new(a), Box::new(b));
                        num_to_expr(folded.eval_num(&[]))
                    } else {
                        CompiledExpr::Binary(*op, Box::new(a), Box::new(b))
                    }
                }
            }
        }
        CompiledExpr::Compare(first, links) => {
            let first = fold(first);
            let links: Vec<(CmpOp, CompiledExpr)> =
                links.iter().map(|(op, e)| (*op, fold(e))).collect();
            let all_const =
                as_const(&first).is_some() && links.iter().all(|(_, e)| as_const(e).is_some());
            let folded = CompiledExpr::Compare(Box::new(first), links);
            if all_const {
                num_to_expr(folded.eval_num(&[]))
            } else {
                folded
            }
        }
        CompiledExpr::Call(b, args) => {
            let args: Vec<CompiledExpr> = args.iter().map(fold).collect();
            let all_const = args.iter().all(|a| as_const(a).is_some());
            let folded = CompiledExpr::Call(*b, args);
            if all_const {
                num_to_expr(folded.eval_num(&[]))
            } else {
                folded
            }
        }
    }
}

/// How a program may be evaluated on a raw `i64` stack (decided once at
/// compile time). See [`Program::run_int`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum IntMode {
    /// Contains float literals or a mix of promoting operators; always
    /// interpret over [`Num`].
    Num,
    /// No instruction can produce a float: plain wrapping `i64` arithmetic
    /// is exact [`Num`] semantics (bar zero divisors, which bail out).
    Pure,
    /// True division is the only float producer: run on `i64` restricted
    /// to exactly-representable values, bailing out when a division isn't
    /// exact.
    ExactDiv,
}

/// Largest magnitude exactly representable in an `f64` (2⁵³). The
/// [`IntMode::ExactDiv`] interpreter stays within this envelope so its
/// integer results are bit-equal to the promoted-float results of the
/// [`Num`] interpreter.
const EXACT_F64: i64 = 1 << 53;

/// A restriction compiled to flat bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
    max_stack: usize,
    int_mode: IntMode,
}

impl Program {
    /// Compile `expr` (folding constants first). The resulting program
    /// evaluates to the same [`Num`] as `expr.eval_num` for every input.
    pub fn compile(expr: &CompiledExpr) -> Program {
        Self::compile_prefolded(&fold(expr))
    }

    /// Compile an expression the caller has already passed through
    /// [`fold`], skipping the redundant second folding pass (used by the
    /// space build, which needs the folded tree for slot analysis anyway).
    pub(crate) fn compile_prefolded(folded: &CompiledExpr) -> Program {
        let mut ops = Vec::new();
        emit(folded, &mut ops);
        let ops = peephole(ops);
        let max_stack = simulate_stack(&ops);
        let has_float = ops.iter().any(|op| matches!(op, Op::PushFloat(_)));
        let has_div = ops.iter().any(|op| matches!(op, Op::Bin(BinOp::Div)));
        let has_inexact_int = ops
            .iter()
            .any(|op| matches!(op, Op::Bin(BinOp::FloorDiv | BinOp::Pow)));
        let int_mode = if has_float {
            IntMode::Num
        } else if !has_div {
            IntMode::Pure
        } else if !has_inexact_int {
            // Floor division and `**` disagree between their int and
            // promoted-float forms on edge inputs, so mixing them with true
            // division keeps the full interpreter.
            IntMode::ExactDiv
        } else {
            IntMode::Num
        };
        Program {
            ops,
            max_stack,
            int_mode,
        }
    }

    /// True when no instruction can produce a float: the program runs
    /// entirely on the wrapping-`i64` interpreter, with no 2⁵³ exactness
    /// guards and no division-exactness bailouts. The space build uses
    /// this to split the fused validity conjunction into a cheap pure
    /// prefix and a guarded suffix.
    pub(crate) fn is_pure_int(&self) -> bool {
        self.int_mode == IntMode::Pure
    }

    /// True when the program is a constant (the restriction never looks at
    /// the configuration). [`Program::const_value`] gives its value.
    pub fn is_const(&self) -> bool {
        matches!(self.ops.as_slice(), [Op::PushInt(_)] | [Op::PushFloat(_)])
    }

    /// The constant value of a [`Program::is_const`] program.
    pub fn const_value(&self) -> Option<Num> {
        match self.ops.as_slice() {
            [Op::PushInt(i)] => Some(Num::Int(*i)),
            [Op::PushFloat(f)] => Some(Num::Float(*f)),
            _ => None,
        }
    }

    /// Number of instructions (diagnostics/benchmarks).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program has no instructions (never produced by
    /// [`Program::compile`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluate to a number given configuration values (indexed by slot).
    #[inline]
    pub fn eval_num(&self, values: &[i64]) -> Num {
        if self.max_stack <= INLINE_STACK {
            let mut stack = [Num::Int(0); INLINE_STACK];
            self.run(values, &mut stack)
        } else {
            let mut stack = vec![Num::Int(0); self.max_stack];
            self.run(values, &mut stack)
        }
    }

    /// Evaluate as a boolean (Python truthiness).
    ///
    /// Restriction checks are the suite's hottest loop, and almost every
    /// restriction in practice is pure integer arithmetic — those run on a
    /// raw `i64` stack with no [`Num`] tag dispatch, falling back to the
    /// full interpreter only when a zero divisor would promote to NaN.
    #[inline]
    pub fn eval_bool(&self, values: &[i64]) -> bool {
        if self.max_stack <= INLINE_STACK {
            match self.int_mode {
                IntMode::Pure => {
                    let mut stack = [0i64; INLINE_STACK];
                    if let Some(v) = self.run_int::<false>(values, &mut stack) {
                        return v != 0;
                    }
                }
                IntMode::ExactDiv => {
                    let mut stack = [0i64; INLINE_STACK];
                    if let Some(v) = self.run_int::<true>(values, &mut stack) {
                        return v != 0;
                    }
                }
                IntMode::Num => {}
            }
        }
        self.eval_num(values).truthy()
    }

    fn run(&self, values: &[i64], stack: &mut [Num]) -> Num {
        let mut sp = 0usize;
        let mut pc = 0usize;
        let ops = &self.ops;
        while pc < ops.len() {
            match ops[pc] {
                Op::PushInt(i) => {
                    stack[sp] = Num::Int(i);
                    sp += 1;
                }
                Op::PushFloat(f) => {
                    stack[sp] = Num::Float(f);
                    sp += 1;
                }
                Op::Load(slot) => {
                    stack[sp] = Num::Int(values[slot as usize]);
                    sp += 1;
                }
                Op::Neg => stack[sp - 1] = stack[sp - 1].neg(),
                Op::Not => stack[sp - 1] = Num::Int(i64::from(!stack[sp - 1].truthy())),
                Op::Truthy => stack[sp - 1] = Num::Int(i64::from(stack[sp - 1].truthy())),
                Op::Bin(op) => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    stack[sp - 1] = match op {
                        BinOp::Add => lhs.add(rhs),
                        BinOp::Sub => lhs.sub(rhs),
                        BinOp::Mul => lhs.mul(rhs),
                        BinOp::Div => lhs.div(rhs),
                        BinOp::FloorDiv => lhs.floordiv(rhs),
                        BinOp::Mod => lhs.rem(rhs),
                        BinOp::Pow => lhs.pow(rhs),
                        BinOp::And | BinOp::Or => {
                            unreachable!("logical ops compile to jumps")
                        }
                    };
                }
                Op::Cmp(op) => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    stack[sp - 1] = Num::Int(i64::from(cmp_holds(op, lhs, rhs)));
                }
                Op::ChainCmp { op, end } => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    if cmp_holds(op, lhs, rhs) {
                        stack[sp - 1] = rhs;
                    } else {
                        stack[sp - 1] = Num::Int(0);
                        pc = end as usize;
                        continue;
                    }
                }
                Op::JumpIfFalse(end) => {
                    let v = stack[sp - 1];
                    if v.truthy() {
                        sp -= 1;
                    } else {
                        stack[sp - 1] = Num::Int(0);
                        pc = end as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue(end) => {
                    let v = stack[sp - 1];
                    if v.truthy() {
                        stack[sp - 1] = Num::Int(1);
                        pc = end as usize;
                        continue;
                    }
                    sp -= 1;
                }
                Op::Abs => {
                    stack[sp - 1] = match stack[sp - 1] {
                        Num::Int(i) => Num::Int(i.abs()),
                        Num::Float(f) => Num::Float(f.abs()),
                    };
                }
                Op::Min(n) => {
                    let n = n as usize;
                    let mut best = stack[sp - n];
                    for i in 1..n {
                        let v = stack[sp - n + i];
                        if matches!(best.cmp_num(v), Some(std::cmp::Ordering::Greater)) {
                            best = v;
                        }
                    }
                    sp -= n - 1;
                    stack[sp - 1] = best;
                }
                Op::Max(n) => {
                    let n = n as usize;
                    let mut best = stack[sp - n];
                    for i in 1..n {
                        let v = stack[sp - n + i];
                        if matches!(best.cmp_num(v), Some(std::cmp::Ordering::Less)) {
                            best = v;
                        }
                    }
                    sp -= n - 1;
                    stack[sp - 1] = best;
                }
                Op::MulLL(a, b) => {
                    stack[sp] = Num::Int(values[a as usize]).mul(Num::Int(values[b as usize]));
                    sp += 1;
                }
                Op::DivisibleBy => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    stack[sp - 1] = Num::Int(i64::from(lhs.rem(rhs).eq_num(Num::Int(0))));
                }
            }
            pc += 1;
        }
        debug_assert_eq!(sp, 1, "program must leave exactly one value");
        stack[0]
    }

    /// Evaluate on a plain `i64` stack ([`IntMode::Pure`] and
    /// [`IntMode::ExactDiv`] programs).
    ///
    /// Mirrors the `Num::Int` arm of every operation in [`Program::run`]
    /// exactly (wrapping arithmetic, Python modulo/floor-division signs,
    /// saturating `**`). Returns `None` whenever the [`Num`] interpreter
    /// could diverge — a zero divisor or oversized exponent (promoting to
    /// float NaN), and in `GUARD` mode any inexact division or value
    /// outside the [`EXACT_F64`] envelope; the caller then reruns on the
    /// full interpreter. `GUARD` mode admits true division: inside the
    /// envelope an exact integer quotient is bit-equal to the promoted
    /// float one, and so is everything downstream of it.
    fn run_int<const GUARD: bool>(&self, values: &[i64], stack: &mut [i64]) -> Option<i64> {
        let mut sp = 0usize;
        let mut pc = 0usize;
        let ops = &self.ops;
        while pc < ops.len() {
            match ops[pc] {
                Op::PushInt(i) => {
                    if GUARD && i.abs() > EXACT_F64 {
                        return None;
                    }
                    stack[sp] = i;
                    sp += 1;
                }
                Op::PushFloat(_) => return None,
                Op::Load(slot) => {
                    let v = values[slot as usize];
                    if GUARD && v.abs() > EXACT_F64 {
                        return None;
                    }
                    stack[sp] = v;
                    sp += 1;
                }
                Op::Neg => stack[sp - 1] = stack[sp - 1].wrapping_neg(),
                Op::Not => stack[sp - 1] = i64::from(stack[sp - 1] == 0),
                Op::Truthy => stack[sp - 1] = i64::from(stack[sp - 1] != 0),
                Op::Bin(op) => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    stack[sp - 1] = match op {
                        BinOp::Add => {
                            if GUARD {
                                let r = lhs + rhs;
                                if r.abs() > EXACT_F64 {
                                    return None;
                                }
                                r
                            } else {
                                lhs.wrapping_add(rhs)
                            }
                        }
                        BinOp::Sub => {
                            if GUARD {
                                let r = lhs - rhs;
                                if r.abs() > EXACT_F64 {
                                    return None;
                                }
                                r
                            } else {
                                lhs.wrapping_sub(rhs)
                            }
                        }
                        BinOp::Mul => {
                            if GUARD {
                                let r = lhs.checked_mul(rhs)?;
                                if r.abs() > EXACT_F64 {
                                    return None;
                                }
                                r
                            } else {
                                lhs.wrapping_mul(rhs)
                            }
                        }
                        BinOp::Div => {
                            // Reached only in GUARD mode. Exact quotients
                            // stay integral; anything else falls back.
                            if rhs == 0 || lhs % rhs != 0 {
                                return None;
                            }
                            lhs / rhs
                        }
                        BinOp::FloorDiv => {
                            if rhs == 0 {
                                return None;
                            }
                            lhs.div_euclid(rhs)
                        }
                        BinOp::Mod => {
                            if rhs == 0 {
                                return None;
                            }
                            let r = lhs % rhs;
                            if r != 0 && (r < 0) != (rhs < 0) {
                                r + rhs
                            } else {
                                r
                            }
                        }
                        BinOp::Pow => {
                            if !(0..=62).contains(&rhs) {
                                return None;
                            }
                            lhs.checked_pow(rhs as u32).unwrap_or(i64::MAX)
                        }
                        BinOp::And | BinOp::Or => {
                            unreachable!("logical ops compile to jumps")
                        }
                    };
                }
                Op::Cmp(op) => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    stack[sp - 1] = i64::from(int_cmp_holds(op, lhs, rhs));
                }
                Op::ChainCmp { op, end } => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    if int_cmp_holds(op, lhs, rhs) {
                        stack[sp - 1] = rhs;
                    } else {
                        stack[sp - 1] = 0;
                        pc = end as usize;
                        continue;
                    }
                }
                Op::JumpIfFalse(end) => {
                    if stack[sp - 1] != 0 {
                        sp -= 1;
                    } else {
                        stack[sp - 1] = 0;
                        pc = end as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue(end) => {
                    if stack[sp - 1] != 0 {
                        stack[sp - 1] = 1;
                        pc = end as usize;
                        continue;
                    }
                    sp -= 1;
                }
                Op::Abs => stack[sp - 1] = stack[sp - 1].wrapping_abs(),
                Op::Min(n) => {
                    let n = n as usize;
                    let mut best = stack[sp - n];
                    for i in 1..n {
                        best = best.min(stack[sp - n + i]);
                    }
                    sp -= n - 1;
                    stack[sp - 1] = best;
                }
                Op::Max(n) => {
                    let n = n as usize;
                    let mut best = stack[sp - n];
                    for i in 1..n {
                        best = best.max(stack[sp - n + i]);
                    }
                    sp -= n - 1;
                    stack[sp - 1] = best;
                }
                Op::MulLL(a, b) => {
                    let (va, vb) = (values[a as usize], values[b as usize]);
                    stack[sp] = if GUARD {
                        if va.abs() > EXACT_F64 || vb.abs() > EXACT_F64 {
                            return None;
                        }
                        let r = va.checked_mul(vb)?;
                        if r.abs() > EXACT_F64 {
                            return None;
                        }
                        r
                    } else {
                        va.wrapping_mul(vb)
                    };
                    sp += 1;
                }
                Op::DivisibleBy => {
                    let rhs = stack[sp - 1];
                    let lhs = stack[sp - 2];
                    sp -= 1;
                    // A zero divisor makes the unfused form compare NaN
                    // against 0 — false either way, no fallback needed.
                    stack[sp - 1] = i64::from(rhs != 0 && lhs % rhs == 0);
                }
            }
            pc += 1;
        }
        debug_assert_eq!(sp, 1, "program must leave exactly one value");
        Some(stack[0])
    }
}

#[inline]
fn int_cmp_holds(op: CmpOp, lhs: i64, rhs: i64) -> bool {
    match op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Lt => lhs < rhs,
        CmpOp::Le => lhs <= rhs,
        CmpOp::Gt => lhs > rhs,
        CmpOp::Ge => lhs >= rhs,
    }
}

#[inline]
fn cmp_holds(op: CmpOp, lhs: Num, rhs: Num) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    match op {
        CmpOp::Eq => lhs.eq_num(rhs),
        CmpOp::Ne => !lhs.eq_num(rhs),
        CmpOp::Lt => matches!(lhs.cmp_num(rhs), Some(Less)),
        CmpOp::Le => matches!(lhs.cmp_num(rhs), Some(Less | Equal)),
        CmpOp::Gt => matches!(lhs.cmp_num(rhs), Some(Greater)),
        CmpOp::Ge => matches!(lhs.cmp_num(rhs), Some(Greater | Equal)),
    }
}

fn emit(expr: &CompiledExpr, ops: &mut Vec<Op>) {
    match expr {
        CompiledExpr::Int(i) => ops.push(Op::PushInt(*i)),
        CompiledExpr::Float(f) => ops.push(Op::PushFloat(*f)),
        CompiledExpr::Slot(s) => {
            ops.push(Op::Load(u32::try_from(*s).expect("slot index fits in u32")))
        }
        CompiledExpr::Unary(UnOp::Neg, e) => {
            emit(e, ops);
            ops.push(Op::Neg);
        }
        CompiledExpr::Unary(UnOp::Not, e) => {
            emit(e, ops);
            ops.push(Op::Not);
        }
        CompiledExpr::Binary(BinOp::And, a, b) => {
            emit(a, ops);
            let jump = ops.len();
            ops.push(Op::JumpIfFalse(0));
            emit(b, ops);
            ops.push(Op::Truthy);
            patch_jump(ops, jump);
        }
        CompiledExpr::Binary(BinOp::Or, a, b) => {
            emit(a, ops);
            let jump = ops.len();
            ops.push(Op::JumpIfTrue(0));
            emit(b, ops);
            ops.push(Op::Truthy);
            patch_jump(ops, jump);
        }
        CompiledExpr::Binary(op, a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(Op::Bin(*op));
        }
        CompiledExpr::Compare(first, links) => {
            emit(first, ops);
            let mut chain_jumps = Vec::new();
            for (i, (op, rhs)) in links.iter().enumerate() {
                emit(rhs, ops);
                if i + 1 == links.len() {
                    ops.push(Op::Cmp(*op));
                } else {
                    chain_jumps.push(ops.len());
                    ops.push(Op::ChainCmp { op: *op, end: 0 });
                }
            }
            for j in chain_jumps {
                patch_jump(ops, j);
            }
        }
        CompiledExpr::Call(b, args) => {
            for a in args {
                emit(a, ops);
            }
            let n = u32::try_from(args.len()).expect("argument count fits in u32");
            match b {
                Builtin::Abs => ops.push(Op::Abs),
                Builtin::Min => ops.push(Op::Min(n)),
                Builtin::Max => ops.push(Op::Max(n)),
            }
        }
    }
}

/// Peephole-fuse hot instruction triples into superinstructions:
/// `Load a; Load b; Bin(Mul)` becomes [`Op::MulLL`] and
/// `Bin(Mod); PushInt(0); Cmp(Eq)` becomes [`Op::DivisibleBy`]. Together
/// they collapse the dominant restriction shape — CLBlast-style
/// `X % (A * B) == 0` divisibility checks — from seven dispatches to
/// three. Fusion never spans a jump target, and surviving jump targets are
/// remapped to the new indices.
fn peephole(ops: Vec<Op>) -> Vec<Op> {
    let mut is_target = vec![false; ops.len() + 1];
    for op in &ops {
        if let Op::JumpIfFalse(t) | Op::JumpIfTrue(t) | Op::ChainCmp { end: t, .. } = op {
            is_target[*t as usize] = true;
        }
    }
    let mut out: Vec<Op> = Vec::with_capacity(ops.len());
    let mut map = vec![0u32; ops.len() + 1];
    let mut i = 0usize;
    while i < ops.len() {
        map[i] = out.len() as u32;
        if i + 2 < ops.len() && !is_target[i + 1] && !is_target[i + 2] {
            let fused = match (ops[i], ops[i + 1], ops[i + 2]) {
                (Op::Load(a), Op::Load(b), Op::Bin(BinOp::Mul)) => Some(Op::MulLL(a, b)),
                (Op::Bin(BinOp::Mod), Op::PushInt(0), Op::Cmp(CmpOp::Eq)) => Some(Op::DivisibleBy),
                _ => None,
            };
            if let Some(op) = fused {
                map[i + 1] = out.len() as u32;
                map[i + 2] = out.len() as u32;
                out.push(op);
                i += 3;
                continue;
            }
        }
        out.push(ops[i]);
        i += 1;
    }
    map[ops.len()] = out.len() as u32;
    for op in &mut out {
        if let Op::JumpIfFalse(t) | Op::JumpIfTrue(t) | Op::ChainCmp { end: t, .. } = op {
            *t = map[*t as usize];
        }
    }
    out
}

/// Point the placeholder jump at `at` to the *last emitted instruction's
/// successor position minus one* — the interpreter increments `pc` after
/// every non-jumping instruction, and jumps `continue` without increment,
/// so targets are stored as the index of the next instruction to execute.
fn patch_jump(ops: &mut [Op], at: usize) {
    let target = u32::try_from(ops.len()).expect("program fits in u32");
    match &mut ops[at] {
        Op::JumpIfFalse(end) | Op::JumpIfTrue(end) | Op::ChainCmp { end, .. } => *end = target,
        other => unreachable!("patching non-jump {other:?}"),
    }
}

/// Upper bound on the stack depth of `ops`, by abstract execution. Jumps
/// only skip forward, and treating a conditional jump as "no change" keeps
/// the estimate on the high side of both paths, so one linear pass over the
/// deltas is a safe bound.
fn simulate_stack(ops: &[Op]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for op in ops {
        let delta: isize = match op {
            Op::PushInt(_) | Op::PushFloat(_) | Op::Load(_) => 1,
            Op::Neg | Op::Not | Op::Truthy | Op::Abs => 0,
            Op::Bin(_) | Op::Cmp(_) | Op::ChainCmp { .. } => -1,
            // Jumps either pop (fall through) or replace the top (jump);
            // conservatively treat as no change.
            Op::JumpIfFalse(_) | Op::JumpIfTrue(_) => 0,
            Op::Min(n) | Op::Max(n) => 1 - *n as isize,
            Op::MulLL(_, _) => 1,
            Op::DivisibleBy => -1,
        };
        depth = depth.saturating_add_signed(delta);
        max = max.max(depth);
    }
    max.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse;

    fn program(src: &str, names: &[&str]) -> (CompiledExpr, Program) {
        let owned: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        let compiled = CompiledExpr::compile(&parse(src).unwrap(), &owned).unwrap();
        let prog = Program::compile(&compiled);
        (compiled, prog)
    }

    fn assert_agree(src: &str, names: &[&str], values: &[i64]) {
        let (tree, prog) = program(src, names);
        assert_eq!(
            prog.eval_bool(values),
            tree.eval_bool(values),
            "{src} on {values:?}"
        );
    }

    #[test]
    fn arithmetic_matches_tree_walk() {
        for values in [[1i64, 2, 3], [4, 0, 9], [7, 7, 7], [0, 0, 1]] {
            for src in [
                "a + b * c > 5",
                "a ** 2 - b // (c + 1) == 0",
                "a % 3 == b % 3",
                "a / b == 2",
                "-a + abs(b - c) >= 0",
                "min(a, b, c) < max(a, 2)",
            ] {
                assert_agree(src, &["a", "b", "c"], &values);
            }
        }
    }

    #[test]
    fn short_circuit_protects_division() {
        // Must not evaluate 10 % x when x == 0 (NaN would poison the chain
        // differently than the tree walk if jumps were wrong).
        let (_, p) = program("x != 0 and 10 % x == 0", &["x"]);
        assert!(!p.eval_bool(&[0]));
        assert!(p.eval_bool(&[5]));
        assert!(!p.eval_bool(&[3]));
        let (_, p) = program("x == 0 or 10 % x == 0", &["x"]);
        assert!(p.eval_bool(&[0]));
        assert!(p.eval_bool(&[2]));
        assert!(!p.eval_bool(&[3]));
    }

    #[test]
    fn chained_comparison_early_exit() {
        for v in [[1i64, 1], [8, 16], [64, 32], [1, 4]] {
            assert_agree("32 <= x * y <= 1024", &["x", "y"], &v);
            assert_agree("x < y < 100", &["x", "y"], &v);
        }
    }

    #[test]
    fn logical_results_are_zero_one() {
        let (_, p) = program("a and b", &["a", "b"]);
        assert_eq!(p.eval_num(&[5, 7]), Num::Int(1));
        assert_eq!(p.eval_num(&[5, 0]), Num::Int(0));
        assert_eq!(p.eval_num(&[0, 7]), Num::Int(0));
        let (_, p) = program("a or b", &["a", "b"]);
        assert_eq!(p.eval_num(&[5, 0]), Num::Int(1));
        assert_eq!(p.eval_num(&[0, 0]), Num::Int(0));
    }

    #[test]
    fn constants_fold_to_single_instruction() {
        let (_, p) = program("2 + 3 * 4 == 14", &[]);
        assert!(p.is_const());
        assert_eq!(p.const_value(), Some(Num::Int(1)));
        assert!(p.eval_bool(&[]));

        let (_, p) = program("1 == 2", &[]);
        assert_eq!(p.const_value(), Some(Num::Int(0)));
    }

    #[test]
    fn folding_simplifies_mixed_logical_operands() {
        // `1 and x` must coerce to truthy(x), `0 and x` to 0, etc.
        let (_, p) = program("1 and x", &["x"]);
        assert_eq!(p.eval_num(&[9]), Num::Int(1));
        assert_eq!(p.eval_num(&[0]), Num::Int(0));
        let (_, p) = program("0 and x", &["x"]);
        assert!(p.is_const());
        let (_, p) = program("x or 1", &["x"]);
        assert_eq!(p.eval_num(&[0]), Num::Int(1));
        let (_, p) = program("x or 0", &["x"]);
        assert_eq!(p.eval_num(&[3]), Num::Int(1));
        assert_eq!(p.eval_num(&[0]), Num::Int(0));
    }

    #[test]
    fn gemm_style_restrictions_agree() {
        let names = ["MWG", "NWG", "KWG", "MDIMC", "NDIMC", "VWM"];
        let sources = [
            "MWG % (MDIMC * VWM) == 0",
            "KWG % ((MDIMC * NDIMC) / VWM) == 0",
            "32 <= MDIMC * NDIMC <= 1024",
            "not (MWG > 64 and NWG > 64) or KWG == 32",
        ];
        let configs = [
            [64i64, 64, 32, 16, 16, 2],
            [128, 32, 16, 8, 32, 8],
            [16, 16, 32, 8, 8, 1],
            [128, 128, 32, 32, 32, 4],
        ];
        for src in sources {
            for cfg in &configs {
                assert_agree(src, &names, cfg);
            }
        }
    }

    #[test]
    fn deep_stacks_fall_back_to_heap() {
        // 40 *right*-nested additions push 41 operands before any reduction,
        // exceeding the inline stack buffer.
        let mut src = String::from("x");
        for _ in 0..40 {
            src = format!("(x + {src})");
        }
        let src = format!("{src} == 41");
        let (tree, p) = program(&src, &["x"]);
        assert!(p.max_stack > INLINE_STACK, "max_stack {}", p.max_stack);
        assert_eq!(p.eval_bool(&[1]), tree.eval_bool(&[1]));
        assert!(p.eval_bool(&[1]));
    }
}
