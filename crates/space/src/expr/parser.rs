//! Pratt parser for restriction expressions.
//!
//! Grammar (binding from loosest to tightest, mirroring Python):
//! `or` < `and` < `not` < comparisons (chainable) < `+ -` < `* / // %` <
//! unary `-` < `**` (right-associative) < atoms.

use std::fmt;

use super::ast::{BinOp, Builtin, CmpOp, Expr, UnOp};
use super::lexer::{lex, LexError, Token};

/// Error produced while parsing a restriction expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token or end of input.
    Unexpected {
        /// Token index (not byte offset).
        at: usize,
        /// Description of what was found/expected.
        msg: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { at, msg } => write!(f, "parse error at token {at}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse a restriction expression string into an [`Expr`].
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::Unexpected {
            at: p.pos,
            msg: format!("trailing input starting with {:?}", p.tokens[p.pos]),
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseError::Unexpected {
                at: self.pos,
                msg: format!("expected {tok:?}, found {other:?}"),
            }),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let rhs = self.parse_not()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Not) {
            self.pos += 1;
            let inner = self.parse_not()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_additive()?;
        let mut links: Vec<(CmpOp, Expr)> = Vec::new();
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => CmpOp::Eq,
                Some(Token::Ne) => CmpOp::Ne,
                Some(Token::Lt) => CmpOp::Lt,
                Some(Token::Le) => CmpOp::Le,
                Some(Token::Gt) => CmpOp::Gt,
                Some(Token::Ge) => CmpOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_additive()?;
            links.push((op, rhs));
        }
        if links.is_empty() {
            Ok(first)
        } else {
            Ok(Expr::Compare(Box::new(first), links))
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::SlashSlash) => BinOp::FloorDiv,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_atom()?;
        if self.peek() == Some(&Token::StarStar) {
            self.pos += 1;
            // Right-associative; exponent may itself be unary (-2 ** -2).
            let exp = self.parse_unary()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::Float(v)) => Ok(Expr::Float(v)),
            Some(Token::LParen) => {
                let inner = self.parse_or()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    let builtin = match name.as_str() {
                        "min" => Builtin::Min,
                        "max" => Builtin::Max,
                        "abs" => Builtin::Abs,
                        other => {
                            return Err(ParseError::Unexpected {
                                at: self.pos,
                                msg: format!(
                                    "unknown function {other:?}; available: min, max, abs"
                                ),
                            })
                        }
                    };
                    self.pos += 1; // consume '('
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_or()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    let arity_ok = match builtin {
                        Builtin::Abs => args.len() == 1,
                        Builtin::Min | Builtin::Max => args.len() >= 2,
                    };
                    if !arity_ok {
                        return Err(ParseError::Unexpected {
                            at: self.pos,
                            msg: format!("wrong number of arguments ({}) for {name}", args.len()),
                        });
                    }
                    Ok(Expr::Call(builtin, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError::Unexpected {
                at: self.pos.saturating_sub(1),
                msg: format!("expected an expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_shape() {
        // a + b * c  parses as  a + (b * c)
        let e = parse("a + b * c").unwrap();
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => match *rhs {
                Expr::Binary(BinOp::Mul, ..) => {}
                other => panic!("rhs should be Mul, got {other:?}"),
            },
            other => panic!("should be Add, got {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_looser_than_arithmetic() {
        let e = parse("a + 1 == b * 2").unwrap();
        assert!(matches!(e, Expr::Compare(..)));
    }

    #[test]
    fn chain_collects_links() {
        let e = parse("1 < x <= 10").unwrap();
        match e {
            Expr::Compare(_, links) => assert_eq!(links.len(), 2),
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    fn call_arity_checked() {
        assert!(parse("abs(1, 2)").is_err());
        assert!(parse("min(1)").is_err());
        assert!(parse("foo(1)").is_err());
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse("a ** b ** c").unwrap();
        match e {
            Expr::Binary(BinOp::Pow, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Pow, ..)))
            }
            other => panic!("expected Pow, got {other:?}"),
        }
    }
}
