//! Abstract syntax tree of restriction expressions.

use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Python 3 true division (`/`), always producing a float.
    Div,
    /// Floor division (`//`).
    FloorDiv,
    /// Python modulo (`%`), sign follows the divisor.
    Mod,
    /// Exponentiation (`**`), right-associative.
    Pow,
    /// Short-circuit logical and.
    And,
    /// Short-circuit logical or.
    Or,
}

/// Comparison operators usable in (possibly chained) comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Named variable, resolved against parameter names at compile time.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Chained comparison `a < b <= c`, Python-style (each link must hold).
    Compare(Box<Expr>, Vec<(CmpOp, Expr)>),
    /// Builtin call: `min`, `max` (n-ary) or `abs` (unary).
    Call(Builtin, Vec<Expr>),
}

/// Builtin functions available in restriction expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// n-ary minimum.
    Min,
    /// n-ary maximum.
    Max,
    /// absolute value.
    Abs,
}

impl Expr {
    /// Collect the set of variable names referenced by this expression,
    /// in first-appearance order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Float(_) => {}
            Expr::Var(name) => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Compare(first, rest) => {
                first.collect_vars(out);
                for (_, e) in rest {
                    e.collect_vars(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary(BinOp::Or, ..) => 1,
            Expr::Binary(BinOp::And, ..) => 2,
            Expr::Unary(UnOp::Not, _) => 3,
            Expr::Compare(..) => 4,
            Expr::Binary(BinOp::Add | BinOp::Sub, ..) => 5,
            Expr::Binary(BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod, ..) => 6,
            Expr::Unary(UnOp::Neg, _) => 7,
            Expr::Binary(BinOp::Pow, ..) => 8,
            _ => 9,
        }
    }

    fn fmt_child(
        &self,
        child: &Expr,
        f: &mut fmt::Formatter<'_>,
        parens_if_le: bool,
    ) -> fmt::Result {
        let need = if parens_if_le {
            child.precedence() <= self.precedence()
        } else {
            child.precedence() < self.precedence()
        };
        if need {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Float(v) => {
                if v.fract() == 0.0 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Var(name) => f.write_str(name),
            Expr::Unary(UnOp::Neg, e) => {
                f.write_str("-")?;
                self.fmt_child(e, f, false)
            }
            Expr::Unary(UnOp::Not, e) => {
                f.write_str("not ")?;
                self.fmt_child(e, f, false)
            }
            Expr::Binary(op, a, b) => {
                // Pow is right-associative; everything else left-associative.
                let (lhs_strict, rhs_strict) = match op {
                    BinOp::Pow => (true, false),
                    _ => (false, true),
                };
                self.fmt_child(a, f, lhs_strict)?;
                write!(f, " {op} ")?;
                self.fmt_child(b, f, rhs_strict)
            }
            Expr::Compare(first, rest) => {
                self.fmt_child(first, f, false)?;
                for (op, e) in rest {
                    write!(f, " {op} ")?;
                    self.fmt_child(e, f, false)?;
                }
                Ok(())
            }
            Expr::Call(b, args) => {
                let name = match b {
                    Builtin::Min => "min",
                    Builtin::Max => "max",
                    Builtin::Abs => "abs",
                };
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}
