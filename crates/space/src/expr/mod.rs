//! A small expression language for search-space restrictions.
//!
//! BAT and Kernel Tuner express restrictions as Python-like strings such as
//! `"MWG % (MDIMC * VWM) == 0"` or `"block_size_x*block_size_y >= 32"`.
//! This module provides a lexer, a Pratt parser and an evaluator with Python
//! semantics (true division, floor division, chained comparisons, `and`/`or`/
//! `not`, `min`/`max`/`abs` builtins) so restriction sets can be declared as
//! data and shared between tuners — the paper's "shared problem interface".

mod ast;
mod eval;
mod lexer;
mod parser;
mod vm;

pub use ast::{BinOp, CmpOp, Expr, UnOp};
pub use eval::{CompiledExpr, EvalError};
pub use lexer::{LexError, Token};
pub use parser::{parse, ParseError};
pub use vm::{fold, Op, Program};

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_with(src: &str, names: &[&str], vals: &[i64]) -> bool {
        let expr = parse(src).expect("parse");
        let owned: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        let compiled = CompiledExpr::compile(&expr, &owned).expect("compile");
        compiled.eval_bool(vals)
    }

    #[test]
    fn gemm_style_restriction() {
        // MWG % (MDIMC * VWM) == 0 with MWG=64, MDIMC=16, VWM=2 -> 64 % 32 == 0
        assert!(eval_with(
            "MWG % (MDIMC * VWM) == 0",
            &["MWG", "MDIMC", "VWM"],
            &[64, 16, 2]
        ));
        assert!(!eval_with(
            "MWG % (MDIMC * VWM) == 0",
            &["MWG", "MDIMC", "VWM"],
            &[64, 16, 8]
        ));
    }

    #[test]
    fn true_division_inside_modulo() {
        // 32 % ((16*16)/8) == 0  ->  32 % 32.0 == 0
        assert!(eval_with(
            "32 % ((MDIMC*NDIMC)/MDIMA) == 0",
            &["MDIMC", "NDIMC", "MDIMA"],
            &[16, 16, 8]
        ));
        // 32 % ((32*32)/8) == 0 -> 32 % 128.0 == 32 != 0
        assert!(!eval_with(
            "32 % ((MDIMC*NDIMC)/MDIMA) == 0",
            &["MDIMC", "NDIMC", "MDIMA"],
            &[32, 32, 8]
        ));
    }

    #[test]
    fn chained_comparison() {
        assert!(eval_with("32 <= x*y <= 1024", &["x", "y"], &[8, 16]));
        assert!(!eval_with("32 <= x*y <= 1024", &["x", "y"], &[1, 4]));
        assert!(!eval_with("32 <= x*y <= 1024", &["x", "y"], &[64, 32]));
    }

    #[test]
    fn boolean_operators() {
        assert!(eval_with("a == 0 or b == 1", &["a", "b"], &[5, 1]));
        assert!(eval_with("not (a == 0) and b == 1", &["a", "b"], &[5, 1]));
        assert!(!eval_with("a == 0 and b == 1", &["a", "b"], &[5, 1]));
    }

    #[test]
    fn builtins() {
        assert!(eval_with("max(a, b) == 8", &["a", "b"], &[8, 3]));
        assert!(eval_with("min(a, b, 2) == 2", &["a", "b"], &[8, 3]));
        assert!(eval_with("abs(a - b) == 5", &["a", "b"], &[8, 3]));
    }

    #[test]
    fn operator_precedence() {
        assert!(eval_with("2 + 3 * 4 == 14", &[], &[]));
        assert!(eval_with("(2 + 3) * 4 == 20", &[], &[]));
        assert!(eval_with("2 ** 3 ** 2 == 512", &[], &[])); // right-assoc
        assert!(eval_with("-2 ** 2 == -4", &[], &[])); // unary binds looser than **
        assert!(eval_with("7 // 2 == 3", &[], &[]));
    }

    #[test]
    fn unknown_variable_is_compile_error() {
        let expr = parse("FOO == 1").unwrap();
        assert!(CompiledExpr::compile(&expr, &["BAR".to_string()]).is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("a ==").is_err());
        assert!(parse("(a == 1").is_err());
        assert!(parse("a @ b").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "MWG % (MDIMC * VWM) == 0",
            "32 <= x * y <= 1024",
            "a == 0 or b == 1 and c < 2",
            "not a",
            "min(a, 3) + max(b, 4) * 2 >= 10",
            "-a ** 2 != 4",
        ] {
            let e = parse(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(
                printed,
                reparsed.to_string(),
                "display of {src:?} must be stable"
            );
        }
    }
}
