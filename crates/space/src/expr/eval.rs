//! Compilation and evaluation of restriction expressions.
//!
//! Expressions are *compiled* against a parameter-name table once: variable
//! references become integer slots into the configuration slice, so the hot
//! path (hundreds of millions of evaluations when counting the Dedispersion
//! space) performs no string hashing.

use std::fmt;

use super::ast::{BinOp, Builtin, CmpOp, Expr, UnOp};
use crate::value::Num;

/// Error produced when compiling an expression against a parameter table.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The expression references a variable that is not a parameter name.
    UnknownVariable(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable(name) => {
                write!(f, "expression references unknown parameter {name:?}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// An expression with variable references resolved to slot indices.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Slot index into the configuration value slice.
    Slot(usize),
    /// Unary operation.
    Unary(UnOp, Box<CompiledExpr>),
    /// Binary operation.
    Binary(BinOp, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Chained comparison.
    Compare(Box<CompiledExpr>, Vec<(CmpOp, CompiledExpr)>),
    /// Builtin call.
    Call(Builtin, Vec<CompiledExpr>),
}

impl CompiledExpr {
    /// Resolve variable names in `expr` against `names` (parameter order =
    /// slot order).
    pub fn compile(expr: &Expr, names: &[String]) -> Result<CompiledExpr, EvalError> {
        Ok(match expr {
            Expr::Int(v) => CompiledExpr::Int(*v),
            Expr::Float(v) => CompiledExpr::Float(*v),
            Expr::Var(name) => {
                let slot = names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| EvalError::UnknownVariable(name.clone()))?;
                CompiledExpr::Slot(slot)
            }
            Expr::Unary(op, e) => CompiledExpr::Unary(*op, Box::new(Self::compile(e, names)?)),
            Expr::Binary(op, a, b) => CompiledExpr::Binary(
                *op,
                Box::new(Self::compile(a, names)?),
                Box::new(Self::compile(b, names)?),
            ),
            Expr::Compare(first, links) => {
                let mut compiled = Vec::with_capacity(links.len());
                for (op, e) in links {
                    compiled.push((*op, Self::compile(e, names)?));
                }
                CompiledExpr::Compare(Box::new(Self::compile(first, names)?), compiled)
            }
            Expr::Call(b, args) => {
                let mut compiled = Vec::with_capacity(args.len());
                for a in args {
                    compiled.push(Self::compile(a, names)?);
                }
                CompiledExpr::Call(*b, compiled)
            }
        })
    }

    /// Evaluate to a number given configuration values (indexed by slot).
    pub fn eval_num(&self, values: &[i64]) -> Num {
        match self {
            CompiledExpr::Int(v) => Num::Int(*v),
            CompiledExpr::Float(v) => Num::Float(*v),
            CompiledExpr::Slot(i) => Num::Int(values[*i]),
            CompiledExpr::Unary(UnOp::Neg, e) => e.eval_num(values).neg(),
            CompiledExpr::Unary(UnOp::Not, e) => Num::Int(i64::from(!e.eval_num(values).truthy())),
            CompiledExpr::Binary(op, a, b) => {
                match op {
                    // Short-circuit logical operators evaluate to 0/1.
                    BinOp::And => {
                        return Num::Int(i64::from(
                            a.eval_num(values).truthy() && b.eval_num(values).truthy(),
                        ))
                    }
                    BinOp::Or => {
                        return Num::Int(i64::from(
                            a.eval_num(values).truthy() || b.eval_num(values).truthy(),
                        ))
                    }
                    _ => {}
                }
                let x = a.eval_num(values);
                let y = b.eval_num(values);
                match op {
                    BinOp::Add => x.add(y),
                    BinOp::Sub => x.sub(y),
                    BinOp::Mul => x.mul(y),
                    BinOp::Div => x.div(y),
                    BinOp::FloorDiv => x.floordiv(y),
                    BinOp::Mod => x.rem(y),
                    BinOp::Pow => x.pow(y),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            CompiledExpr::Compare(first, links) => {
                let mut lhs = first.eval_num(values);
                for (op, rhs_expr) in links {
                    let rhs = rhs_expr.eval_num(values);
                    let ok = match op {
                        CmpOp::Eq => lhs.eq_num(rhs),
                        CmpOp::Ne => !lhs.eq_num(rhs),
                        CmpOp::Lt => matches!(lhs.cmp_num(rhs), Some(std::cmp::Ordering::Less)),
                        CmpOp::Le => matches!(
                            lhs.cmp_num(rhs),
                            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                        ),
                        CmpOp::Gt => matches!(lhs.cmp_num(rhs), Some(std::cmp::Ordering::Greater)),
                        CmpOp::Ge => matches!(
                            lhs.cmp_num(rhs),
                            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                        ),
                    };
                    if !ok {
                        return Num::Int(0);
                    }
                    lhs = rhs;
                }
                Num::Int(1)
            }
            CompiledExpr::Call(b, args) => match b {
                Builtin::Abs => {
                    let v = args[0].eval_num(values);
                    match v {
                        Num::Int(i) => Num::Int(i.abs()),
                        Num::Float(f) => Num::Float(f.abs()),
                    }
                }
                Builtin::Min | Builtin::Max => {
                    let mut best = args[0].eval_num(values);
                    for a in &args[1..] {
                        let v = a.eval_num(values);
                        let take = matches!(
                            (b, best.cmp_num(v)),
                            (Builtin::Min, Some(std::cmp::Ordering::Greater))
                                | (Builtin::Max, Some(std::cmp::Ordering::Less))
                        );
                        if take {
                            best = v;
                        }
                    }
                    best
                }
            },
        }
    }

    /// Evaluate as a boolean (Python truthiness).
    #[inline]
    pub fn eval_bool(&self, values: &[i64]) -> bool {
        self.eval_num(values).truthy()
    }

    /// Slot indices referenced by this compiled expression (sorted, deduped).
    pub fn slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_slots(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_slots(&self, out: &mut Vec<usize>) {
        match self {
            CompiledExpr::Int(_) | CompiledExpr::Float(_) => {}
            CompiledExpr::Slot(i) => out.push(*i),
            CompiledExpr::Unary(_, e) => e.collect_slots(out),
            CompiledExpr::Binary(_, a, b) => {
                a.collect_slots(out);
                b.collect_slots(out);
            }
            CompiledExpr::Compare(first, links) => {
                first.collect_slots(out);
                for (_, e) in links {
                    e.collect_slots(out);
                }
            }
            CompiledExpr::Call(_, args) => {
                for a in args {
                    a.collect_slots(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse;

    fn compile(src: &str, names: &[&str]) -> CompiledExpr {
        let owned: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        CompiledExpr::compile(&parse(src).unwrap(), &owned).unwrap()
    }

    #[test]
    fn slots_resolved_in_name_order() {
        let c = compile("b + a", &["a", "b"]);
        assert_eq!(c.slots(), vec![0, 1]);
    }

    #[test]
    fn short_circuit_and_or() {
        // `x != 0 and 10 % x == 0` must not trip the NaN path when x == 0.
        let c = compile("x != 0 and 10 % x == 0", &["x"]);
        assert!(!c.eval_bool(&[0]));
        assert!(c.eval_bool(&[5]));
        assert!(!c.eval_bool(&[3]));
        let c = compile("x == 0 or 10 % x == 0", &["x"]);
        assert!(c.eval_bool(&[0]));
        assert!(c.eval_bool(&[2]));
    }

    #[test]
    fn comparison_produces_bool_num() {
        let c = compile("(a > 1) + (b > 1) == 2", &["a", "b"]);
        assert!(c.eval_bool(&[2, 2]));
        assert!(!c.eval_bool(&[2, 0]));
    }

    #[test]
    fn nan_comparisons_reject() {
        // Division by zero yields NaN; all comparisons with NaN are false.
        let c = compile("1 / x == 1 / x", &["x"]);
        assert!(!c.eval_bool(&[0]));
        assert!(c.eval_bool(&[1]));
    }
}
