//! The `bat/wire/v1` message schema.
//!
//! Every frame on the wire (see [`crate::codec`]) is one JSON document: a
//! [`RequestEnvelope`] client→server, a [`ResponseEnvelope`] server→client.
//! Envelopes carry the schema id so both sides fail fast on version skew,
//! and every message body rejects unknown fields — a frame from a future
//! schema revision is an error, never a silent partial parse.
//!
//! Messages use externally-tagged `snake_case` enums whose payloads are
//! plain structs, e.g.
//!
//! ```json
//! {"v": "bat/wire/v1", "req": {"eval": {"session": 3, "indices": [0, 7]}}}
//! ```
//!
//! Evaluation outcomes reuse the serde representations of
//! [`Measurement`](bat_core::Measurement) and
//! [`EvalFailure`](bat_core::EvalFailure) verbatim — the same shapes
//! campaign artifacts store — so a measurement that crossed the wire
//! serializes back into an artifact byte-identically to one measured in
//! process.

use serde::{Deserialize, Serialize};

use bat_cache::CacheCell;
use bat_core::{Error, EvalOutcome, Protocol, RetryPolicy};
use bat_gpusim::FaultModel;

/// The wire-schema identifier every envelope must carry.
pub const WIRE_SCHEMA: &str = "bat/wire/v1";

/// A client→server frame: schema id + request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RequestEnvelope {
    /// Schema id; must equal [`WIRE_SCHEMA`].
    pub v: String,
    /// The request body.
    pub req: Request,
}

impl RequestEnvelope {
    /// Wrap a request in a current-schema envelope.
    pub fn new(req: Request) -> Self {
        RequestEnvelope {
            v: WIRE_SCHEMA.to_string(),
            req,
        }
    }
}

/// A server→client frame: schema id + response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ResponseEnvelope {
    /// Schema id; must equal [`WIRE_SCHEMA`].
    pub v: String,
    /// The response body.
    pub resp: Response,
}

impl ResponseEnvelope {
    /// Wrap a response in a current-schema envelope.
    pub fn new(resp: Response) -> Self {
        ResponseEnvelope {
            v: WIRE_SCHEMA.to_string(),
            resp,
        }
    }
}

/// Everything a client can ask of the daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Request {
    /// Open a tuning session over a benchmark problem.
    Open(OpenSession),
    /// Evaluate a batch of configuration indices in an open session.
    Eval(EvalBatch),
    /// Close a session, collecting its final statistics.
    Close(CloseSession),
    /// Look up the daemon's loaded `bat/cache/v1` cell for a key.
    CacheLookup(CacheLookup),
    /// Liveness probe.
    Ping,
    /// Fetch the daemon's metrics registry as Prometheus text exposition.
    Metrics,
    /// Ask the daemon to stop accepting new connections.
    Shutdown,
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Response {
    /// A session is open and ready to evaluate.
    Opened(Opened),
    /// Outcomes of one evaluated batch.
    Evaluated(Evaluated),
    /// A session closed; final statistics.
    Closed(Closed),
    /// Answer to a cache lookup (a miss carries no cell).
    CacheResult(CacheResult),
    /// Liveness answer.
    Pong,
    /// The metrics registry, rendered as text exposition.
    Metrics(MetricsReport),
    /// The daemon acknowledged shutdown.
    ShuttingDown,
    /// The request failed.
    Error(ErrorResponse),
}

/// Payload of [`Request::Open`]: the full recipe for a server-side
/// evaluator, pre-resolved to primitives (no spec-compilation logic lives
/// on the server).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct OpenSession {
    /// Benchmark name from the kernel registry, e.g. `"gemm"`.
    pub benchmark: String,
    /// GPU architecture name, e.g. `"RTX 3090"`.
    pub architecture: String,
    /// Runs per configuration.
    pub runs: u32,
    /// Relative run-to-run noise.
    pub sigma: f64,
    /// Seed folded into the deterministic measurement noise.
    pub noise_seed: u64,
    /// Measurement parallelism per ask/tell step.
    pub batch: u32,
    /// Per-session evaluation budget (`null` = unlimited).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget: Option<u64>,
    /// Measure the energy objective too.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub energy: bool,
    /// Blend both objectives into one scalar, server-side.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub scalarization: Option<WireScalarization>,
    /// Fault-injection model + retry policy for chaos sessions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<WireFaults>,
}

impl OpenSession {
    /// A time-only session over `benchmark`×`architecture` under
    /// `protocol` — the common case; optional blocks default off.
    pub fn new(
        benchmark: impl Into<String>,
        architecture: impl Into<String>,
        protocol: Protocol,
    ) -> Self {
        OpenSession {
            benchmark: benchmark.into(),
            architecture: architecture.into(),
            runs: protocol.runs,
            sigma: protocol.sigma,
            noise_seed: protocol.seed,
            batch: protocol.batch,
            budget: None,
            energy: false,
            scalarization: None,
            faults: None,
        }
    }

    /// The measurement protocol this session spec describes.
    pub fn protocol(&self) -> Protocol {
        Protocol {
            runs: self.runs,
            sigma: self.sigma,
            seed: self.noise_seed,
            batch: self.batch,
        }
    }
}

/// Payload of [`Request::Eval`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct EvalBatch {
    /// The session to evaluate in.
    pub session: u64,
    /// Dense configuration indices to measure, in order.
    pub indices: Vec<u64>,
}

/// Payload of [`Request::Close`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CloseSession {
    /// The session to close.
    pub session: u64,
}

/// Payload of [`Response::Opened`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Opened {
    /// Daemon-assigned session id; quote it in every later request.
    pub session: u64,
    /// The (possibly scalarized) problem name, e.g. `"gemm+energy"`.
    pub problem: String,
    /// The platform label of the session's problem.
    pub platform: String,
    /// Remaining budget at open (`null` = unlimited).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget_left: Option<u64>,
}

/// Payload of [`Response::Evaluated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Evaluated {
    /// The session that evaluated.
    pub session: u64,
    /// One outcome per affordable requested index, in request order. A
    /// shorter vector than the request means the budget died mid-batch
    /// (truncated tail, exactly like the in-process evaluator).
    pub outcomes: Vec<EvalOutcome>,
    /// Session statistics after this batch.
    pub stats: SessionStats,
    /// Remaining budget after this batch (`null` = unlimited).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget_left: Option<u64>,
}

/// Payload of [`Response::Closed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Closed {
    /// The session that closed.
    pub session: u64,
    /// Final session statistics.
    pub stats: SessionStats,
}

/// Payload of [`Request::CacheLookup`]: the exact cell key. The scenario
/// string is the harness's canonical form (`bat_harness::scenario_of`), so
/// clients and campaign-built caches agree on keys by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CacheLookup {
    /// Benchmark name, e.g. `"gemm"`.
    pub benchmark: String,
    /// Architecture name, e.g. `"RTX 3090"`.
    pub architecture: String,
    /// Canonical measurement-scenario string.
    pub scenario: String,
}

/// Payload of [`Response::CacheResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CacheResult {
    /// The cached cell, absent on a miss (or when the daemon loaded no
    /// cache at all).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cell: Option<CacheCell>,
}

/// Payload of [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ErrorResponse {
    /// The session the error concerns, when there is one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub session: Option<u64>,
    /// What went wrong, in the suite's unified error hierarchy.
    pub error: Error,
}

/// Payload of [`Response::Metrics`]: the registry in Prometheus text
/// exposition format — exactly what `bat serve --metrics` serves over
/// HTTP, so wire clients and scrapers read the same counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MetricsReport {
    /// Prometheus-style text exposition.
    pub text: String,
}

/// Evaluation counters of one session — the wire shape *is* the core
/// statistics snapshot ([`bat_core::EvalStats`]): one definition shared by
/// the evaluator, the wire and the harness artifacts, so the tallies
/// cannot drift between layers.
pub use bat_core::EvalStats as SessionStats;

/// Wire mirror of [`bat_moo::Scalarization`] (which predates the wire and
/// carries no serde of its own).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WireScalarization {
    /// Pure energy.
    Energy,
    /// Energy–delay product.
    Edp,
    /// Weighted time–energy blend.
    Weighted(WireBlend),
    /// Chebyshev (max-norm) time–energy blend.
    Chebyshev(WireBlend),
}

/// Blend coefficients shared by the weighted and Chebyshev scalarizations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WireBlend {
    /// Weight on the (scaled) time objective, in `[0, 1]`.
    pub time_weight: f64,
    /// Time normalization scale in ms.
    pub time_scale_ms: f64,
    /// Energy normalization scale in mJ.
    pub energy_scale_mj: f64,
}

impl From<bat_moo::Scalarization> for WireScalarization {
    fn from(s: bat_moo::Scalarization) -> Self {
        use bat_moo::Scalarization as S;
        match s {
            S::Energy => WireScalarization::Energy,
            S::Edp => WireScalarization::Edp,
            S::Weighted {
                time_weight,
                time_scale_ms,
                energy_scale_mj,
            } => WireScalarization::Weighted(WireBlend {
                time_weight,
                time_scale_ms,
                energy_scale_mj,
            }),
            S::Chebyshev {
                time_weight,
                time_scale_ms,
                energy_scale_mj,
            } => WireScalarization::Chebyshev(WireBlend {
                time_weight,
                time_scale_ms,
                energy_scale_mj,
            }),
        }
    }
}

impl From<WireScalarization> for bat_moo::Scalarization {
    fn from(s: WireScalarization) -> Self {
        use bat_moo::Scalarization as S;
        match s {
            WireScalarization::Energy => S::Energy,
            WireScalarization::Edp => S::Edp,
            WireScalarization::Weighted(b) => S::Weighted {
                time_weight: b.time_weight,
                time_scale_ms: b.time_scale_ms,
                energy_scale_mj: b.energy_scale_mj,
            },
            WireScalarization::Chebyshev(b) => S::Chebyshev {
                time_weight: b.time_weight,
                time_scale_ms: b.time_scale_ms,
                energy_scale_mj: b.energy_scale_mj,
            },
        }
    }
}

/// Wire mirror of [`FaultModel`] + [`RetryPolicy`] (which predate the wire
/// and carry no serde of their own).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WireFaults {
    /// Probability a measurement attempt fails transiently.
    pub transient_rate: f64,
    /// Probability a measurement attempt hangs past the deadline.
    pub timeout_rate: f64,
    /// Measurement deadline in ms (reporting only).
    pub deadline_ms: f64,
    /// Probability an individual run sample comes back corrupted.
    pub outlier_rate: f64,
    /// Multiplicative corruption applied to outlier samples.
    pub outlier_factor: f64,
    /// Fraction of the configuration space that crashes every attempt.
    pub crash_rate: f64,
    /// Seed folded into every fault draw.
    pub fault_seed: u64,
    /// Retries per evaluation after a retryable failure.
    pub max_retries: u32,
    /// Backoff: the r-th retry charges `1 + backoff_evals · r` evals.
    pub backoff_evals: u32,
    /// Quarantine after this many observed crashes (`0` disables).
    pub quarantine_after: u32,
}

impl From<(FaultModel, RetryPolicy)> for WireFaults {
    fn from((m, p): (FaultModel, RetryPolicy)) -> Self {
        WireFaults {
            transient_rate: m.transient_rate,
            timeout_rate: m.timeout_rate,
            deadline_ms: m.deadline_ms,
            outlier_rate: m.outlier_rate,
            outlier_factor: m.outlier_factor,
            crash_rate: m.crash_rate,
            fault_seed: m.seed,
            max_retries: p.max_retries,
            backoff_evals: p.backoff_evals,
            quarantine_after: p.quarantine_after,
        }
    }
}

impl From<WireFaults> for (FaultModel, RetryPolicy) {
    fn from(w: WireFaults) -> Self {
        (
            FaultModel {
                transient_rate: w.transient_rate,
                timeout_rate: w.timeout_rate,
                deadline_ms: w.deadline_ms,
                outlier_rate: w.outlier_rate,
                outlier_factor: w.outlier_factor,
                crash_rate: w.crash_rate,
                seed: w.fault_seed,
            },
            RetryPolicy {
                max_retries: w.max_retries,
                backoff_evals: w.backoff_evals,
                quarantine_after: w.quarantine_after,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_core::{EvalFailure, Measurement};

    #[test]
    fn request_envelope_round_trips() {
        let env = RequestEnvelope::new(Request::Eval(EvalBatch {
            session: 3,
            indices: vec![0, 7, 7],
        }));
        let json = serde_json::to_string(&env).unwrap();
        assert!(json.contains("\"bat/wire/v1\""), "{json}");
        assert!(json.contains("\"eval\""), "{json}");
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn response_with_outcomes_round_trips() {
        let env = ResponseEnvelope::new(Response::Evaluated(Evaluated {
            session: 1,
            outcomes: vec![
                Ok(Measurement::from_samples(vec![1.5, 1.25])),
                Err(EvalFailure::Restricted),
            ],
            stats: SessionStats {
                evals: 2,
                distinct: 2,
                retries: 0,
                quarantined: 0,
            },
            budget_left: Some(38),
        }));
        let json = serde_json::to_string(&env).unwrap();
        let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn unit_requests_are_compact() {
        let json = serde_json::to_string(&RequestEnvelope::new(Request::Ping)).unwrap();
        assert_eq!(json, "{\"v\":\"bat/wire/v1\",\"req\":\"ping\"}");
    }

    #[test]
    fn metrics_round_trips() {
        let req = serde_json::to_string(&RequestEnvelope::new(Request::Metrics)).unwrap();
        assert_eq!(req, "{\"v\":\"bat/wire/v1\",\"req\":\"metrics\"}");
        let back: RequestEnvelope = serde_json::from_str(&req).unwrap();
        assert_eq!(back.req, Request::Metrics);

        let env = ResponseEnvelope::new(Response::Metrics(MetricsReport {
            text: "# TYPE bat_sched_grants_total counter\nbat_sched_grants_total 3\n".into(),
        }));
        let json = serde_json::to_string(&env).unwrap();
        let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn cache_lookup_round_trips() {
        let env = RequestEnvelope::new(Request::CacheLookup(CacheLookup {
            benchmark: "gemm".into(),
            architecture: "RTX 3090".into(),
            scenario: "objective=time;budget=40;runs=3;sigma=0.01;noise_seed=0;batch=1".into(),
        }));
        let json = serde_json::to_string(&env).unwrap();
        assert!(json.contains("\"cache_lookup\""), "{json}");
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);

        let miss = ResponseEnvelope::new(Response::CacheResult(CacheResult { cell: None }));
        let json = serde_json::to_string(&miss).unwrap();
        assert!(!json.contains("cell"), "a miss carries no cell: {json}");
        let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, miss);

        let mut store = bat_cache::CacheStore::new();
        store.observe(
            "gemm",
            "RTX 3090",
            "objective=time;budget=40;runs=3;sigma=0.01;noise_seed=0;batch=1",
            &std::collections::BTreeMap::from([("block_size_x".to_string(), 64)]),
            1.25,
            None,
        );
        let cell = store.cells.first().cloned().unwrap();
        let hit = ResponseEnvelope::new(Response::CacheResult(CacheResult { cell: Some(cell) }));
        let json = serde_json::to_string(&hit).unwrap();
        assert!(json.contains("\"cache_result\""), "{json}");
        let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hit);
    }

    #[test]
    fn open_session_skips_default_blocks() {
        let open = OpenSession::new("gemm", "RTX 3090", Protocol::default());
        let json = serde_json::to_string(&open).unwrap();
        assert!(!json.contains("scalarization"), "{json}");
        assert!(!json.contains("faults"), "{json}");
        assert!(!json.contains("energy"), "{json}");
        assert!(!json.contains("budget"), "{json}");
        let back: OpenSession = serde_json::from_str(&json).unwrap();
        assert_eq!(back, open);
        assert_eq!(back.protocol(), Protocol::default());
    }

    #[test]
    fn envelopes_reject_unknown_fields() {
        let json = "{\"v\":\"bat/wire/v1\",\"req\":\"ping\",\"extra\":1}";
        assert!(serde_json::from_str::<RequestEnvelope>(json).is_err());
        let body = "{\"session\":1,\"indices\":[2],\"surprise\":true}";
        assert!(serde_json::from_str::<EvalBatch>(body).is_err());
    }

    #[test]
    fn scalarization_mirror_round_trips() {
        for s in [
            bat_moo::Scalarization::Energy,
            bat_moo::Scalarization::Edp,
            bat_moo::Scalarization::Weighted {
                time_weight: 0.3,
                time_scale_ms: 2.0,
                energy_scale_mj: 5.0,
            },
            bat_moo::Scalarization::Chebyshev {
                time_weight: 0.7,
                time_scale_ms: 1.0,
                energy_scale_mj: 1.0,
            },
        ] {
            let wire = WireScalarization::from(s);
            let json = serde_json::to_string(&wire).unwrap();
            let back: WireScalarization = serde_json::from_str(&json).unwrap();
            assert_eq!(bat_moo::Scalarization::from(back), s);
        }
    }

    #[test]
    fn faults_mirror_round_trips() {
        let model = FaultModel {
            transient_rate: 0.1,
            crash_rate: 0.05,
            seed: 9,
            ..FaultModel::disabled()
        };
        let pair = (model, RetryPolicy::default());
        let wire = WireFaults::from(pair);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireFaults = serde_json::from_str(&json).unwrap();
        assert_eq!(<(FaultModel, RetryPolicy)>::from(back), pair);
    }
}
