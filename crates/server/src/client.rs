//! The remote evaluation backend: an [`EvalBackend`] over a wire
//! connection.
//!
//! [`RemoteBackend`] is the client half of the tuning service. It opens one
//! session on a daemon, keeps a client-side copy of the configuration
//! space (tuners decode candidates locally; only indices and outcomes
//! cross the wire), and mirrors the session's budget and statistics from
//! every response, so `has_budget`/`budget_left` answer synchronously —
//! the shared ask/tell driver runs against it exactly as it runs against
//! the in-process [`Evaluator`](bat_core::Evaluator).

use std::cell::{Cell, RefCell};
use std::io::{Read, Write};
use std::net::TcpStream;

use bat_core::{Error, EvalBackend, EvalOutcome, Protocol};
use bat_gpusim::GpuArch;
use bat_space::ConfigSpace;

use crate::codec;
use crate::wire::{CloseSession, EvalBatch, OpenSession, Request, Response, SessionStats};

/// One open tuning session over a wire connection (loopback or TCP).
///
/// The backend is strictly request/response: each `evaluate_batch` sends
/// one `eval` frame and blocks for its answer. Concurrency across sessions
/// comes from opening more connections (the daemon schedules them fairly);
/// the per-session in-flight bound exists for clients that pipeline by
/// hand on a raw connection.
pub struct RemoteBackend<S: Read + Write> {
    conn: RefCell<S>,
    session: u64,
    space: ConfigSpace,
    problem_name: String,
    platform: String,
    protocol: Protocol,
    budget_left: Cell<Option<u64>>,
    stats: Cell<SessionStats>,
}

impl RemoteBackend<TcpStream> {
    /// Connect to a daemon at `addr` (e.g. `"127.0.0.1:4780"`) and open a
    /// session there.
    pub fn connect(addr: &str, open: OpenSession) -> Result<Self, Error> {
        let conn = TcpStream::connect(addr)
            .map_err(|e| Error::transport(format!("connect {addr}: {e}")))?;
        conn.set_nodelay(true).map_err(Error::transport)?;
        RemoteBackend::open(conn, open)
    }
}

impl<S: Read + Write> RemoteBackend<S> {
    /// Open a session described by `open` over an established connection.
    ///
    /// The configuration space is reconstructed client-side from the
    /// kernel registry (it is a pure function of benchmark × architecture,
    /// so both sides agree by construction); the session's problem name
    /// and platform come back from the daemon, so scalarized sessions
    /// report their blended names exactly as in-process runs do.
    pub fn open(conn: S, open: OpenSession) -> Result<Self, Error> {
        let arch = GpuArch::by_name(&open.architecture).ok_or_else(|| {
            Error::spec(format!("unknown GPU architecture {:?}", open.architecture))
        })?;
        let base = bat_kernels::benchmark(&open.benchmark, arch)
            .ok_or_else(|| Error::spec(format!("unknown benchmark {:?}", open.benchmark)))?;
        let space = bat_core::TuningProblem::space(&base).clone();
        let protocol = open.protocol();
        let mut conn = conn;
        codec::write_request(&mut conn, Request::Open(open))?;
        match codec::read_response(&mut conn)? {
            Response::Opened(opened) => Ok(RemoteBackend {
                conn: RefCell::new(conn),
                session: opened.session,
                space,
                problem_name: opened.problem,
                platform: opened.platform,
                protocol,
                budget_left: Cell::new(opened.budget_left),
                stats: Cell::new(SessionStats::default()),
            }),
            Response::Error(e) => Err(e.error),
            other => Err(Error::wire(format!(
                "expected opened/error after open, got {other:?}"
            ))),
        }
    }

    /// The daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Close the session, returning its final statistics.
    pub fn close(self) -> Result<SessionStats, Error> {
        let mut conn = self.conn.into_inner();
        codec::write_request(
            &mut conn,
            Request::Close(CloseSession {
                session: self.session,
            }),
        )?;
        match codec::read_response(&mut conn)? {
            Response::Closed(closed) => Ok(closed.stats),
            Response::Error(e) => Err(e.error),
            other => Err(Error::wire(format!(
                "expected closed/error after close, got {other:?}"
            ))),
        }
    }
}

impl<S: Read + Write> EvalBackend for RemoteBackend<S> {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn problem_name(&self) -> &str {
        &self.problem_name
    }

    fn platform(&self) -> &str {
        &self.platform
    }

    fn protocol(&self) -> Protocol {
        self.protocol
    }

    fn evaluate_batch(&self, indices: &[u64]) -> Result<Vec<EvalOutcome>, Error> {
        let mut conn = self.conn.borrow_mut();
        codec::write_request(
            &mut *conn,
            Request::Eval(EvalBatch {
                session: self.session,
                indices: indices.to_vec(),
            }),
        )?;
        match codec::read_response(&mut *conn)? {
            Response::Evaluated(ev) => {
                if ev.session != self.session {
                    return Err(Error::wire(format!(
                        "response for session {}, expected {}",
                        ev.session, self.session
                    )));
                }
                self.stats.set(ev.stats);
                self.budget_left.set(ev.budget_left);
                Ok(ev.outcomes)
            }
            Response::Error(e) => Err(e.error),
            other => Err(Error::wire(format!(
                "expected evaluated/error after eval, got {other:?}"
            ))),
        }
    }

    fn has_budget(&self) -> bool {
        self.budget_left.get().is_none_or(|left| left > 0)
    }

    fn budget_left(&self) -> Option<u64> {
        self.budget_left.get()
    }

    fn evals_used(&self) -> u64 {
        self.stats.get().evals
    }

    fn distinct_evals(&self) -> u64 {
        self.stats.get().distinct
    }

    fn retries_used(&self) -> u64 {
        self.stats.get().retries
    }

    fn quarantined_configs(&self) -> u64 {
        self.stats.get().quarantined
    }
}
