//! The `bat serve` daemon: many concurrent tuning sessions, one machine.
//!
//! ## Lifecycle
//!
//! A [`Daemon`] owns the process-wide evaluation resources: the fair
//! scheduler gating the measurement worker pool, the session id source and
//! the shutdown flag. Connections arrive either over TCP ([`Daemon::serve`])
//! or in-process over the loopback transport ([`Daemon::connect_loopback`]);
//! each connection gets a reader thread, and each session opened on a
//! connection gets a dedicated worker thread that owns that session's
//! problem and [`Evaluator`].
//!
//! ## Session model
//!
//! Sessions are connection-scoped: `open` allocates a daemon-unique id,
//! `eval` requests are forwarded to the session's worker over a *bounded*
//! queue, `close` returns the final statistics. When a connection drops,
//! its sessions are torn down with it — resumability lives a layer up, in
//! the campaign checkpoint artifacts, which a reconnecting client replays
//! to skip already-completed trials.
//!
//! ## Backpressure and fairness
//!
//! Two mechanisms keep one client from monopolizing the daemon:
//!
//! * **per-session in-flight bound** — each session buffers at most
//!   [`ServerConfig::max_inflight_per_session`] unprocessed batches;
//!   further `eval` requests are refused with a `session` error instead of
//!   queueing without limit.
//! * **fair scheduling** — at most
//!   [`ServerConfig::max_concurrent_batches`] batches evaluate at once,
//!   granted in round-robin arrival order across sessions
//!   (see [`FairScheduler`]).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use bat_cache::CacheIndex;
use bat_core::{Error, EvalBackend, Evaluator, TuningProblem};
use bat_gpusim::GpuArch;

use crate::codec;
use crate::duplex::{duplex, DuplexStream};
use crate::scheduler::FairScheduler;
use crate::wire::{
    CacheResult, Closed, ErrorResponse, EvalBatch, Evaluated, OpenSession, Opened, Request,
    Response, SessionStats,
};

/// Tunable limits of one daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Batches evaluating concurrently across all sessions (fair
    /// round-robin beyond that).
    pub max_concurrent_batches: usize,
    /// Unprocessed batches one session may buffer before further `eval`
    /// requests are refused (backpressure).
    pub max_inflight_per_session: usize,
    /// Seconds between heartbeat lines on stderr (sessions open, evals/s,
    /// backpressure since the last beat). `0` disables the heartbeat —
    /// the default, so embedded daemons (tests, loopback) stay silent.
    pub heartbeat_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent_batches: 4,
            max_inflight_per_session: 2,
            heartbeat_secs: 0,
        }
    }
}

/// Observability handles for the daemon. Telemetry only — refusal and
/// scheduling behaviour are driven by the config, never by these.
struct ServeMetrics {
    sessions_open: &'static bat_obs::metrics::Gauge,
    sessions_total: &'static bat_obs::metrics::Counter,
    requests: &'static bat_obs::metrics::Counter,
    backpressure: &'static bat_obs::metrics::Counter,
    inflight: &'static bat_obs::metrics::Gauge,
}

fn obs() -> &'static ServeMetrics {
    use bat_obs::metrics::{counter, gauge};
    static M: std::sync::OnceLock<ServeMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ServeMetrics {
        sessions_open: gauge("bat_serve_sessions_open", "Sessions currently open."),
        sessions_total: counter("bat_serve_sessions_total", "Sessions opened since start."),
        requests: counter("bat_serve_requests_total", "Wire requests decoded."),
        backpressure: counter(
            "bat_serve_backpressure_total",
            "Eval requests refused because a session's in-flight bound was full.",
        ),
        inflight: gauge(
            "bat_serve_inflight",
            "Eval batches accepted but not yet picked up by a session worker.",
        ),
    })
}

/// Daemon-wide shared state.
struct Shared {
    scheduler: FairScheduler,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    /// Loaded `bat/cache/v1` index answering `cache_lookup` requests.
    /// Lock-free reads: every connection thread shares one immutable
    /// snapshot, so lookups never contend with evaluation.
    cache: Option<Arc<CacheIndex>>,
}

/// A tuning daemon hosting concurrent evaluation sessions.
pub struct Daemon {
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl Daemon {
    /// A daemon with the given limits. A nonzero
    /// [`ServerConfig::heartbeat_secs`] starts the heartbeat thread, which
    /// lives until the daemon is dropped or shut down.
    pub fn new(config: ServerConfig) -> Daemon {
        Daemon::build(config, None)
    }

    /// A daemon that additionally serves `cache_lookup` requests from the
    /// given pre-built lock-free index (a cache loaded at startup by
    /// `bat serve --cache`). Without one, lookups answer a miss.
    pub fn with_cache(config: ServerConfig, cache: Arc<CacheIndex>) -> Daemon {
        Daemon::build(config, Some(cache))
    }

    fn build(config: ServerConfig, cache: Option<Arc<CacheIndex>>) -> Daemon {
        let daemon = Daemon {
            config,
            shared: Arc::new(Shared {
                scheduler: FairScheduler::new(config.max_concurrent_batches),
                next_session: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                cache,
            }),
        };
        if config.heartbeat_secs > 0 {
            let weak = Arc::downgrade(&daemon.shared);
            let period = std::time::Duration::from_secs(config.heartbeat_secs);
            std::thread::spawn(move || heartbeat_loop(weak, period));
        }
        daemon
    }

    /// True once a client sent `shutdown`.
    pub fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Open an in-process (loopback) connection to this daemon: the
    /// returned stream speaks the real `bat/wire/v1` codec to a handler
    /// thread, exercising every serialization boundary of the remote path
    /// without a socket.
    pub fn connect_loopback(&self) -> DuplexStream {
        let (client, server) = duplex();
        let shared = Arc::clone(&self.shared);
        let config = self.config;
        let reader = server.clone();
        std::thread::spawn(move || {
            handle_connection(shared, config, reader, Arc::new(Mutex::new(server)));
        });
        client
    }

    /// Accept TCP connections until a client sends `shutdown`.
    pub fn serve(&self, listener: TcpListener) -> Result<(), Error> {
        listener.set_nonblocking(true).map_err(Error::io)?;
        loop {
            if self.shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false).map_err(Error::io)?;
                    let reader = stream.try_clone().map_err(Error::io)?;
                    let shared = Arc::clone(&self.shared);
                    let config = self.config;
                    std::thread::spawn(move || {
                        handle_connection(shared, config, reader, Arc::new(Mutex::new(stream)));
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => return Err(Error::transport(e)),
            }
        }
    }
}

/// Commands a connection reader forwards to a session worker.
enum SessionCmd {
    Eval(Vec<u64>),
    Close,
}

/// One heartbeat line from the current registry readings and the previous
/// beat's totals. Factored out of the thread so the format is testable.
fn heartbeat_line(prev_evals: u64, prev_bp: u64, secs: f64) -> (String, u64, u64) {
    let sessions = bat_obs::metrics::gauge_value("bat_serve_sessions_open").unwrap_or(0);
    let evals = bat_obs::metrics::counter_value("bat_eval_evals_total").unwrap_or(0);
    let bp = bat_obs::metrics::counter_value("bat_serve_backpressure_total").unwrap_or(0);
    let rate = if secs > 0.0 {
        (evals.saturating_sub(prev_evals)) as f64 / secs
    } else {
        0.0
    };
    let line = format!(
        "bat serve: heartbeat sessions={} evals/s={:.1} backpressure=+{}",
        sessions,
        rate,
        bp.saturating_sub(prev_bp)
    );
    (line, evals, bp)
}

/// Heartbeat thread body: one line per period on stderr, exiting when the
/// daemon is dropped or shut down. Sleeps in short steps so exit latency
/// stays bounded regardless of the period.
fn heartbeat_loop(shared: std::sync::Weak<Shared>, period: std::time::Duration) {
    let step = std::time::Duration::from_millis(200);
    let mut prev_evals = bat_obs::metrics::counter_value("bat_eval_evals_total").unwrap_or(0);
    let mut prev_bp = 0u64;
    loop {
        let beat_started = std::time::Instant::now();
        while beat_started.elapsed() < period {
            std::thread::sleep(step.min(period));
            match shared.upgrade() {
                None => return,
                Some(s) if s.shutdown.load(Ordering::SeqCst) => return,
                Some(_) => {}
            }
        }
        let (line, evals, bp) =
            heartbeat_line(prev_evals, prev_bp, beat_started.elapsed().as_secs_f64());
        eprintln!("{line}");
        prev_evals = evals;
        prev_bp = bp;
    }
}

/// Serialize one response onto the connection's shared writer. Write
/// failures mean the client hung up; the reader thread will notice on its
/// next read, so they are ignored here.
fn respond<W: Write>(writer: &Mutex<W>, resp: Response) {
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = codec::write_response(&mut *w, resp);
}

fn session_error(session: Option<u64>, error: Error) -> Response {
    Response::Error(ErrorResponse { session, error })
}

/// One connection's read-dispatch loop: decode requests, route them to
/// session workers, answer protocol-level requests inline.
fn handle_connection<R: Read, W: Write + Send + 'static>(
    shared: Arc<Shared>,
    config: ServerConfig,
    mut reader: R,
    writer: Arc<Mutex<W>>,
) {
    let mut sessions: HashMap<u64, SyncSender<SessionCmd>> = HashMap::new();
    loop {
        let req = match codec::read_request(&mut reader) {
            Ok(req) => req,
            // Disconnect or an undecodable frame: report what we can and
            // stop; dropping the senders tears the session workers down.
            Err(Error::Transport(_)) => break,
            Err(e) => {
                respond(&writer, session_error(None, e));
                break;
            }
        };
        obs().requests.inc();
        match req {
            Request::Ping => respond(&writer, Response::Pong),
            Request::Metrics => respond(
                &writer,
                Response::Metrics(crate::wire::MetricsReport {
                    text: bat_obs::metrics::render_prometheus(),
                }),
            ),
            Request::CacheLookup(q) => {
                // The index records its own lookup counters; a daemon
                // without a cache still records the (necessarily missed)
                // lookup so hit rates stay honest.
                let cell = match shared.cache.as_ref() {
                    Some(ix) => ix
                        .lookup(&q.benchmark, &q.architecture, &q.scenario)
                        .cloned(),
                    None => {
                        bat_cache::record_lookup(false);
                        None
                    }
                };
                respond(&writer, Response::CacheResult(CacheResult { cell }));
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                respond(&writer, Response::ShuttingDown);
            }
            Request::Open(open) => {
                let id = shared.next_session.fetch_add(1, Ordering::SeqCst) + 1;
                let (tx, rx) = std::sync::mpsc::sync_channel::<SessionCmd>(
                    config.max_inflight_per_session.max(1),
                );
                let shared = Arc::clone(&shared);
                let writer = Arc::clone(&writer);
                std::thread::spawn(move || session_worker(shared, writer, id, open, rx));
                sessions.insert(id, tx);
            }
            Request::Eval(EvalBatch { session, indices }) => match sessions.get(&session) {
                None => respond(
                    &writer,
                    session_error(Some(session), Error::session("unknown session id")),
                ),
                Some(tx) => match tx.try_send(SessionCmd::Eval(indices)) {
                    Ok(()) => obs().inflight.add(1),
                    Err(TrySendError::Full(_)) => {
                        obs().backpressure.inc();
                        respond(
                            &writer,
                            session_error(
                                Some(session),
                                Error::session(format!(
                                "backpressure: session {session} already has {} in-flight batches",
                                config.max_inflight_per_session.max(1)
                            )),
                            ),
                        )
                    }
                    Err(TrySendError::Disconnected(_)) => respond(
                        &writer,
                        session_error(Some(session), Error::session("session terminated")),
                    ),
                },
            },
            Request::Close(close) => match sessions.remove(&close.session) {
                None => respond(
                    &writer,
                    session_error(Some(close.session), Error::session("unknown session id")),
                ),
                // Blocking send: queued batches finish first, then the
                // worker answers `closed` and exits. A dead worker already
                // reported its error.
                Some(tx) => {
                    let _ = tx.send(SessionCmd::Close);
                }
            },
        }
    }
}

/// The statistics snapshot of one evaluator — the shared
/// [`EvalBackend::stats`] reading, so wire responses report exactly the
/// tallies the evaluator counted.
fn stats_of(eval: &Evaluator<'_>) -> SessionStats {
    EvalBackend::stats(eval)
}

/// A session worker: owns the problem, builds the evaluator through the
/// shared validated path, then serves eval/close commands until the
/// connection goes away.
fn session_worker<W: Write>(
    shared: Arc<Shared>,
    writer: Arc<Mutex<W>>,
    id: u64,
    open: OpenSession,
    rx: Receiver<SessionCmd>,
) {
    let Some(arch) = GpuArch::by_name(&open.architecture) else {
        respond(
            &writer,
            session_error(
                Some(id),
                Error::spec(format!("unknown GPU architecture {:?}", open.architecture)),
            ),
        );
        return;
    };
    let Some(base) = bat_kernels::benchmark(&open.benchmark, arch) else {
        respond(
            &writer,
            session_error(
                Some(id),
                Error::spec(format!("unknown benchmark {:?}", open.benchmark)),
            ),
        );
        return;
    };
    // Blended objectives wrap the problem exactly as the in-process
    // campaign path does, so names, noise salts and therefore artifacts
    // agree byte for byte.
    match open.scalarization {
        None => run_session(&base, &shared, &writer, id, &open, rx),
        Some(s) => {
            let blended = bat_moo::Scalarized::new(base, s.into());
            run_session(&blended, &shared, &writer, id, &open, rx);
        }
    }
}

fn run_session<W: Write>(
    problem: &dyn TuningProblem,
    shared: &Shared,
    writer: &Mutex<W>,
    id: u64,
    open: &OpenSession,
    rx: Receiver<SessionCmd>,
) {
    let mut builder = Evaluator::builder(problem)
        .protocol(open.protocol())
        .maybe_budget(open.budget)
        .energy(open.energy);
    if let Some(wf) = open.faults {
        let (model, policy) = wf.into();
        builder = builder.faults(model, policy);
    }
    let eval = match builder.build() {
        Ok(eval) => eval,
        Err(e) => {
            respond(writer, session_error(Some(id), e));
            return;
        }
    };
    // Open-session gauge, decremented however the worker exits (close,
    // connection drop, panic unwind).
    struct OpenGuard;
    impl Drop for OpenGuard {
        fn drop(&mut self) {
            obs().sessions_open.sub(1);
        }
    }
    obs().sessions_open.add(1);
    obs().sessions_total.inc();
    let _open = OpenGuard;
    respond(
        writer,
        Response::Opened(Opened {
            session: id,
            problem: problem.name().to_string(),
            platform: problem.platform().to_string(),
            budget_left: eval.budget_left(),
        }),
    );
    while let Ok(cmd) = rx.recv() {
        match cmd {
            SessionCmd::Eval(indices) => {
                obs().inflight.sub(1);
                // The fair scheduler grants this batch its turn; the
                // budget itself is charged inside `evaluate_batch`'s
                // single CAS claim, so per-session budgets hold exactly
                // no matter how turns interleave.
                let outcomes = shared.scheduler.run(|| eval.evaluate_batch(&indices));
                respond(
                    writer,
                    Response::Evaluated(Evaluated {
                        session: id,
                        outcomes,
                        stats: stats_of(&eval),
                        budget_left: eval.budget_left(),
                    }),
                );
            }
            SessionCmd::Close => {
                respond(
                    writer,
                    Response::Closed(Closed {
                        session: id,
                        stats: stats_of(&eval),
                    }),
                );
                return;
            }
        }
    }
    // Connection dropped without a close: tear down silently.
}
