//! # bat-server
//!
//! Tuning-as-a-service for the suite: a long-running daemon that hosts
//! many concurrent tuning sessions behind the `bat/wire/v1` protocol —
//! length-prefixed JSON frames carrying session open/close, evaluation
//! batches and budget/statistics accounting — plus the client-side
//! [`RemoteBackend`] implementing [`bat_core::EvalBackend`] over that
//! wire.
//!
//! Three deployment shapes share one contract:
//!
//! * **in-process** — `bat_core::Evaluator` used directly (no server);
//! * **loopback** — [`Daemon::connect_loopback`]: client and server in one
//!   process over the real codec (an in-memory [`duplex`] stream);
//! * **remote** — [`RemoteBackend::connect`] over TCP to a
//!   [`Daemon::serve`] instance.
//!
//! Because every shape runs the same shared ask/tell driver against the
//! same evaluator semantics (single-claim budgets, memoization, retry and
//! quarantine), campaign artifacts are byte-identical across all three —
//! which CI verifies.

#![warn(missing_docs)]

mod client;
pub mod codec;
mod daemon;
mod duplex;
mod metrics_http;
mod scheduler;
pub mod wire;

pub use client::RemoteBackend;
pub use daemon::{Daemon, ServerConfig};
pub use duplex::{duplex, DuplexStream};
pub use metrics_http::spawn_metrics_endpoint;
pub use scheduler::FairScheduler;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EvalBatch, OpenSession, Request, Response};
    use bat_core::{EvalBackend, Evaluator, Protocol, TuningProblem};
    use bat_gpusim::GpuArch;
    use bat_tuners::Tuner;

    fn open_spec(budget: u64) -> OpenSession {
        let mut open = OpenSession::new("gemm", "RTX 3090", Protocol::default());
        open.budget = Some(budget);
        open
    }

    #[test]
    fn loopback_session_matches_in_process_byte_for_byte() {
        let daemon = Daemon::new(ServerConfig::default());
        let backend = RemoteBackend::open(daemon.connect_loopback(), open_spec(10)).unwrap();

        let problem = bat_kernels::benchmark("gemm", GpuArch::rtx_3090()).unwrap();
        let native = Evaluator::with_protocol(&problem, Protocol::default()).with_budget(10);

        assert_eq!(backend.problem_name(), problem.name());
        assert_eq!(backend.platform(), problem.platform());
        assert_eq!(backend.space().cardinality(), problem.space().cardinality());

        let indices = [0u64, 17, 17, 4242, 9];
        let remote = backend.evaluate_batch(&indices).unwrap();
        let local = Evaluator::evaluate_batch(&native, &indices);
        assert_eq!(remote, local);
        // Serialized forms agree byte for byte (the artifact argument).
        for (r, l) in remote.iter().zip(&local) {
            assert_eq!(
                serde_json::to_string(r).unwrap(),
                serde_json::to_string(l).unwrap()
            );
        }
        assert_eq!(backend.evals_used(), native.evals_used());
        assert_eq!(backend.distinct_evals(), native.distinct_evals());
        assert_eq!(backend.budget_left(), native.budget_left());

        let stats = backend.close().unwrap();
        assert_eq!(stats.evals, 5);
    }

    #[test]
    fn budget_truncates_mid_batch_like_in_process() {
        let daemon = Daemon::new(ServerConfig::default());
        let backend = RemoteBackend::open(daemon.connect_loopback(), open_spec(3)).unwrap();
        let out = backend.evaluate_batch(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(out.len(), 3, "budget of 3 affords exactly 3 of 5");
        assert!(!backend.has_budget());
        assert_eq!(backend.budget_left(), Some(0));
        let out = backend.evaluate_batch(&[6]).unwrap();
        assert!(out.is_empty(), "exhausted budget evaluates nothing");
    }

    #[test]
    fn tuner_over_loopback_matches_in_process_run() {
        let daemon = Daemon::new(ServerConfig::default());
        let mut open = OpenSession::new("pnpoly", "RTX 3090", Protocol::default().with_batch(4));
        open.budget = Some(24);
        let backend = RemoteBackend::open(daemon.connect_loopback(), open).unwrap();

        let tuner = bat_tuners::RandomSearch;
        let remote_run = tuner.try_tune(&backend, 7).unwrap();

        let problem = bat_kernels::benchmark("pnpoly", GpuArch::rtx_3090()).unwrap();
        let eval =
            Evaluator::with_protocol(&problem, Protocol::default().with_batch(4)).with_budget(24);
        let local_run = tuner.tune(&eval, 7);

        assert_eq!(
            serde_json::to_string(&remote_run).unwrap(),
            serde_json::to_string(&local_run).unwrap()
        );
    }

    #[test]
    fn concurrent_sessions_respect_their_own_budgets() {
        let daemon = Daemon::new(ServerConfig {
            max_concurrent_batches: 2,
            max_inflight_per_session: 2,
            heartbeat_secs: 0,
        });
        let budgets = [5u64, 9, 13, 17, 21];
        let threads: Vec<_> = budgets
            .into_iter()
            .map(|budget| {
                let conn = daemon.connect_loopback();
                std::thread::spawn(move || {
                    let backend = RemoteBackend::open(conn, open_spec(budget)).unwrap();
                    let mut total = 0u64;
                    while backend.has_budget() {
                        total += backend.evaluate_batch(&[total, total + 1]).unwrap().len() as u64;
                    }
                    let stats = backend.close().unwrap();
                    (budget, total, stats.evals)
                })
            })
            .collect();
        for t in threads {
            let (budget, evaluated, reported) = t.join().unwrap();
            assert_eq!(evaluated, budget, "session spent exactly its budget");
            assert_eq!(reported, budget);
        }
    }

    #[test]
    fn overfull_pipeline_hits_backpressure() {
        let daemon = Daemon::new(ServerConfig {
            max_concurrent_batches: 1,
            max_inflight_per_session: 1,
            heartbeat_secs: 0,
        });
        let mut conn = daemon.connect_loopback();
        codec::write_request(&mut conn, Request::Open(open_spec(1_000))).unwrap();
        let Response::Opened(opened) = codec::read_response(&mut conn).unwrap() else {
            panic!("expected opened");
        };
        // Flood without reading responses: at least one eval must be
        // refused with a session (backpressure) error once the bounded
        // queue is full.
        let big: Vec<u64> = (0..64).collect();
        for _ in 0..12 {
            codec::write_request(
                &mut conn,
                Request::Eval(EvalBatch {
                    session: opened.session,
                    indices: big.clone(),
                }),
            )
            .unwrap();
        }
        let mut refused = 0;
        let mut served = 0;
        for _ in 0..12 {
            match codec::read_response(&mut conn).unwrap() {
                Response::Evaluated(_) => served += 1,
                Response::Error(e) => {
                    assert!(
                        matches!(e.error, bat_core::Error::Session(_)),
                        "{:?}",
                        e.error
                    );
                    assert!(e.error.to_string().contains("backpressure"), "{}", e.error);
                    refused += 1;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(refused > 0, "bounded queue never refused a batch");
        assert!(served > 0, "some batches must still be served");
    }

    #[test]
    fn unknown_session_and_benchmark_are_typed_errors() {
        let daemon = Daemon::new(ServerConfig::default());
        let mut conn = daemon.connect_loopback();
        codec::write_request(
            &mut conn,
            Request::Eval(EvalBatch {
                session: 999,
                indices: vec![0],
            }),
        )
        .unwrap();
        let Response::Error(e) = codec::read_response(&mut conn).unwrap() else {
            panic!("expected error");
        };
        assert!(matches!(e.error, bat_core::Error::Session(_)));

        let mut open = open_spec(1);
        open.benchmark = "no-such-kernel".into();
        codec::write_request(&mut conn, Request::Open(open)).unwrap();
        let Response::Error(e) = codec::read_response(&mut conn).unwrap() else {
            panic!("expected error");
        };
        assert!(matches!(e.error, bat_core::Error::Spec(_)));
    }

    #[test]
    fn cache_lookup_serves_loaded_cells_and_misses_cleanly() {
        let scenario = "objective=time;budget=40;runs=3;sigma=0.01;noise_seed=0;batch=1";
        let mut store = bat_cache::CacheStore::new();
        store.observe(
            "gemm",
            "RTX 3090",
            scenario,
            &std::collections::BTreeMap::from([("block_size_x".to_string(), 128)]),
            0.75,
            None,
        );
        let index = std::sync::Arc::new(bat_cache::CacheIndex::build(&store));
        let daemon = Daemon::with_cache(ServerConfig::default(), index);
        let mut conn = daemon.connect_loopback();

        let lookup = |conn: &mut DuplexStream, benchmark: &str| {
            codec::write_request(
                conn,
                Request::CacheLookup(wire::CacheLookup {
                    benchmark: benchmark.into(),
                    architecture: "RTX 3090".into(),
                    scenario: scenario.into(),
                }),
            )
            .unwrap();
            let Response::CacheResult(res) = codec::read_response(conn).unwrap() else {
                panic!("expected cache_result");
            };
            res.cell
        };

        let hit = lookup(&mut conn, "gemm").expect("loaded cell must hit");
        assert_eq!(hit.best().unwrap().ms, 0.75);
        assert_eq!(hit.best().unwrap().config["block_size_x"], 128);
        assert!(lookup(&mut conn, "nbody").is_none(), "unknown key misses");

        // A daemon without a cache answers every lookup with a miss.
        let bare = Daemon::new(ServerConfig::default());
        let mut conn = bare.connect_loopback();
        assert!(lookup(&mut conn, "gemm").is_none());
    }

    #[test]
    fn ping_and_shutdown_round_trip() {
        let daemon = Daemon::new(ServerConfig::default());
        let mut conn = daemon.connect_loopback();
        codec::write_request(&mut conn, Request::Ping).unwrap();
        assert_eq!(codec::read_response(&mut conn).unwrap(), Response::Pong);
        assert!(!daemon.shutting_down());
        codec::write_request(&mut conn, Request::Shutdown).unwrap();
        assert_eq!(
            codec::read_response(&mut conn).unwrap(),
            Response::ShuttingDown
        );
        assert!(daemon.shutting_down());
    }

    #[test]
    fn tcp_session_matches_loopback() {
        let daemon = std::sync::Arc::new(Daemon::new(ServerConfig::default()));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        {
            let daemon = std::sync::Arc::clone(&daemon);
            std::thread::spawn(move || daemon.serve(listener).unwrap());
        }
        let tcp = RemoteBackend::connect(&addr, open_spec(6)).unwrap();
        let loopback = RemoteBackend::open(daemon.connect_loopback(), open_spec(6)).unwrap();
        let indices = [3u64, 1, 4, 1, 5, 9];
        assert_eq!(
            tcp.evaluate_batch(&indices).unwrap(),
            loopback.evaluate_batch(&indices).unwrap()
        );
        assert_eq!(tcp.close().unwrap(), loopback.close().unwrap());
        // Ask the daemon to stop so the serve thread exits.
        let mut conn = daemon.connect_loopback();
        codec::write_request(&mut conn, Request::Shutdown).unwrap();
        let _ = codec::read_response(&mut conn);
    }
}
