//! Length-prefixed JSON framing.
//!
//! One frame = a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON (one [`wire`](crate::wire) envelope). The length
//! prefix makes message boundaries explicit on a byte stream — no
//! delimiter scanning, no ambiguity about embedded newlines — and lets the
//! receiver reject oversized frames before reading them.
//!
//! Error taxonomy: anything below the JSON layer (short read, refused
//! write, oversized frame) is [`Error::Transport`]; a complete frame that
//! does not parse as the expected message is [`Error::Wire`].

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use bat_core::Error;

use crate::wire::{Request, RequestEnvelope, Response, ResponseEnvelope, WIRE_SCHEMA};

/// Largest accepted frame payload (16 MiB). Generous — the biggest real
/// frame is a batch of measurements — while still rejecting a garbage
/// length prefix before allocating for it.
pub const MAX_FRAME: usize = 16 << 20;

/// Write one `value` as a length-prefixed JSON frame.
pub fn write_frame<W: Write + ?Sized, T: Serialize>(w: &mut W, value: &T) -> Result<(), Error> {
    let json = serde_json::to_string(value).map_err(Error::wire)?;
    let bytes = json.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(Error::transport(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
            bytes.len()
        )));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(Error::transport)?;
    w.write_all(bytes).map_err(Error::transport)?;
    w.flush().map_err(Error::transport)?;
    Ok(())
}

/// Read one length-prefixed JSON frame and decode it as a `T`.
///
/// A clean EOF before the length prefix — the peer hung up between frames —
/// is reported as a [`Error::Transport`] whose message contains
/// `"connection closed"`; a truncated frame (EOF mid-prefix or mid-payload)
/// mentions the missing bytes instead.
pub fn read_frame<R: Read + ?Sized, T: Deserialize>(r: &mut R) -> Result<T, Error> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]).map_err(Error::transport)? {
            0 if got == 0 => return Err(Error::transport("connection closed")),
            0 => {
                return Err(Error::transport(format!(
                    "truncated frame: EOF after {got} of 4 length bytes"
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(Error::transport(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]).map_err(Error::transport)? {
            0 => {
                return Err(Error::transport(format!(
                    "truncated frame: EOF after {got} of {len} payload bytes"
                )))
            }
            n => got += n,
        }
    }
    let json = std::str::from_utf8(&payload)
        .map_err(|e| Error::wire(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(json).map_err(Error::wire)
}

/// Write one request, enveloped under the current schema.
pub fn write_request<W: Write + ?Sized>(w: &mut W, req: Request) -> Result<(), Error> {
    write_frame(w, &RequestEnvelope::new(req))
}

/// Read one request, checking the envelope's schema id.
pub fn read_request<R: Read + ?Sized>(r: &mut R) -> Result<Request, Error> {
    let env: RequestEnvelope = read_frame(r)?;
    if env.v != WIRE_SCHEMA {
        return Err(Error::wire(format!(
            "schema mismatch: got {:?}, this daemon speaks {WIRE_SCHEMA:?}",
            env.v
        )));
    }
    Ok(env.req)
}

/// Write one response, enveloped under the current schema.
pub fn write_response<W: Write + ?Sized>(w: &mut W, resp: Response) -> Result<(), Error> {
    write_frame(w, &ResponseEnvelope::new(resp))
}

/// Read one response, checking the envelope's schema id.
pub fn read_response<R: Read + ?Sized>(r: &mut R) -> Result<Response, Error> {
    let env: ResponseEnvelope = read_frame(r)?;
    if env.v != WIRE_SCHEMA {
        return Err(Error::wire(format!(
            "schema mismatch: got {:?}, this client speaks {WIRE_SCHEMA:?}",
            env.v
        )));
    }
    Ok(env.resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EvalBatch, Request};
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        let req = Request::Eval(EvalBatch {
            session: 5,
            indices: vec![1, 2, 3],
        });
        write_request(&mut buf, req.clone()).unwrap();
        let back = read_request(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn several_frames_stream_in_order() {
        let mut buf = Vec::new();
        write_request(&mut buf, Request::Ping).unwrap();
        write_request(
            &mut buf,
            Request::Close(crate::wire::CloseSession { session: 2 }),
        )
        .unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_request(&mut cur).unwrap(), Request::Ping);
        assert!(matches!(read_request(&mut cur).unwrap(), Request::Close(_)));
        // Clean EOF between frames.
        let err = read_request::<_>(&mut cur).unwrap_err();
        assert!(err.to_string().contains("connection closed"), "{err}");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, Request::Ping).unwrap();
        // Chop mid-payload.
        let cut = buf.len() - 3;
        let err = read_request(&mut Cursor::new(&buf[..cut])).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Chop mid-length-prefix.
        let err = read_request(&mut Cursor::new(&buf[..2])).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let err = read_request(&mut Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn schema_skew_is_rejected() {
        let json = "{\"v\":\"bat/wire/v2\",\"req\":\"ping\"}";
        let mut buf = Vec::from((json.len() as u32).to_be_bytes());
        buf.extend_from_slice(json.as_bytes());
        let err = read_request(&mut Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("schema mismatch"), "{err}");
    }

    #[test]
    fn unknown_fields_in_a_frame_are_rejected() {
        let json = "{\"v\":\"bat/wire/v1\",\"req\":{\"close\":{\"session\":1,\"x\":2}}}";
        let mut buf = Vec::from((json.len() as u32).to_be_bytes());
        buf.extend_from_slice(json.as_bytes());
        assert!(read_request::<_>(&mut Cursor::new(&buf)).is_err());
    }
}
