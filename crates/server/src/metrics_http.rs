//! The `bat serve --metrics ADDR` exposition endpoint.
//!
//! A deliberately tiny HTTP/1.1 responder: any request — whatever the
//! method or path — is answered with the full metrics registry rendered as
//! Prometheus text exposition (`text/plain; version=0.0.4`). That is the
//! whole protocol surface Prometheus, `curl` and CI scrapes need, and it
//! keeps the endpoint dependency-free like the rest of the stack.
//!
//! The listener runs on its own detached thread and lives for the process
//! (the daemon's lifetime); per-connection errors are ignored — a scraper
//! that hangs up early is not the daemon's problem.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

/// Answer one scrape connection: consume the request head, send the
/// exposition. Returns any I/O error for the caller to ignore.
fn serve_one(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    // Read the request line and headers up to the blank line; the body (if
    // any) is irrelevant to a scrape.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = bat_obs::metrics::render_prometheus();
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Serve Prometheus text exposition on `listener` from a detached thread,
/// forever. Returns the thread handle (callers usually drop it — the
/// endpoint lives for the process).
pub fn spawn_metrics_endpoint(listener: TcpListener) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            // Scrapes are tiny; handle inline rather than per-connection
            // threads.
            let _ = serve_one(stream);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn endpoint_answers_a_plain_get_with_exposition() {
        // Touch a counter so the exposition is non-empty under default
        // features.
        bat_obs::metrics::counter("bat_http_test_total", "test").inc();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _endpoint = spawn_metrics_endpoint(listener);
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("Content-Type: text/plain"), "{resp}");
        #[cfg(not(feature = "no-obs"))]
        assert!(resp.contains("bat_http_test_total 1"), "{resp}");
    }
}
