//! Fair scheduling of evaluation work across sessions.
//!
//! The daemon hosts many sessions but owns one measurement worker pool; an
//! unbounded free-for-all would let one chatty session starve the rest and
//! oversubscribe the pool. The [`FairScheduler`] bounds how many batches
//! evaluate at once and grants turns in round-robin arrival order: each
//! waiting session gets one batch through before any session gets a
//! second, so N concurrent campaigns make even progress regardless of who
//! connected first.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

/// Observability handles for the scheduler — the ROADMAP's named fairness
/// counters. Telemetry only; grant order is untouched.
struct SchedMetrics {
    grants: &'static bat_obs::metrics::Counter,
    active: &'static bat_obs::metrics::Gauge,
    queued: &'static bat_obs::metrics::Gauge,
    wait_us: &'static bat_obs::metrics::Histogram,
}

fn obs() -> &'static SchedMetrics {
    use bat_obs::metrics::{counter, gauge, histogram};
    static M: OnceLock<SchedMetrics> = OnceLock::new();
    M.get_or_init(|| SchedMetrics {
        grants: counter(
            "bat_sched_grants_total",
            "Round-robin evaluation slots granted by the fair scheduler.",
        ),
        active: gauge("bat_sched_active", "Turn-holders currently evaluating."),
        queued: gauge(
            "bat_sched_queued",
            "Requests waiting for an evaluation turn.",
        ),
        wait_us: histogram(
            "bat_sched_wait_us",
            "Microseconds a ticket waited from enqueue to slot grant.",
        ),
    })
}

/// A round-robin turn gate over at most `max_concurrent` slots.
pub struct FairScheduler {
    state: Mutex<SchedState>,
    turn: Condvar,
}

struct SchedState {
    /// Tickets in arrival order; the front ticket takes the next free slot.
    queue: VecDeque<u64>,
    /// Monotonic ticket source (a session holds a fresh ticket per turn, so
    /// re-queueing sessions go to the back — that is the round-robin).
    next_ticket: u64,
    /// Turn-holders currently evaluating.
    active: usize,
    /// Slot bound.
    max_concurrent: usize,
}

impl FairScheduler {
    /// A scheduler with `max_concurrent` evaluation slots (clamped ≥ 1).
    pub fn new(max_concurrent: usize) -> FairScheduler {
        FairScheduler {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                next_ticket: 0,
                active: 0,
                max_concurrent: max_concurrent.max(1),
            }),
            turn: Condvar::new(),
        }
    }

    /// Run `work` inside one evaluation turn: blocks until a slot is free
    /// *and* every earlier-queued request has started, runs, releases.
    pub fn run<T>(&self, work: impl FnOnce() -> T) -> T {
        let enqueued = std::time::Instant::now();
        let ticket = {
            let mut st = self.state.lock().expect("scheduler poisoned");
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(ticket);
            obs().queued.set(st.queue.len() as i64);
            loop {
                if st.active < st.max_concurrent && st.queue.front() == Some(&ticket) {
                    st.queue.pop_front();
                    st.active += 1;
                    obs().grants.inc();
                    obs().queued.set(st.queue.len() as i64);
                    obs().active.set(st.active as i64);
                    obs().wait_us.observe(enqueued.elapsed().as_micros() as u64);
                    break;
                }
                st = self.turn.wait(st).expect("scheduler poisoned");
            }
            ticket
        };
        let _ = ticket;
        let out = work();
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.active -= 1;
        obs().active.set(st.active as i64);
        drop(st);
        self.turn.notify_all();
        out
    }

    /// Turn-holders currently evaluating (for tests and introspection).
    pub fn active(&self) -> usize {
        self.state.lock().expect("scheduler poisoned").active
    }

    /// Requests waiting for a turn (for tests and introspection).
    pub fn queued(&self) -> usize {
        self.state.lock().expect("scheduler poisoned").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn concurrency_never_exceeds_the_slot_bound() {
        let sched = Arc::new(FairScheduler::new(2));
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sched = Arc::clone(&sched);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        sched.run(|| {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::yield_now();
                            inside.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(sched.active(), 0);
    }

    #[test]
    fn turns_run_in_arrival_order_when_serialized() {
        let sched = Arc::new(FairScheduler::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Hold the only slot while the others queue up, so their arrival
        // order is fixed before any of them can run.
        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let holder = {
            let sched = Arc::clone(&sched);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                sched.run(|| {
                    let (lock, cv) = &*gate;
                    let mut held = lock.lock().unwrap();
                    while *held {
                        held = cv.wait(held).unwrap();
                    }
                })
            })
        };
        while sched.active() == 0 {
            std::thread::yield_now();
        }
        let mut waiters = Vec::new();
        for id in 0..4u64 {
            let worker_sched = Arc::clone(&sched);
            let order = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                worker_sched.run(|| order.lock().unwrap().push(id));
            }));
            // Let this waiter enqueue before spawning the next.
            while sched.queued() < id as usize + 1 {
                std::thread::yield_now();
            }
        }
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = false;
        cv.notify_all();
        holder.join().unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
