//! An in-memory bidirectional byte stream — the loopback transport.
//!
//! [`duplex`] returns two connected [`DuplexStream`]s; bytes written to one
//! end are read from the other, exactly like a socketpair. The loopback
//! evaluation backend runs client and server over this transport *through
//! the real codec*, so the byte-identity CI exercises every serialization
//! boundary of the remote path without touching the network stack.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// One direction of the pipe: a buffer plus its open/closed state.
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    /// Set when the writing end is gone: readers drain the buffer, then
    /// see EOF.
    closed: bool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
        })
    }

    fn write(&self, bytes: &[u8]) -> std::io::Result<usize> {
        let mut st = self.state.lock().expect("duplex pipe poisoned");
        if st.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "peer closed the loopback stream",
            ));
        }
        st.buf.extend(bytes);
        drop(st);
        self.readable.notify_all();
        Ok(bytes.len())
    }

    fn read(&self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut st = self.state.lock().expect("duplex pipe poisoned");
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("non-empty buffer");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0); // EOF
            }
            st = self.readable.wait(st).expect("duplex pipe poisoned");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("duplex pipe poisoned");
        st.closed = true;
        drop(st);
        self.readable.notify_all();
    }
}

/// One end of an in-memory bidirectional stream.
///
/// Cloning yields another handle to the *same* end (like
/// `TcpStream::try_clone`), which is how the connection handler splits one
/// stream into a reader thread and concurrent writers. The end closes when
/// its last handle drops; the peer then drains buffered bytes and sees EOF.
pub struct DuplexStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    /// Close `tx` when the last handle to this end drops.
    tx_guard: Arc<CloseOnDrop>,
}

struct CloseOnDrop(Arc<Pipe>);

impl Drop for CloseOnDrop {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Clone for DuplexStream {
    fn clone(&self) -> Self {
        DuplexStream {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
            tx_guard: Arc::clone(&self.tx_guard),
        }
    }
}

impl Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.rx.read(buf)
    }
}

impl Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A connected pair of in-memory streams: what one writes, the other reads.
pub fn duplex() -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    let a = DuplexStream {
        rx: Arc::clone(&b_to_a),
        tx: Arc::clone(&a_to_b),
        tx_guard: Arc::new(CloseOnDrop(Arc::clone(&a_to_b))),
    };
    let b = DuplexStream {
        rx: a_to_b,
        tx: Arc::clone(&b_to_a),
        tx_guard: Arc::new(CloseOnDrop(b_to_a)),
    };
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_both_directions() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");
    }

    #[test]
    fn drop_gives_eof_after_drain() {
        let (mut a, mut b) = duplex();
        a.write_all(b"tail").unwrap();
        drop(a);
        let mut out = Vec::new();
        b.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"tail");
    }

    #[test]
    fn clones_share_the_end_and_keep_it_open() {
        let (a, mut b) = duplex();
        let a2 = a.clone();
        drop(a);
        // a2 still holds the end open.
        let mut a = a2;
        a.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
        drop(a);
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn blocked_reader_wakes_on_write() {
        let (mut a, mut b) = duplex();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        a.write_all(b"abc").unwrap();
        assert_eq!(&t.join().unwrap(), b"abc");
    }
}
