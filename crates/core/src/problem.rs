//! The shared tuning-problem interface.
//!
//! The paper's central engineering claim is a *standardized problem
//! interface* between benchmarks and tuners: a benchmark exposes a
//! configuration space and an evaluation function; a tuner consumes exactly
//! that. [`TuningProblem`] is that interface in BAT-rs.

use bat_space::ConfigSpace;

use crate::measurement::EvalFailure;

/// A tunable problem: a configuration space plus a deterministic cost
/// oracle.
///
/// `evaluate_pure` returns the *noise-free* model runtime in milliseconds
/// for one kernel-level execution of the benchmark under `config`. The
/// measurement protocol (repeated runs, deterministic noise, aggregation,
/// caching, budget accounting) is layered on top by
/// [`crate::evaluator::Evaluator`] so that every tuner measures the same
/// way.
pub trait TuningProblem: Send + Sync {
    /// Benchmark name, e.g. `"gemm"`.
    fn name(&self) -> &str;

    /// Platform (architecture) label this instance is bound to.
    fn platform(&self) -> &str;

    /// The tunable configuration space (parameters + restrictions).
    fn space(&self) -> &ConfigSpace;

    /// Noise-free cost of `config` in milliseconds.
    ///
    /// Implementations must be deterministic and thread-safe. `config` is
    /// aligned with `space().params()`. Returns an [`EvalFailure`] when the
    /// configuration violates the restriction set or cannot launch on the
    /// platform.
    fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure>;

    /// Noise-free cost of `config` as `(time_ms, energy_mj)` — the suite's
    /// two objectives.
    ///
    /// The default implementation reports no energy, so single-objective
    /// problems (and every pre-existing implementation) work unchanged;
    /// problems with a physical cost model override this with their real
    /// energy (the GPU benchmarks price the same [`KernelModel`] work
    /// profile through the simulator's power model).
    ///
    /// Implementations must keep the time component identical to
    /// [`TuningProblem::evaluate_pure`]: the two entry points describe one
    /// execution, not two.
    ///
    /// [`KernelModel`]: bat_gpusim::KernelModel
    fn evaluate_pure2(&self, config: &[i64]) -> Result<(f64, Option<f64>), EvalFailure> {
        self.evaluate_pure(config).map(|t| (t, None))
    }

    /// A stable 64-bit key identifying this (problem, platform) pair; used
    /// to salt deterministic measurement noise. The default hashes name and
    /// platform.
    fn noise_salt(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name().bytes().chain(self.platform().bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Boxed problems are problems: the tuning server owns its benchmarks as
/// `Box<dyn TuningProblem>` but still needs to hand them to generic
/// wrappers (scalarization) that take any `P: TuningProblem`. Every method
/// delegates — including `noise_salt` and `evaluate_pure2`, so a boxed
/// problem's noise stream and energy are identical to the unboxed one's.
impl TuningProblem for Box<dyn TuningProblem> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn platform(&self) -> &str {
        self.as_ref().platform()
    }

    fn space(&self) -> &ConfigSpace {
        self.as_ref().space()
    }

    fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure> {
        self.as_ref().evaluate_pure(config)
    }

    fn evaluate_pure2(&self, config: &[i64]) -> Result<(f64, Option<f64>), EvalFailure> {
        self.as_ref().evaluate_pure2(config)
    }

    fn noise_salt(&self) -> u64 {
        self.as_ref().noise_salt()
    }
}

/// A synthetic problem over an arbitrary space, driven by a closure.
///
/// Useful for testing tuners and analyses without the kernel benchmarks.
pub struct SyntheticProblem<F>
where
    F: Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync,
{
    name: String,
    platform: String,
    space: ConfigSpace,
    f: F,
}

impl<F> SyntheticProblem<F>
where
    F: Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync,
{
    /// Create a synthetic problem from a space and a cost closure.
    pub fn new(
        name: impl Into<String>,
        platform: impl Into<String>,
        space: ConfigSpace,
        f: F,
    ) -> Self {
        SyntheticProblem {
            name: name.into(),
            platform: platform.into(),
            space,
            f,
        }
    }
}

impl<F> TuningProblem for SyntheticProblem<F>
where
    F: Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn platform(&self) -> &str {
        &self.platform
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure> {
        if !self.space.is_valid(config) {
            return Err(EvalFailure::Restricted);
        }
        (self.f)(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_space::{ConfigSpace, Param};

    fn quadratic() -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 10))
            .param(Param::int_range("y", 0, 10))
            .restrict("x + y <= 15")
            .build()
            .unwrap();
        SyntheticProblem::new("quad", "cpu", space, |c| {
            Ok(1.0 + ((c[0] - 3) * (c[0] - 3) + (c[1] - 7) * (c[1] - 7)) as f64)
        })
    }

    #[test]
    fn synthetic_problem_evaluates() {
        let p = quadratic();
        assert_eq!(p.evaluate_pure(&[3, 7]).unwrap(), 1.0);
        assert_eq!(p.evaluate_pure(&[0, 0]).unwrap(), 59.0);
    }

    #[test]
    fn restricted_configs_fail() {
        let p = quadratic();
        assert!(matches!(
            p.evaluate_pure(&[10, 10]),
            Err(EvalFailure::Restricted)
        ));
    }

    #[test]
    fn default_second_objective_reports_no_energy() {
        let p = quadratic();
        assert_eq!(p.evaluate_pure2(&[3, 7]).unwrap(), (1.0, None));
        assert!(p.evaluate_pure2(&[10, 10]).is_err());
    }

    #[test]
    fn noise_salt_distinguishes_platforms() {
        let a = quadratic();
        let space = a.space().clone();
        let b = SyntheticProblem::new("quad", "gpu", space, |_| Ok(1.0));
        assert_ne!(a.noise_salt(), b.noise_salt());
    }
}
