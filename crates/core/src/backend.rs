//! The evaluation-backend abstraction behind the service boundary.
//!
//! [`Evaluator`] is the in-process measurement harness; the tuning service
//! puts the same contract behind a codec so tuners and measurement hardware
//! can live in different processes (or machines). [`EvalBackend`] is that
//! contract, extracted from the `Evaluator` surface the shared ask/tell
//! driver actually consumes: batch evaluation with single-claim budget
//! accounting, memoization and retry/quarantine semantics on the far side,
//! and the session statistics campaigns record.
//!
//! Three implementations exist:
//!
//! * **in-process** — [`Evaluator`] itself (infallible: every method wraps
//!   the native call in `Ok`);
//! * **loopback** — client and server in one process, over the real
//!   `bat/wire/v1` codec (`bat-server`);
//! * **remote** — the same client over TCP (`bat-server`).
//!
//! The contract is deterministic: for a fixed problem, protocol and request
//! sequence, every backend must produce the same outcomes, budget charges
//! and statistics, which is what keeps campaign artifacts byte-identical
//! across deployment shapes.

use bat_space::ConfigSpace;
use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::evaluator::{Evaluator, Protocol};
use crate::measurement::{EvalFailure, Measurement};

/// One evaluation outcome: a measurement, or why there is none.
pub type EvalOutcome = Result<Measurement, EvalFailure>;

/// The statistics snapshot of one backend — the *single* definition every
/// layer shares: the evaluator's counters, the wire's per-session `stats`
/// payload, and the harness artifact's per-trial tallies are all this
/// struct, so the resilience numbers a summary prints cannot drift from
/// the numbers the evaluator counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct EvalStats {
    /// Evaluations performed (cached or not).
    pub evals: u64,
    /// Distinct configurations measured.
    pub distinct: u64,
    /// Retries spent on retryable failures.
    pub retries: u64,
    /// Configurations quarantined after repeated crashes.
    pub quarantined: u64,
}

/// A source of measurements for the ask/tell driver: the [`Evaluator`]
/// contract with every method allowed to fail at the transport layer.
///
/// Semantics every implementation must honour (they are what the
/// determinism CI holds across backends):
///
/// * [`EvalBackend::evaluate_batch`] charges the budget once for the whole
///   batch; if only `k` of `n` requested evaluations were affordable, the
///   returned vector has length `k` (a truncated tail, never a hole).
/// * Repeated indices re-charge budget but are measured once
///   (memoization), and retryable failures are never memoized.
/// * The statistics accessors reflect every evaluation performed so far
///   through this backend, exactly as [`Evaluator`]'s counters do.
pub trait EvalBackend {
    /// The configuration space being tuned (client-side copy for remote
    /// backends; tuners decode candidate indices against it).
    fn space(&self) -> &ConfigSpace;

    /// Name of the problem under measurement (blended objectives report
    /// their scalarized name, e.g. `"gemm+energy"`).
    fn problem_name(&self) -> &str;

    /// Platform (architecture) label of the problem under measurement.
    fn platform(&self) -> &str;

    /// The measurement protocol (the driver reads its `batch` knob).
    fn protocol(&self) -> Protocol;

    /// Measure a batch of configurations by dense index, charging the
    /// budget once. `Err` means the *backend* failed (transport, session);
    /// per-configuration failures come back as `Err` elements inside the
    /// vector.
    fn evaluate_batch(&self, indices: &[u64]) -> Result<Vec<EvalOutcome>, Error>;

    /// Measure one configuration; `Ok(None)` when the budget is exhausted.
    ///
    /// Equivalent to a one-element [`EvalBackend::evaluate_batch`] (same
    /// budget charge, same memo state), which is the provided
    /// implementation.
    fn evaluate_index(&self, index: u64) -> Result<Option<EvalOutcome>, Error> {
        Ok(self.evaluate_batch(std::slice::from_ref(&index))?.pop())
    }

    /// True when another evaluation may be performed.
    fn has_budget(&self) -> bool;

    /// Remaining budget, if a budget is set.
    fn budget_left(&self) -> Option<u64>;

    /// Evaluations performed so far (cached or not).
    fn evals_used(&self) -> u64;

    /// Distinct configurations measured so far.
    fn distinct_evals(&self) -> u64;

    /// Retries spent on retryable measurement failures.
    fn retries_used(&self) -> u64;

    /// Configurations quarantined after repeated crashes.
    fn quarantined_configs(&self) -> u64;

    /// All four statistics counters as one snapshot — the canonical way to
    /// read a backend's tallies (campaign records and wire responses both
    /// go through here).
    fn stats(&self) -> EvalStats {
        EvalStats {
            evals: self.evals_used(),
            distinct: self.distinct_evals(),
            retries: self.retries_used(),
            quarantined: self.quarantined_configs(),
        }
    }
}

/// The in-process backend: today's [`Evaluator`], verbatim. Infallible —
/// there is no transport to fail.
impl EvalBackend for Evaluator<'_> {
    fn space(&self) -> &ConfigSpace {
        self.problem().space()
    }

    fn problem_name(&self) -> &str {
        self.problem().name()
    }

    fn platform(&self) -> &str {
        self.problem().platform()
    }

    fn protocol(&self) -> Protocol {
        *Evaluator::protocol(self)
    }

    fn evaluate_batch(&self, indices: &[u64]) -> Result<Vec<EvalOutcome>, Error> {
        Ok(Evaluator::evaluate_batch(self, indices))
    }

    fn evaluate_index(&self, index: u64) -> Result<Option<EvalOutcome>, Error> {
        Ok(Evaluator::evaluate_index(self, index))
    }

    fn has_budget(&self) -> bool {
        Evaluator::has_budget(self)
    }

    fn budget_left(&self) -> Option<u64> {
        Evaluator::budget_left(self)
    }

    fn evals_used(&self) -> u64 {
        Evaluator::evals_used(self)
    }

    fn distinct_evals(&self) -> u64 {
        Evaluator::distinct_evals(self)
    }

    fn retries_used(&self) -> u64 {
        Evaluator::retries_used(self)
    }

    fn quarantined_configs(&self) -> u64 {
        Evaluator::quarantined_configs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SyntheticProblem;
    use bat_space::Param;

    fn problem() -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        SyntheticProblem::new("lin", "sim", space, |c| Ok(1.0 + c[0] as f64))
    }

    #[test]
    fn evaluator_backend_mirrors_native_calls() {
        let p = problem();
        let native = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(6);
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(6);
        let backend: &dyn EvalBackend = &eval;

        assert_eq!(backend.problem_name(), "lin");
        assert_eq!(backend.platform(), "sim");
        assert_eq!(backend.protocol(), Protocol::noiseless());
        assert_eq!(backend.space().cardinality(), 10);

        let want = Evaluator::evaluate_batch(&native, &[1, 2, 1]);
        let got = backend.evaluate_batch(&[1, 2, 1]).unwrap();
        assert_eq!(got, want);
        assert_eq!(backend.evals_used(), 3);
        assert_eq!(backend.distinct_evals(), 2);
        assert_eq!(backend.budget_left(), Some(3));
        assert!(backend.has_budget());
    }

    #[test]
    fn default_evaluate_index_matches_batch_of_one() {
        let p = problem();
        let eval = Evaluator::with_protocol(&p, Protocol::noiseless()).with_budget(2);
        let backend: &dyn EvalBackend = &eval;
        assert!(backend.evaluate_index(4).unwrap().unwrap().is_ok());
        assert!(backend.evaluate_index(5).unwrap().is_some());
        // Budget exhausted: batch-of-one truncates to empty, i.e. `None`.
        assert!(backend.evaluate_index(6).unwrap().is_none());
        assert_eq!(backend.evals_used(), 2);
    }
}
