//! The measurement harness shared by all tuners.
//!
//! [`Evaluator`] wraps a [`TuningProblem`] with the suite's measurement
//! protocol: every configuration is "run" `runs` times with deterministic
//! multiplicative noise, aggregated by median, memoized, and counted against
//! an evaluation budget. Because all tuners evaluate through this one type,
//! comparisons between optimization algorithms are apples-to-apples — the
//! paper's core motivation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;

use bat_gpusim::{noise_key, noisy_time_ms, FaultModel};

use crate::error::Error;
use crate::measurement::{EvalFailure, Measurement};
use crate::problem::TuningProblem;

/// Bounded, deterministic retry policy for retryable measurement failures
/// ([`EvalFailure::is_retryable`]): transient flakes and timeouts are
/// re-attempted up to `max_retries` times within one budget-charged
/// evaluation, with a linear backoff priced against the evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the initial attempt of one evaluation.
    pub max_retries: u32,
    /// Backoff cost: the r-th retry charges `1 + backoff_evals · r`
    /// evaluations — the cool-down a real harness would spend sleeping,
    /// expressed in budget currency so chaos campaigns stay comparable.
    pub backoff_evals: u32,
    /// Quarantine a configuration after this many observed crashes: further
    /// proposals fail immediately with [`EvalFailure::Crash`] instead of
    /// re-executing a known device-killer. `0` disables quarantine.
    pub quarantine_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_evals: 0,
            quarantine_after: 3,
        }
    }
}

/// Per-configuration fault ledger: measurement attempts consumed (the
/// deterministic fault-draw counter) and crash strikes toward quarantine.
#[derive(Default)]
struct FaultEntry {
    attempts: u64,
    crashes: u32,
    quarantined: bool,
}

/// Installed fault-injection state: the model, the retry policy and the
/// per-configuration attempt/strike ledger.
struct FaultInjection {
    model: FaultModel,
    policy: RetryPolicy,
    state: Mutex<HashMap<u64, FaultEntry>>,
}

/// Measurement-protocol settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protocol {
    /// Runs per configuration (the paper-style protocol uses several runs
    /// and a robust aggregate).
    pub runs: u32,
    /// Relative run-to-run noise (σ of the multiplicative factor).
    pub sigma: f64,
    /// Seed folded into the deterministic noise.
    pub seed: u64,
    /// Measurement parallelism: how many configurations the evaluation
    /// side measures per step of the ask/tell protocol (step-driven tuners
    /// ask up to this many candidates before seeing any result). `1` is
    /// the classic strictly-serial protocol; values are clamped to ≥ 1.
    pub batch: u32,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            runs: 5,
            sigma: 0.01,
            seed: 0,
            batch: 1,
        }
    }
}

impl Protocol {
    /// A protocol with zero noise and a single run (pure model output).
    pub fn noiseless() -> Self {
        Protocol {
            runs: 1,
            sigma: 0.0,
            seed: 0,
            batch: 1,
        }
    }

    /// The same protocol with a different measurement parallelism.
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch;
        self
    }

    /// The validated measurement parallelism (never 0).
    pub fn batch(&self) -> usize {
        self.batch.max(1) as usize
    }
}

/// Number of independent memo-cache shards. Tuners running under rayon hit
/// the cache from many threads; index-keyed sharding keeps them from
/// serializing on one global mutex.
const CACHE_SHARDS: usize = 64;

thread_local! {
    /// Per-thread configuration decode scratch: `evaluate_index` sits in
    /// every tuner's inner loop, so the per-call `Vec<i64>` is hoisted here.
    static CONFIG_SCRATCH: RefCell<Vec<i64>> = const { RefCell::new(Vec::new()) };

    /// Reusable dedup scratch for the batch paths: the ask/tell driver
    /// calls `evaluate_batch` once per generation, so its bookkeeping
    /// buffers are hoisted here instead of being reallocated per call.
    static BATCH_SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::default());

    /// Two flat per-worker decode banks for the pipelined large-batch path
    /// (`measure_many`): a worker decodes each claimed block into one bank
    /// and measures from it while the *other* bank is free for the next
    /// block's decode, so consecutive blocks never alias.
    static DECODE_BANKS: RefCell<[Vec<i64>; 2]> = const { RefCell::new([Vec::new(), Vec::new()]) };
}

/// Scratch buffers reused across `evaluate_batch` calls on one thread.
#[derive(Default)]
struct BatchScratch {
    /// Unique cache-missing indices, in first-occurrence order.
    to_measure: Vec<u64>,
    /// `(output position, to_measure slot)` for every cache miss.
    occurrences: Vec<(usize, usize)>,
    /// First-occurrence slot per output position (faulty path).
    slots: Vec<usize>,
    /// Index → slot map for batches too large for a linear dedup scan.
    slot_of: HashMap<u64, usize>,
    /// Last output position of each slot (the occurrence that receives the
    /// measured value by move instead of by clone).
    last: Vec<usize>,
}

/// Batches up to this size deduplicate by linear scan; larger ones switch
/// to the hash map (cleared, not reallocated, per call).
const DEDUP_SCAN_MAX: usize = 128;

/// Salt folded into the energy noise stream so a configuration's energy
/// samples scatter independently of its time samples (a real power meter
/// does not jitter in lockstep with the wall clock).
const ENERGY_NOISE_STREAM: u64 = 0x656e_6572_6779_u64; // "energy"

/// Process-global observability handles for the evaluator hot path,
/// registered once and cached so the registry lock is off the hot path.
/// Strictly out-of-band: these tallies aggregate over *every* evaluator in
/// the process (the per-instance [`AtomicU64`] counters below remain the
/// budget/artifact source of truth) and never feed back into outcomes.
struct EvalMetrics {
    evals: &'static bat_obs::metrics::Counter,
    batches: &'static bat_obs::metrics::Counter,
    memo_hits: &'static bat_obs::metrics::Counter,
    dedup_hits: &'static bat_obs::metrics::Counter,
    measured: &'static bat_obs::metrics::Counter,
    retries_transient: &'static bat_obs::metrics::Counter,
    retries_timeout: &'static bat_obs::metrics::Counter,
    backoff_charged: &'static bat_obs::metrics::Counter,
    crashes: &'static bat_obs::metrics::Counter,
    quarantined: &'static bat_obs::metrics::Counter,
    decode_us: &'static bat_obs::metrics::Histogram,
    measure_us: &'static bat_obs::metrics::Histogram,
}

fn obs() -> &'static EvalMetrics {
    use bat_obs::metrics::{counter, histogram};
    static M: std::sync::OnceLock<EvalMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| EvalMetrics {
        evals: counter(
            "bat_eval_evals_total",
            "Evaluations charged against budgets (incl. retry backoff), all evaluators.",
        ),
        batches: counter("bat_eval_batches_total", "evaluate_batch calls."),
        memo_hits: counter(
            "bat_eval_memo_hits_total",
            "Evaluations served from the memo cache.",
        ),
        dedup_hits: counter(
            "bat_eval_dedup_hits_total",
            "Duplicate in-batch occurrences measured once by batch dedup.",
        ),
        measured: counter(
            "bat_eval_measured_total",
            "Configurations actually decoded and measured.",
        ),
        retries_transient: counter(
            "bat_eval_retries_transient_total",
            "Retries spent on transient measurement failures.",
        ),
        retries_timeout: counter(
            "bat_eval_retries_timeout_total",
            "Retries spent on measurement timeouts.",
        ),
        backoff_charged: counter(
            "bat_eval_backoff_evals_total",
            "Extra evaluations charged as linear retry backoff.",
        ),
        crashes: counter(
            "bat_eval_crashes_total",
            "Crash outcomes observed (quarantine strikes).",
        ),
        quarantined: counter(
            "bat_eval_quarantined_total",
            "Configurations quarantined after repeated crashes.",
        ),
        decode_us: histogram(
            "bat_eval_decode_block_us",
            "Decode-phase duration per pipelined block, microseconds.",
        ),
        measure_us: histogram(
            "bat_eval_measure_block_us",
            "Measure-phase duration per pipelined block, microseconds.",
        ),
    })
}

/// The evaluation harness: memoization + noise + budget accounting.
pub struct Evaluator<'p> {
    problem: &'p dyn TuningProblem,
    protocol: Protocol,
    /// `mix(problem.noise_salt(), protocol.seed)`, fixed at construction —
    /// the problem name/platform hash is not worth redoing per measurement.
    noise_salt: u64,
    measure_energy: bool,
    cache_enabled: bool,
    cache: Vec<Mutex<HashMap<u64, Result<Measurement, EvalFailure>>>>,
    faults: Option<FaultInjection>,
    evals: AtomicU64,
    distinct: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    budget: Option<u64>,
}

impl<'p> Evaluator<'p> {
    /// Start building an evaluator for `problem` — the one validated
    /// construction path shared by in-process use and the tuning server.
    pub fn builder(problem: &'p dyn TuningProblem) -> EvaluatorBuilder<'p> {
        EvaluatorBuilder::new(problem)
    }

    /// Wrap `problem` with the default protocol and no budget.
    ///
    /// Legacy shim: prefer [`Evaluator::builder`], which validates the
    /// protocol up front. Kept for one release.
    pub fn new(problem: &'p dyn TuningProblem) -> Self {
        Self::with_protocol(problem, Protocol::default())
    }

    /// Wrap `problem` with an explicit protocol.
    ///
    /// Legacy shim: prefer [`Evaluator::builder`], which validates the
    /// protocol up front. Kept for one release.
    pub fn with_protocol(problem: &'p dyn TuningProblem, protocol: Protocol) -> Self {
        Evaluator {
            problem,
            noise_salt: bat_gpusim::mix(problem.noise_salt(), protocol.seed),
            protocol,
            measure_energy: false,
            cache_enabled: true,
            cache: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            faults: None,
            evals: AtomicU64::new(0),
            distinct: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            budget: None,
        }
    }

    /// The cache shard responsible for `index` (multiplicative hash so
    /// consecutive indices — the common tuner access pattern — spread
    /// across shards).
    #[inline]
    fn shard(&self, index: u64) -> &Mutex<HashMap<u64, Result<Measurement, EvalFailure>>> {
        let mixed = index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.cache[(mixed >> 58) as usize % CACHE_SHARDS]
    }

    /// Limit the number of `evaluate*` calls. Calls past the budget return
    /// `None`.
    ///
    /// Legacy shim: prefer [`Evaluator::builder`]. Kept for one release.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Disable memoization (ablation: every call re-measures).
    ///
    /// Legacy shim: prefer [`Evaluator::builder`]. Kept for one release.
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Install a fault model and retry policy. Measurements then run as
    /// bounded retry chains: retryable failures (transient, timeout) are
    /// re-attempted per `policy`, never memoized, and configurations that
    /// crash `policy.quarantine_after` times are quarantined. A disabled
    /// model injects nothing, and with no model installed at all the
    /// evaluation path is byte-for-byte the pre-fault one.
    pub fn with_faults(mut self, model: FaultModel, policy: RetryPolicy) -> Self {
        self.faults = Some(FaultInjection {
            model,
            policy,
            state: Mutex::new(HashMap::new()),
        });
        self
    }

    /// Also measure the energy objective: measurements carry `energy_mj` /
    /// `energy_samples` whenever the problem's
    /// [`TuningProblem::evaluate_pure2`] reports an energy. Off by default,
    /// so time-only runs (and their serialized records) are bit-identical
    /// to the pre-energy suite.
    pub fn with_energy(mut self) -> Self {
        self.measure_energy = true;
        self
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &dyn TuningProblem {
        self.problem
    }

    /// The measurement protocol (the step driver reads its `batch` knob).
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Number of evaluations performed so far (every call counts, cached or
    /// not — on real hardware a revisited configuration still spends budget
    /// unless the tuner itself deduplicates).
    pub fn evals_used(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Number of *distinct* configurations measured.
    pub fn distinct_evals(&self) -> u64 {
        self.distinct.load(Ordering::Relaxed)
    }

    /// Number of retries spent on retryable measurement failures.
    pub fn retries_used(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Number of configurations quarantined after repeated crashes.
    pub fn quarantined_configs(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Remaining budget, if a budget is set.
    pub fn budget_left(&self) -> Option<u64> {
        self.budget.map(|b| b.saturating_sub(self.evals_used()))
    }

    /// True when another evaluation may be performed.
    pub fn has_budget(&self) -> bool {
        self.budget_left().is_none_or(|left| left > 0)
    }

    /// Evaluate a configuration by dense index. Returns `None` when the
    /// budget is exhausted.
    pub fn evaluate_index(&self, index: u64) -> Option<Result<Measurement, EvalFailure>> {
        if !self.has_budget() {
            return None;
        }
        self.evals.fetch_add(1, Ordering::Relaxed);
        obs().evals.inc();
        if self.faults.is_some() {
            return Some(self.evaluate_faulty(index));
        }
        if !self.cache_enabled {
            let result = self.decode_and_measure(index);
            self.distinct.fetch_add(1, Ordering::Relaxed);
            obs().measured.inc();
            return Some(result);
        }
        if let Some(hit) = self.shard(index).lock().get(&index) {
            obs().memo_hits.inc();
            return Some(hit.clone());
        }
        obs().measured.inc();
        // Measure outside the lock (measurements are deterministic per
        // index, so a racing duplicate measurement is identical), then
        // insert through the entry API: one lock, and `distinct` counts a
        // configuration exactly once even under races.
        let result = self.decode_and_measure(index);
        match self.shard(index).lock().entry(index) {
            std::collections::hash_map::Entry::Occupied(e) => Some(e.get().clone()),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(result.clone());
                self.distinct.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
        }
    }

    /// Evaluate a batch of configurations by dense index — the measurement
    /// side of the ask/tell protocol.
    ///
    /// Semantically equivalent to calling [`Evaluator::evaluate_index`] on
    /// each element in order (same results, same budget accounting, same
    /// memo/distinct state), but:
    ///
    /// * the budget is claimed **once** for the whole batch (one atomic
    ///   transaction instead of one per element);
    /// * duplicate indices within the batch are decoded and measured once
    ///   (each occurrence still spends budget, exactly like repeated serial
    ///   calls);
    /// * cache-missing configurations fan out over the compat-rayon pool,
    ///   each worker decoding into its own thread-local scratch.
    ///
    /// The returned vector holds one outcome per element until the budget
    /// ran out: if only `k` evaluations were affordable, it has length `k`
    /// (serial calls would have returned `None` from element `k` on).
    pub fn evaluate_batch(&self, indices: &[u64]) -> Vec<Result<Measurement, EvalFailure>> {
        let want = indices.len() as u64;
        if want == 0 {
            return Vec::new();
        }
        // One budget claim for the whole batch.
        let claimed = match self.budget {
            None => {
                self.evals.fetch_add(want, Ordering::Relaxed);
                want
            }
            Some(budget) => loop {
                let used = self.evals.load(Ordering::Relaxed);
                let claim = budget.saturating_sub(used).min(want);
                if claim == 0 {
                    break 0;
                }
                if self
                    .evals
                    .compare_exchange(used, used + claim, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break claim;
                }
            },
        } as usize;
        let indices = &indices[..claimed];
        obs().evals.add(claimed as u64);
        obs().batches.inc();
        let mut batch_span = bat_obs::trace::span("batch");
        batch_span.record_u64("size", claimed as u64);

        if self.faults.is_some() {
            return self.evaluate_batch_faulty(indices);
        }

        if !self.cache_enabled {
            // No memoization: every occurrence re-measures, as serially.
            let out = self.measure_many(indices);
            self.distinct.fetch_add(claimed as u64, Ordering::Relaxed);
            obs().measured.add(claimed as u64);
            return out;
        }

        BATCH_SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            scratch.to_measure.clear();
            scratch.occurrences.clear();
            let use_map = claimed > DEDUP_SCAN_MAX;
            if use_map {
                scratch.slot_of.clear();
            }

            // Partition into cache hits and a deduplicated measurement
            // list (first-occurrence order, so `distinct` counts match
            // serial calls). Every placeholder below is overwritten: each
            // position is either a hit or recorded in `occurrences`.
            let mut out: Vec<Result<Measurement, EvalFailure>> =
                vec![Err(EvalFailure::Restricted); claimed];
            for (i, &idx) in indices.iter().enumerate() {
                if let Some(hit) = self.shard(idx).lock().get(&idx) {
                    out[i] = hit.clone();
                    continue;
                }
                let slot = if use_map {
                    *scratch.slot_of.entry(idx).or_insert_with(|| {
                        scratch.to_measure.push(idx);
                        scratch.to_measure.len() - 1
                    })
                } else {
                    match scratch.to_measure.iter().position(|&m| m == idx) {
                        Some(slot) => slot,
                        None => {
                            scratch.to_measure.push(idx);
                            scratch.to_measure.len() - 1
                        }
                    }
                };
                scratch.occurrences.push((i, slot));
            }
            let memo_hits = claimed - scratch.occurrences.len();
            let dedup_hits = scratch.occurrences.len() - scratch.to_measure.len();
            obs().memo_hits.add(memo_hits as u64);
            obs().dedup_hits.add(dedup_hits as u64);
            obs().measured.add(scratch.to_measure.len() as u64);
            batch_span.record_u64("memo_hits", memo_hits as u64);
            batch_span.record_u64("dedup_hits", dedup_hits as u64);
            batch_span.record_u64("measured", scratch.to_measure.len() as u64);

            // Measure the unique misses in parallel (deterministic per
            // index, collected in order), then publish through the entry
            // API so `distinct` counts each configuration exactly once
            // under races.
            let mut measured = self.measure_many(&scratch.to_measure);
            for (&idx, result) in scratch.to_measure.iter().zip(&measured) {
                if let std::collections::hash_map::Entry::Vacant(e) =
                    self.shard(idx).lock().entry(idx)
                {
                    e.insert(result.clone());
                    self.distinct.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Fill the outputs: each unique result *moves* into its last
            // occurrence and only extra duplicates clone, so a dup-free
            // batch pays one clone per configuration (the memo's), not two.
            scratch.last.clear();
            scratch.last.resize(measured.len(), usize::MAX);
            for &(i, slot) in &scratch.occurrences {
                scratch.last[slot] = i;
            }
            for &(i, slot) in &scratch.occurrences {
                out[i] = if scratch.last[slot] == i {
                    std::mem::replace(&mut measured[slot], Err(EvalFailure::Restricted))
                } else {
                    measured[slot].clone()
                };
            }
            out
        })
    }

    /// Measure a list of indices in parallel, returning results in input
    /// order (deterministic per index).
    ///
    /// Short lists fan each index out over the worker pool directly. Large
    /// lists take a pipelined two-phase path: workers claim fixed-size
    /// blocks, decode the whole block into one of two per-worker scratch
    /// banks, then measure from that bank — decode of one block overlaps
    /// measurement of others across workers, and the banks alternate
    /// (double-buffering) so a block's decode never aliases the bank its
    /// worker's previous measure phase read from.
    fn measure_many(&self, indices: &[u64]) -> Vec<Result<Measurement, EvalFailure>> {
        /// Indices per pipelined block: big enough to amortize the bank
        /// resize and keep the decode loop tight, small enough to stay in
        /// cache next to the measurement state.
        const PIPE_BLOCK: usize = 64;
        if indices.len() < 2 * PIPE_BLOCK {
            return (0..indices.len())
                .into_par_iter()
                .map(|k| self.decode_and_measure(indices[k]))
                .collect();
        }
        let space = self.problem.space();
        let nparams = space.num_params();
        // Workers write each block's results straight into its slot of the
        // output vector: no per-block `Vec`, and no second pass copying
        // block results into place (a real cost — `Measurement` is over a
        // hundred bytes, and at batch 1024 that extra copy was ~20% of the
        // whole evaluation).
        let mut out: Vec<Result<Measurement, EvalFailure>> =
            vec![Err(EvalFailure::Restricted); indices.len()];
        // Phase timings (and spans, when tracing) are per block, not per
        // index: two `Instant` reads per 64 evaluations, amortized to well
        // under a nanosecond each. Spans carry the batch span as explicit
        // parent because blocks run on pool worker threads.
        let traced = bat_obs::trace::enabled();
        let parent = if traced { bat_obs::trace::current() } else { 0 };
        out.par_chunks_mut(PIPE_BLOCK)
            .enumerate()
            .for_each(|(b, block)| {
                let lo = b * PIPE_BLOCK;
                DECODE_BANKS.with(|banks| {
                    let mut banks = banks.borrow_mut();
                    let bank = &mut banks[b & 1];
                    bank.resize(block.len() * nparams, 0);
                    // Phase 1: decode the whole block back-to-back.
                    let mut phase = bat_obs::trace::span_at("decode", parent);
                    phase.record_u64("block", b as u64);
                    let t0 = std::time::Instant::now();
                    for (j, &idx) in indices[lo..lo + block.len()].iter().enumerate() {
                        space.decode_into(idx, &mut bank[j * nparams..(j + 1) * nparams]);
                    }
                    obs().decode_us.observe(t0.elapsed().as_micros() as u64);
                    drop(phase);
                    // Phase 2: measure from the decoded bank.
                    let mut phase = bat_obs::trace::span_at("measure", parent);
                    phase.record_u64("block", b as u64);
                    let t1 = std::time::Instant::now();
                    for (j, slot) in block.iter_mut().enumerate() {
                        *slot =
                            self.measure(indices[lo + j], &bank[j * nparams..(j + 1) * nparams]);
                    }
                    obs().measure_us.observe(t1.elapsed().as_micros() as u64);
                });
            });
        out
    }

    /// Evaluate a configuration by value vector. Returns `None` when the
    /// budget is exhausted. Configurations with values outside the space are
    /// reported as [`EvalFailure::Restricted`].
    pub fn evaluate_config(&self, config: &[i64]) -> Option<Result<Measurement, EvalFailure>> {
        match self.problem.space().index_of(config) {
            Some(idx) => self.evaluate_index(idx),
            None => {
                if !self.has_budget() {
                    return None;
                }
                self.evals.fetch_add(1, Ordering::Relaxed);
                obs().evals.inc();
                Some(Err(EvalFailure::Restricted))
            }
        }
    }

    /// The batch fan-out under fault injection. Each unique index runs its
    /// whole retry chain on one worker, so per-configuration attempt
    /// counters advance deterministically regardless of thread count;
    /// duplicate occurrences within a batch share that chain's outcome
    /// (each still spends budget, exactly as the memo cache serves serial
    /// repeats of a cacheable outcome).
    fn evaluate_batch_faulty(&self, indices: &[u64]) -> Vec<Result<Measurement, EvalFailure>> {
        if !self.cache_enabled {
            // Without memoization each occurrence re-runs its retry chain,
            // sequentially so duplicates draw attempt numbers in order.
            return indices
                .iter()
                .map(|&idx| self.evaluate_faulty(idx))
                .collect();
        }
        // Deduplicate to first-occurrence slots (linear scan for the small
        // batches the driver emits, HashMap beyond that), reusing the
        // per-thread scratch buffers.
        let claimed = indices.len();
        BATCH_SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            scratch.to_measure.clear();
            scratch.slots.clear();
            let use_map = claimed > DEDUP_SCAN_MAX;
            if use_map {
                scratch.slot_of.clear();
            }
            for &idx in indices {
                let slot = if use_map {
                    *scratch.slot_of.entry(idx).or_insert_with(|| {
                        scratch.to_measure.push(idx);
                        scratch.to_measure.len() - 1
                    })
                } else {
                    match scratch.to_measure.iter().position(|&u| u == idx) {
                        Some(slot) => slot,
                        None => {
                            scratch.to_measure.push(idx);
                            scratch.to_measure.len() - 1
                        }
                    }
                };
                scratch.slots.push(slot);
            }
            let uniq = &scratch.to_measure;
            let mut measured: Vec<Result<Measurement, EvalFailure>> = (0..uniq.len())
                .into_par_iter()
                .map(|k| self.evaluate_faulty(uniq[k]))
                .collect();
            // Move each unique outcome into its last occurrence; only
            // extra duplicates clone.
            scratch.last.clear();
            scratch.last.resize(measured.len(), usize::MAX);
            for (i, &slot) in scratch.slots.iter().enumerate() {
                scratch.last[slot] = i;
            }
            let mut out: Vec<Result<Measurement, EvalFailure>> =
                vec![Err(EvalFailure::Restricted); claimed];
            for (i, &slot) in scratch.slots.iter().enumerate() {
                out[i] = if scratch.last[slot] == i {
                    std::mem::replace(&mut measured[slot], Err(EvalFailure::Restricted))
                } else {
                    measured[slot].clone()
                };
            }
            out
        })
    }

    /// One budget-charged evaluation under the installed fault model: cache
    /// probe, then a bounded retry chain over measurement attempts.
    fn evaluate_faulty(&self, index: u64) -> Result<Measurement, EvalFailure> {
        let faults = self.faults.as_ref().expect("fault path without a model");
        if self.cache_enabled {
            if let Some(hit) = self.shard(index).lock().get(&index) {
                obs().memo_hits.inc();
                return hit.clone();
            }
        }
        let mut first_ever = false;
        let mut retry: u32 = 0;
        let outcome = loop {
            // Claim the next attempt number (or observe quarantine) under
            // the ledger lock; the measurement itself runs outside it.
            let attempt = {
                let mut state = faults.state.lock();
                let entry = state.entry(index).or_default();
                if entry.quarantined {
                    None
                } else {
                    let a = entry.attempts;
                    first_ever |= a == 0;
                    entry.attempts += 1;
                    Some(a)
                }
            };
            let result = match attempt {
                None => Err(EvalFailure::Crash("quarantined configuration".into())),
                Some(attempt) => {
                    obs().measured.inc();
                    let r = self.decode_and_measure_attempt(index, attempt);
                    if matches!(r, Err(EvalFailure::Crash(_))) {
                        obs().crashes.inc();
                        let mut state = faults.state.lock();
                        let entry = state.entry(index).or_default();
                        entry.crashes += 1;
                        if !entry.quarantined
                            && faults.policy.quarantine_after > 0
                            && entry.crashes >= faults.policy.quarantine_after
                        {
                            entry.quarantined = true;
                            self.quarantined.fetch_add(1, Ordering::Relaxed);
                            obs().quarantined.inc();
                        }
                    }
                    r
                }
            };
            match &result {
                Err(f) if f.is_retryable() && retry < faults.policy.max_retries => {
                    retry += 1;
                    // The r-th retry charges `1 + backoff_evals · r`: the
                    // re-measurement plus a linear cool-down, priced in
                    // budget currency. Charged unconditionally — never
                    // budget-gated — so concurrent workers cannot disagree
                    // on whether a retry happened; the budget overshoots by
                    // at most one bounded retry chain.
                    let backoff = u64::from(faults.policy.backoff_evals) * u64::from(retry);
                    self.evals.fetch_add(1 + backoff, Ordering::Relaxed);
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    obs().evals.add(1 + backoff);
                    obs().backoff_charged.add(backoff);
                    match f {
                        EvalFailure::Timeout => obs().retries_timeout.inc(),
                        _ => obs().retries_transient.inc(),
                    }
                }
                _ => break result,
            }
        };
        // Memoize deterministic outcomes only: a cached flake would be
        // permanent, and crash outcomes stay uncached so repeat proposals
        // keep striking toward quarantine.
        let cacheable = !matches!(
            &outcome,
            Err(EvalFailure::Transient(_) | EvalFailure::Timeout | EvalFailure::Crash(_))
        );
        if self.cache_enabled && cacheable {
            self.shard(index)
                .lock()
                .entry(index)
                .or_insert_with(|| outcome.clone());
        }
        if first_ever || !self.cache_enabled {
            self.distinct.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Decode `index` into the thread-local scratch and run one fault-model
    /// measurement attempt.
    fn decode_and_measure_attempt(
        &self,
        index: u64,
        attempt: u64,
    ) -> Result<Measurement, EvalFailure> {
        let space = self.problem.space();
        CONFIG_SCRATCH.with(|s| {
            let mut config = s.borrow_mut();
            config.resize(space.num_params(), 0);
            space.decode_into(index, &mut config);
            self.measure_attempt(index, &config, attempt)
        })
    }

    /// One measurement attempt under the fault model. Deterministic model
    /// failures (restriction, launch) pass through untouched; then the
    /// sticky crash set, the per-attempt transient and timeout draws, and
    /// finally per-run outlier corruption — keyed independently of the
    /// attempt counter, so a retried success reproduces exactly the samples
    /// an undisturbed first attempt would have yielded.
    fn measure_attempt(
        &self,
        index: u64,
        config: &[i64],
        attempt: u64,
    ) -> Result<Measurement, EvalFailure> {
        let faults = self.faults.as_ref().expect("fault path without a model");
        let model = &faults.model;
        let salt = self.noise_salt;
        let fsalt = model.salt_for(salt);
        let (pure, pure_energy) = if self.measure_energy {
            self.problem.evaluate_pure2(config)?
        } else {
            (self.problem.evaluate_pure(config)?, None)
        };
        if model.is_crasher(fsalt, index) {
            return Err(EvalFailure::Crash("simulated device crash".into()));
        }
        if model.transient_fires(fsalt, index, attempt) {
            return Err(EvalFailure::Transient("simulated launch flake".into()));
        }
        if model.timeout_fires(fsalt, index, attempt) {
            return Err(EvalFailure::Timeout);
        }
        // Samples stream straight into the measurement's inline storage:
        // no `Vec` is built for protocols that fit inline (runs ≤ 8).
        let m = Measurement::from_samples((0..self.protocol.runs).map(|run| {
            let s = noisy_time_ms(pure, self.protocol.sigma, noise_key(salt, index, run));
            model.corrupt_sample(fsalt, index, run, s)
        }));
        Ok(match pure_energy {
            Some(e) => {
                let esalt = bat_gpusim::mix(salt, ENERGY_NOISE_STREAM);
                m.with_energy_samples(
                    (0..self.protocol.runs).map(|run| {
                        noisy_time_ms(e, self.protocol.sigma, noise_key(esalt, index, run))
                    }),
                )
            }
            None => m,
        })
    }

    /// Decode `index` into the thread-local scratch and measure it.
    fn decode_and_measure(&self, index: u64) -> Result<Measurement, EvalFailure> {
        let space = self.problem.space();
        CONFIG_SCRATCH.with(|s| {
            let mut config = s.borrow_mut();
            config.resize(space.num_params(), 0);
            space.decode_into(index, &mut config);
            self.measure(index, &config)
        })
    }

    fn measure(&self, index: u64, config: &[i64]) -> Result<Measurement, EvalFailure> {
        let salt = self.noise_salt;
        let (pure, pure_energy) = if self.measure_energy {
            self.problem.evaluate_pure2(config)?
        } else {
            (self.problem.evaluate_pure(config)?, None)
        };
        // Samples stream straight into the measurement's inline storage:
        // no `Vec` is built for protocols that fit inline (runs ≤ 8).
        let m = Measurement::from_samples(
            (0..self.protocol.runs)
                .map(|run| noisy_time_ms(pure, self.protocol.sigma, noise_key(salt, index, run))),
        );
        Ok(match pure_energy {
            Some(e) => {
                // Same noise discipline as the runtimes, on an independent
                // deterministic stream.
                let esalt = bat_gpusim::mix(salt, ENERGY_NOISE_STREAM);
                m.with_energy_samples(
                    (0..self.protocol.runs).map(|run| {
                        noisy_time_ms(e, self.protocol.sigma, noise_key(esalt, index, run))
                    }),
                )
            }
            None => m,
        })
    }
}

/// The one validated construction path for [`Evaluator`] — shared by
/// in-process callers and the tuning server's session setup, so both reject
/// nonsense protocols (`runs == 0`, negative or non-finite `sigma`) with a
/// typed [`Error::Spec`] before any measurement happens.
///
/// The legacy constructor chain ([`Evaluator::with_protocol`] +
/// [`Evaluator::with_budget`] + …) remains as thin unvalidated shims for
/// one release.
///
/// ```
/// use bat_core::{Evaluator, Protocol, SyntheticProblem};
/// use bat_space::{ConfigSpace, Param};
///
/// let space = ConfigSpace::builder()
///     .param(Param::int_range("x", 0, 7))
///     .build()
///     .unwrap();
/// let problem = SyntheticProblem::new("p", "sim", space, |c| Ok(1.0 + c[0] as f64));
/// let eval = Evaluator::builder(&problem)
///     .protocol(Protocol::noiseless())
///     .budget(10)
///     .build()
///     .unwrap();
/// assert_eq!(eval.budget_left(), Some(10));
/// ```
pub struct EvaluatorBuilder<'p> {
    problem: &'p dyn TuningProblem,
    protocol: Protocol,
    budget: Option<u64>,
    energy: bool,
    cache: bool,
    faults: Option<(FaultModel, RetryPolicy)>,
    threads: Option<usize>,
}

impl<'p> EvaluatorBuilder<'p> {
    fn new(problem: &'p dyn TuningProblem) -> Self {
        EvaluatorBuilder {
            problem,
            protocol: Protocol::default(),
            budget: None,
            energy: false,
            cache: true,
            faults: None,
            threads: None,
        }
    }

    /// Use this measurement protocol (default: [`Protocol::default`]).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Limit the number of `evaluate*` calls (default: unlimited).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Limit the number of `evaluate*` calls, or not (`None` keeps the
    /// evaluator unbudgeted) — the shape session specs carry.
    pub fn maybe_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = budget;
        self
    }

    /// Also measure the energy objective (default: off, keeping time-only
    /// artifacts bit-identical to the pre-energy suite).
    pub fn energy(mut self, energy: bool) -> Self {
        self.energy = energy;
        self
    }

    /// Enable or disable memoization (default: enabled; disabling is the
    /// ablation mode where every call re-measures).
    pub fn cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Install a fault model and retry policy (default: none — the
    /// evaluation path is byte-for-byte the pre-fault one).
    pub fn faults(mut self, model: FaultModel, policy: RetryPolicy) -> Self {
        self.faults = Some((model, policy));
        self
    }

    /// Size the measurement worker pool. **Process-global**: resolves the
    /// shared rayon pool to `threads` workers for every evaluator in the
    /// process, and only before the pool's first use (later calls are
    /// ignored by the pool, exactly like the `BAT_THREADS` variable).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Validate and construct the evaluator.
    ///
    /// Fails with [`Error::Spec`] when the protocol cannot measure
    /// anything: zero runs, non-finite or negative noise, or a zero-sized
    /// worker pool.
    pub fn build(self) -> Result<Evaluator<'p>, Error> {
        if self.protocol.runs == 0 {
            return Err(Error::spec("protocol runs must be >= 1"));
        }
        if !self.protocol.sigma.is_finite() || self.protocol.sigma < 0.0 {
            return Err(Error::spec(format!(
                "protocol sigma must be finite and >= 0, got {}",
                self.protocol.sigma
            )));
        }
        if self.threads == Some(0) {
            return Err(Error::spec("thread count must be >= 1"));
        }
        if let Some(threads) = self.threads {
            rayon::set_global_threads(threads);
        }
        let mut eval = Evaluator::with_protocol(self.problem, self.protocol);
        eval.budget = self.budget;
        eval.measure_energy = self.energy;
        eval.cache_enabled = self.cache;
        if let Some((model, policy)) = self.faults {
            eval = eval.with_faults(model, policy);
        }
        Ok(eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SyntheticProblem;
    use bat_space::{ConfigSpace, Param};

    fn problem() -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync> {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .restrict("x != 5")
            .build()
            .unwrap();
        SyntheticProblem::new("p", "sim", space, |c| Ok(1.0 + c[0] as f64))
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = problem();
        let e1 = Evaluator::new(&p);
        let e2 = Evaluator::new(&p);
        let a = e1.evaluate_index(3).unwrap().unwrap();
        let b = e2.evaluate_index(3).unwrap().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cache_returns_identical_measurements() {
        let p = problem();
        let e = Evaluator::new(&p);
        let a = e.evaluate_index(2).unwrap().unwrap();
        let b = e.evaluate_index(2).unwrap().unwrap();
        assert_eq!(a, b);
        assert_eq!(e.evals_used(), 2);
        assert_eq!(e.distinct_evals(), 1);
    }

    #[test]
    fn budget_is_enforced() {
        let p = problem();
        let e = Evaluator::new(&p).with_budget(2);
        assert!(e.evaluate_index(0).is_some());
        assert!(e.evaluate_index(1).is_some());
        assert!(e.evaluate_index(2).is_none());
        assert_eq!(e.evals_used(), 2);
    }

    #[test]
    fn restricted_config_reports_failure() {
        let p = problem();
        let e = Evaluator::new(&p);
        let r = e.evaluate_config(&[5]).unwrap();
        assert_eq!(r, Err(EvalFailure::Restricted));
    }

    #[test]
    fn out_of_space_value_is_restricted() {
        let p = problem();
        let e = Evaluator::new(&p);
        let r = e.evaluate_config(&[99]).unwrap();
        assert_eq!(r, Err(EvalFailure::Restricted));
        assert_eq!(e.evals_used(), 1);
    }

    #[test]
    fn noiseless_protocol_returns_pure_times() {
        let p = problem();
        let e = Evaluator::with_protocol(&p, Protocol::noiseless());
        let m = e.evaluate_config(&[4]).unwrap().unwrap();
        assert_eq!(m.time_ms, 5.0);
        assert_eq!(m.samples, vec![5.0]);
    }

    #[test]
    fn noisy_protocol_produces_spread_but_stable_median() {
        let p = problem();
        let e = Evaluator::with_protocol(
            &p,
            Protocol {
                runs: 7,
                sigma: 0.02,
                seed: 9,
                ..Protocol::default()
            },
        );
        let m = e.evaluate_config(&[4]).unwrap().unwrap();
        assert_eq!(m.samples.len(), 7);
        assert!((m.time_ms - 5.0).abs() < 0.5);
        let spread = m.samples.iter().cloned().fold(f64::MIN, f64::max)
            - m.samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.0);
    }

    #[test]
    fn energy_is_measured_only_on_request() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        // A two-objective problem: energy = 10 × time.
        let p = EnergyProblem { space };
        let plain = Evaluator::with_protocol(&p, Protocol::noiseless());
        let m = plain.evaluate_index(3).unwrap().unwrap();
        assert_eq!(m.energy_mj, None);

        let energetic = Evaluator::with_protocol(&p, Protocol::noiseless()).with_energy();
        let m = energetic.evaluate_index(3).unwrap().unwrap();
        assert_eq!(m.time_ms, 4.0);
        assert_eq!(m.energy_mj, Some(40.0));
        assert_eq!(m.energy_samples, vec![40.0]);
    }

    #[test]
    fn energy_noise_stream_is_independent_of_time_noise() {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 9))
            .build()
            .unwrap();
        let p = EnergyProblem { space };
        let e = Evaluator::with_protocol(
            &p,
            Protocol {
                runs: 5,
                sigma: 0.05,
                seed: 1,
                ..Protocol::default()
            },
        )
        .with_energy();
        let m = e.evaluate_index(2).unwrap().unwrap();
        // Were the streams shared, every energy sample would be exactly
        // 10 × its time sample (identical multiplicative factors).
        let lockstep = m
            .samples
            .iter()
            .zip(&m.energy_samples)
            .all(|(t, en)| (en / t - 10.0).abs() < 1e-12);
        assert!(!lockstep, "energy noise mirrors time noise");
        // Determinism still holds.
        let m2 = e.evaluate_index(2).unwrap().unwrap();
        assert_eq!(m, m2);
    }

    struct EnergyProblem {
        space: ConfigSpace,
    }

    impl TuningProblem for EnergyProblem {
        fn name(&self) -> &str {
            "energetic"
        }
        fn platform(&self) -> &str {
            "sim"
        }
        fn space(&self) -> &ConfigSpace {
            &self.space
        }
        fn evaluate_pure(&self, config: &[i64]) -> Result<f64, EvalFailure> {
            Ok(1.0 + config[0] as f64)
        }
        fn evaluate_pure2(&self, config: &[i64]) -> Result<(f64, Option<f64>), EvalFailure> {
            let t = self.evaluate_pure(config)?;
            Ok((t, Some(10.0 * t)))
        }
    }

    #[test]
    fn sharded_cache_counts_distinct_once_under_threads() {
        let p = problem();
        let e = Evaluator::new(&p);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for idx in 0..10u64 {
                        let m = e.evaluate_index(idx).unwrap();
                        // Re-reads must observe the identical outcome
                        // (index 5 is restricted; its failure caches too).
                        assert_eq!(e.evaluate_index(idx).unwrap(), m);
                    }
                });
            }
        });
        assert_eq!(e.distinct_evals(), 10);
        assert_eq!(e.evals_used(), 80);
    }

    #[test]
    fn without_cache_recounts_distinct() {
        let p = problem();
        let e = Evaluator::new(&p).without_cache();
        e.evaluate_index(1).unwrap().unwrap();
        e.evaluate_index(1).unwrap().unwrap();
        assert_eq!(e.distinct_evals(), 2);
    }

    #[test]
    fn batch_matches_serial_results_and_accounting() {
        let p = problem();
        let serial = Evaluator::new(&p);
        let batched = Evaluator::new(&p);
        let indices = [3u64, 5, 3, 8, 8, 1];
        let expect: Vec<_> = indices
            .iter()
            .map(|&i| serial.evaluate_index(i).unwrap())
            .collect();
        let got = batched.evaluate_batch(&indices);
        assert_eq!(got, expect);
        assert_eq!(batched.evals_used(), serial.evals_used());
        assert_eq!(batched.distinct_evals(), serial.distinct_evals());
        // Memo state matches: a later serial probe returns the cached value
        // without growing `distinct`.
        let before = batched.distinct_evals();
        assert_eq!(
            batched.evaluate_index(3).unwrap(),
            serial.evaluate_index(3).unwrap()
        );
        assert_eq!(batched.distinct_evals(), before);
    }

    #[test]
    fn batch_truncates_at_the_budget_with_one_claim() {
        let p = problem();
        let e = Evaluator::new(&p).with_budget(4);
        let got = e.evaluate_batch(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(got.len(), 4);
        assert_eq!(e.evals_used(), 4);
        assert!(!e.has_budget());
        assert!(e.evaluate_batch(&[6]).is_empty());
        assert_eq!(e.evals_used(), 4);
    }

    #[test]
    fn batch_without_cache_measures_every_occurrence() {
        let p = problem();
        let e = Evaluator::new(&p).without_cache();
        let got = e.evaluate_batch(&[2, 2, 2]);
        assert_eq!(got.len(), 3);
        assert_eq!(e.distinct_evals(), 3);
        assert_eq!(e.evals_used(), 3);
    }

    #[test]
    fn empty_batch_is_free() {
        let p = problem();
        let e = Evaluator::new(&p).with_budget(1);
        assert!(e.evaluate_batch(&[]).is_empty());
        assert_eq!(e.evals_used(), 0);
    }

    #[test]
    fn different_seeds_change_samples() {
        let p = problem();
        let e1 = Evaluator::with_protocol(
            &p,
            Protocol {
                runs: 3,
                sigma: 0.05,
                seed: 1,
                ..Protocol::default()
            },
        );
        let e2 = Evaluator::with_protocol(
            &p,
            Protocol {
                runs: 3,
                sigma: 0.05,
                seed: 2,
                ..Protocol::default()
            },
        );
        let a = e1.evaluate_index(3).unwrap().unwrap();
        let b = e2.evaluate_index(3).unwrap().unwrap();
        assert_ne!(a.samples, b.samples);
    }

    // --- fault injection -------------------------------------------------

    /// A roomy, restriction-free space so fault-draw searches have indices
    /// to sift through.
    fn wide_problem() -> SyntheticProblem<impl Fn(&[i64]) -> Result<f64, EvalFailure> + Send + Sync>
    {
        let space = ConfigSpace::builder()
            .param(Param::int_range("x", 0, 4095))
            .build()
            .unwrap();
        SyntheticProblem::new("wide", "sim", space, |c| Ok(1.0 + c[0] as f64))
    }

    /// The fault salt an evaluator over `p` with `protocol` derives.
    fn fault_salt(p: &dyn TuningProblem, protocol: &Protocol, model: &FaultModel) -> u64 {
        model.salt_for(bat_gpusim::mix(p.noise_salt(), protocol.seed))
    }

    #[test]
    fn attached_zero_rate_model_changes_nothing() {
        let p = problem();
        let plain = Evaluator::new(&p);
        let faulty = Evaluator::new(&p).with_faults(
            FaultModel {
                seed: 7,
                ..FaultModel::disabled()
            },
            RetryPolicy::default(),
        );
        for idx in 0..10 {
            assert_eq!(plain.evaluate_index(idx), faulty.evaluate_index(idx));
        }
        assert_eq!(plain.evals_used(), faulty.evals_used());
        assert_eq!(plain.distinct_evals(), faulty.distinct_evals());
        assert_eq!(faulty.retries_used(), 0);
        assert_eq!(faulty.quarantined_configs(), 0);
    }

    #[test]
    fn transient_fault_then_success_converges_without_retries() {
        // Regression for the memo-cache split: with retries disabled, a
        // transient failure must NOT be cached — the next call re-attempts
        // and succeeds, and only then is the success memoized.
        let p = wide_problem();
        let protocol = Protocol::default();
        let model = FaultModel {
            transient_rate: 0.4,
            seed: 11,
            ..FaultModel::disabled()
        };
        let salt = fault_salt(&p, &protocol, &model);
        let idx = (0..4096u64)
            .find(|&i| model.transient_fires(salt, i, 0) && !model.transient_fires(salt, i, 1))
            .expect("some config flakes on attempt 0 only");
        let e = Evaluator::with_protocol(&p, protocol).with_faults(
            model,
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        );
        let first = e.evaluate_index(idx).unwrap();
        assert!(matches!(first, Err(EvalFailure::Transient(_))), "{first:?}");
        let second = e.evaluate_index(idx).unwrap();
        let m = second.expect("attempt 1 succeeds");
        // The success is what gets memoized — and it matches the fault-free
        // measurement byte for byte (outliers are off).
        let clean = Evaluator::new(&p).evaluate_index(idx).unwrap().unwrap();
        assert_eq!(m, clean);
        assert_eq!(e.evaluate_index(idx).unwrap().unwrap(), m);
        assert_eq!(e.distinct_evals(), 1);
        assert_eq!(e.evals_used(), 3);
        assert_eq!(e.retries_used(), 0);
    }

    #[test]
    fn retries_recover_within_one_evaluation() {
        let p = wide_problem();
        let protocol = Protocol::default();
        let model = FaultModel {
            transient_rate: 0.4,
            seed: 3,
            ..FaultModel::disabled()
        };
        let salt = fault_salt(&p, &protocol, &model);
        let idx = (0..4096u64)
            .find(|&i| model.transient_fires(salt, i, 0) && !model.transient_fires(salt, i, 1))
            .unwrap();
        let e = Evaluator::with_protocol(&p, protocol).with_faults(model, RetryPolicy::default());
        let m = e.evaluate_index(idx).unwrap().expect("retry recovers");
        let clean = Evaluator::new(&p).evaluate_index(idx).unwrap().unwrap();
        assert_eq!(m, clean, "retried success must reproduce clean samples");
        assert_eq!(e.retries_used(), 1);
        // Initial charge + one zero-backoff retry.
        assert_eq!(e.evals_used(), 2);
    }

    #[test]
    fn exhausted_retries_report_the_failure_and_charge_backoff() {
        let p = wide_problem();
        let protocol = Protocol::default();
        let model = FaultModel {
            transient_rate: 0.4,
            seed: 5,
            ..FaultModel::disabled()
        };
        let salt = fault_salt(&p, &protocol, &model);
        let idx = (0..4096u64)
            .find(|&i| (0..3).all(|a| model.transient_fires(salt, i, a)))
            .expect("some config flakes three times running");
        let e = Evaluator::with_protocol(&p, protocol).with_faults(
            model,
            RetryPolicy {
                max_retries: 2,
                backoff_evals: 1,
                ..RetryPolicy::default()
            },
        );
        let r = e.evaluate_index(idx).unwrap();
        assert!(matches!(r, Err(EvalFailure::Transient(_))));
        assert_eq!(e.retries_used(), 2);
        // 1 initial + (1 + 1·1) + (1 + 1·2) = 6.
        assert_eq!(e.evals_used(), 6);
        // Not memoized: the ledger keeps advancing on the next call.
        assert_eq!(e.distinct_evals(), 1);
    }

    #[test]
    fn crashers_quarantine_after_enough_strikes() {
        let p = problem();
        let model = FaultModel {
            crash_rate: 1.0,
            seed: 1,
            ..FaultModel::disabled()
        };
        let e = Evaluator::new(&p).with_faults(
            model,
            RetryPolicy {
                quarantine_after: 2,
                ..RetryPolicy::default()
            },
        );
        for strike in 0..4 {
            let r = e.evaluate_index(0).unwrap();
            match r {
                Err(EvalFailure::Crash(msg)) => {
                    if strike >= 2 {
                        assert!(msg.contains("quarantined"), "strike {strike}: {msg}");
                    } else {
                        assert!(msg.contains("crash"), "strike {strike}: {msg}");
                    }
                }
                other => panic!("expected crash, got {other:?}"),
            }
        }
        assert_eq!(e.quarantined_configs(), 1);
        assert_eq!(e.distinct_evals(), 1);
        // Restriction failures still dominate the crash draw and stay
        // cached (index 5 is restricted).
        assert_eq!(e.evaluate_index(5).unwrap(), Err(EvalFailure::Restricted));
        assert_eq!(e.evaluate_index(5).unwrap(), Err(EvalFailure::Restricted));
        assert_eq!(e.quarantined_configs(), 1);
    }

    #[test]
    fn faulty_batch_matches_serial_calls() {
        let p = wide_problem();
        let model = FaultModel {
            transient_rate: 0.3,
            timeout_rate: 0.1,
            crash_rate: 0.1,
            outlier_rate: 0.1,
            seed: 9,
            ..FaultModel::disabled()
        };
        let policy = RetryPolicy::default();
        let serial = Evaluator::new(&p).with_faults(model, policy);
        let batched = Evaluator::new(&p).with_faults(model, policy);
        let indices: Vec<u64> = (0..40).collect();
        let expect: Vec<_> = indices
            .iter()
            .map(|&i| serial.evaluate_index(i).unwrap())
            .collect();
        let got = batched.evaluate_batch(&indices);
        assert_eq!(got, expect);
        assert_eq!(batched.evals_used(), serial.evals_used());
        assert_eq!(batched.distinct_evals(), serial.distinct_evals());
        assert_eq!(batched.retries_used(), serial.retries_used());
        assert_eq!(batched.quarantined_configs(), serial.quarantined_configs());
    }

    #[test]
    fn faulty_outcomes_are_thread_count_independent() {
        // The same batch on a 1-thread and a default pool must agree byte
        // for byte: attempt counters are per-configuration and each unique
        // index runs on exactly one worker.
        let p = wide_problem();
        let model = FaultModel {
            transient_rate: 0.3,
            crash_rate: 0.1,
            seed: 2,
            ..FaultModel::disabled()
        };
        let indices: Vec<u64> = (0..64).collect();
        let wide = Evaluator::new(&p).with_faults(model, RetryPolicy::default());
        let wide_out = wide.evaluate_batch(&indices);
        // A single-element outer par_iter marks the thread as already
        // parallel, so the inner batch fan-out degrades to one worker.
        let narrow = Evaluator::new(&p).with_faults(model, RetryPolicy::default());
        let narrow_out: Vec<Vec<Result<Measurement, EvalFailure>>> = [&narrow]
            .par_iter()
            .map(|e| e.evaluate_batch(&indices))
            .collect();
        assert_eq!(wide_out, narrow_out[0]);
        assert_eq!(wide.retries_used(), narrow.retries_used());
        assert_eq!(wide.evals_used(), narrow.evals_used());
    }

    #[test]
    fn outliers_corrupt_samples_but_not_determinism() {
        let p = wide_problem();
        let protocol = Protocol::default();
        let model = FaultModel {
            outlier_rate: 0.3,
            seed: 4,
            ..FaultModel::disabled()
        };
        let e1 = Evaluator::with_protocol(&p, protocol).with_faults(model, RetryPolicy::default());
        let e2 = Evaluator::with_protocol(&p, protocol).with_faults(model, RetryPolicy::default());
        let clean = Evaluator::with_protocol(&p, protocol);
        let mut corrupted = 0usize;
        for idx in 0..30 {
            let a = e1.evaluate_index(idx).unwrap().unwrap();
            let b = e2.evaluate_index(idx).unwrap().unwrap();
            assert_eq!(a, b);
            let c = clean.evaluate_index(idx).unwrap().unwrap();
            corrupted += usize::from(a.samples != c.samples);
        }
        assert!(corrupted > 0, "no outlier fired in 30 × 5 runs");
    }

    #[test]
    fn builder_matches_legacy_constructor_chain() {
        let p = problem();
        let legacy = Evaluator::with_protocol(&p, Protocol::default())
            .with_budget(7)
            .with_energy();
        let built = Evaluator::builder(&p)
            .protocol(Protocol::default())
            .budget(7)
            .energy(true)
            .build()
            .unwrap();
        for idx in [1, 2, 3, 1] {
            assert_eq!(legacy.evaluate_index(idx), built.evaluate_index(idx));
        }
        assert_eq!(legacy.budget_left(), built.budget_left());
        assert_eq!(legacy.distinct_evals(), built.distinct_evals());
    }

    #[test]
    fn builder_matches_faulty_chain() {
        let p = wide_problem();
        let model = FaultModel {
            transient_rate: 0.3,
            crash_rate: 0.1,
            seed: 2,
            ..FaultModel::disabled()
        };
        let legacy = Evaluator::new(&p).with_faults(model, RetryPolicy::default());
        let built = Evaluator::builder(&p)
            .faults(model, RetryPolicy::default())
            .build()
            .unwrap();
        let indices: Vec<u64> = (0..32).collect();
        assert_eq!(
            legacy.evaluate_batch(&indices),
            built.evaluate_batch(&indices)
        );
        assert_eq!(legacy.retries_used(), built.retries_used());
    }

    #[test]
    fn builder_rejects_bad_protocols() {
        let p = problem();
        let zero_runs = Protocol {
            runs: 0,
            ..Protocol::default()
        };
        assert!(Evaluator::builder(&p).protocol(zero_runs).build().is_err());
        let bad_sigma = Protocol {
            sigma: f64::NAN,
            ..Protocol::default()
        };
        assert!(Evaluator::builder(&p).protocol(bad_sigma).build().is_err());
        let neg_sigma = Protocol {
            sigma: -0.5,
            ..Protocol::default()
        };
        assert!(Evaluator::builder(&p).protocol(neg_sigma).build().is_err());
        assert!(Evaluator::builder(&p).threads(0).build().is_err());
    }

    #[test]
    fn builder_cache_toggle_is_without_cache() {
        let p = problem();
        let built = Evaluator::builder(&p).cache(false).build().unwrap();
        built.evaluate_index(1);
        built.evaluate_index(1);
        assert_eq!(built.evals_used(), 2);
        assert_eq!(built.distinct_evals(), 2, "cache off: every call measures");
    }
}
