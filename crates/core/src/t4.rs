//! T4 — the standard autotuning interchange format of the BAT / Kernel
//! Tuner ecosystem.
//!
//! BAT 2.0's tooling exchanges tuning results as T4 JSON documents
//! (a metadata file describing the run environment plus a results file
//! with one entry per measured configuration). This module implements the
//! subset the suite produces and consumes: named-parameter configurations,
//! per-run times, an invalidity taxonomy matching [`EvalFailure`], and a
//! schema version for forward compatibility.
//!
//! ```
//! use bat_core::{Measurement, Trial, TuningRun};
//! use bat_core::t4::T4Results;
//!
//! let mut run = TuningRun::new("gemm", "RTX 3090", "random-search", 42);
//! run.push(Trial {
//!     eval: 1,
//!     index: 7,
//!     config: vec![32, 64],
//!     outcome: Ok(Measurement::from_samples(vec![1.5, 1.4, 1.6])),
//! });
//! let t4 = T4Results::from_run(&run, &["MWG".into(), "NWG".into()]);
//! let json = t4.to_json();
//! let back = T4Results::from_json(&json).unwrap();
//! assert_eq!(back.results[0].configuration["MWG"], 32);
//! assert_eq!(back, t4);
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::measurement::EvalFailure;
use crate::record::TuningRun;

/// Schema version written by this implementation.
pub const T4_SCHEMA_VERSION: &str = "1.0.0";

/// Objective unit used throughout the suite.
pub const T4_TIME_UNIT: &str = "ms";

/// Energy unit used for the optional second objective.
pub const T4_ENERGY_UNIT: &str = "mJ";

/// Why a configuration produced no valid objective — T4's invalidity
/// taxonomy (`"valid"` entries carry measurements instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum T4Invalidity {
    /// Violates the search-space constraints (never compiled).
    Constraints,
    /// Compiled but failed at launch/run time on the target.
    Runtime,
}

/// One named measurement, e.g. `{"name": "time", "value": 1.5, "unit": "ms"}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T4Measurement {
    /// Objective name.
    pub name: String,
    /// Objective value.
    pub value: f64,
    /// Unit string.
    pub unit: String,
}

/// One configuration's entry in a T4 results document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T4Result {
    /// Named parameter values (BTreeMap: deterministic key order in JSON).
    pub configuration: BTreeMap<String, i64>,
    /// Per-run times in [`T4_TIME_UNIT`] (empty for invalid entries).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub times: Vec<f64>,
    /// Per-run energies in [`T4_ENERGY_UNIT`] (empty when energy was not
    /// measured — time-only documents serialize exactly as before the
    /// energy objective existed).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub energies: Vec<f64>,
    /// Aggregated objective measurements (empty for invalid entries).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub measurements: Vec<T4Measurement>,
    /// Present iff the configuration produced no objective.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub invalidity: Option<T4Invalidity>,
}

impl T4Result {
    /// The aggregated time objective, when valid.
    pub fn time_ms(&self) -> Option<f64> {
        self.measurements
            .iter()
            .find(|m| m.name == "time")
            .map(|m| m.value)
    }

    /// The aggregated energy objective, when measured.
    pub fn energy_mj(&self) -> Option<f64> {
        self.measurements
            .iter()
            .find(|m| m.name == "energy")
            .map(|m| m.value)
    }

    /// True when the entry carries a measurement.
    pub fn is_valid(&self) -> bool {
        self.invalidity.is_none()
    }
}

/// A complete T4 results document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T4Results {
    /// Format version (see [`T4_SCHEMA_VERSION`]).
    pub schema_version: String,
    /// Benchmark (kernel) name.
    pub benchmark: String,
    /// Hardware/platform label.
    pub hardware: String,
    /// Producing tuner and its seed.
    pub tuner: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// One entry per evaluation, in evaluation order.
    pub results: Vec<T4Result>,
}

impl T4Results {
    /// Convert a [`TuningRun`] into a T4 document. `param_names` must be
    /// the run's space parameter names, aligned with each trial's config
    /// vector.
    ///
    /// # Panics
    /// If a trial's configuration length does not match `param_names`.
    pub fn from_run(run: &TuningRun, param_names: &[String]) -> T4Results {
        let results = run
            .trials
            .iter()
            .map(|t| {
                assert_eq!(
                    t.config.len(),
                    param_names.len(),
                    "config/parameter-name length mismatch"
                );
                let configuration: BTreeMap<String, i64> = param_names
                    .iter()
                    .cloned()
                    .zip(t.config.iter().copied())
                    .collect();
                match &t.outcome {
                    Ok(m) => {
                        let mut measurements = vec![T4Measurement {
                            name: "time".to_string(),
                            value: m.time_ms,
                            unit: T4_TIME_UNIT.to_string(),
                        }];
                        if let Some(e) = m.energy_mj {
                            measurements.push(T4Measurement {
                                name: "energy".to_string(),
                                value: e,
                                unit: T4_ENERGY_UNIT.to_string(),
                            });
                        }
                        T4Result {
                            configuration,
                            times: m.samples.to_vec(),
                            energies: m.energy_samples.to_vec(),
                            measurements,
                            invalidity: None,
                        }
                    }
                    Err(EvalFailure::Restricted) => T4Result {
                        configuration,
                        times: Vec::new(),
                        energies: Vec::new(),
                        measurements: Vec::new(),
                        invalidity: Some(T4Invalidity::Constraints),
                    },
                    // Launch failures and the fault model's runtime-class
                    // outcomes (flakes, timeouts, crashes) all map to T4's
                    // "runtime" invalidity: they compiled but died on the
                    // target.
                    Err(
                        EvalFailure::Launch(_)
                        | EvalFailure::Transient(_)
                        | EvalFailure::Timeout
                        | EvalFailure::Crash(_),
                    ) => T4Result {
                        configuration,
                        times: Vec::new(),
                        energies: Vec::new(),
                        measurements: Vec::new(),
                        invalidity: Some(T4Invalidity::Runtime),
                    },
                }
            })
            .collect();
        T4Results {
            schema_version: T4_SCHEMA_VERSION.to_string(),
            benchmark: run.problem.clone(),
            hardware: run.platform.clone(),
            tuner: run.tuner.clone(),
            seed: run.seed,
            results,
        }
    }

    /// The fastest valid entry.
    pub fn best(&self) -> Option<&T4Result> {
        self.results.iter().filter(|r| r.is_valid()).min_by(|a, b| {
            a.time_ms()
                .unwrap_or(f64::INFINITY)
                .total_cmp(&b.time_ms().unwrap_or(f64::INFINITY))
        })
    }

    /// Fraction of entries that are valid.
    pub fn validity_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| r.is_valid()).count() as f64 / self.results.len() as f64
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("T4 document serializes")
    }

    /// Parse a T4 results document.
    pub fn from_json(s: &str) -> Result<T4Results, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The environment block of a T4 metadata document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T4Metadata {
    /// Format version.
    pub schema_version: String,
    /// Hardware description (GPU label for this suite).
    pub hardware: String,
    /// Software environment entries (suite name/version, simulator, …).
    pub environment: BTreeMap<String, String>,
}

impl T4Metadata {
    /// Metadata for a run on `hardware` produced by this suite.
    pub fn for_platform(hardware: impl Into<String>) -> T4Metadata {
        let mut environment = BTreeMap::new();
        environment.insert("suite".to_string(), "BAT-rs".to_string());
        environment.insert(
            "suite_version".to_string(),
            env!("CARGO_PKG_VERSION").to_string(),
        );
        environment.insert("backend".to_string(), "bat-gpusim".to_string());
        T4Metadata {
            schema_version: T4_SCHEMA_VERSION.to_string(),
            hardware: hardware.into(),
            environment,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("T4 metadata serializes")
    }

    /// Parse a T4 metadata document.
    pub fn from_json(s: &str) -> Result<T4Metadata, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use crate::record::Trial;

    fn run_with_outcomes() -> (TuningRun, Vec<String>) {
        let names = vec!["a".to_string(), "b".to_string()];
        let mut run = TuningRun::new("toy", "SIM GPU", "random-search", 7);
        run.push(Trial {
            eval: 1,
            index: 0,
            config: vec![1, 2],
            outcome: Ok(Measurement::from_samples(vec![2.0, 1.0, 3.0])),
        });
        run.push(Trial {
            eval: 2,
            index: 5,
            config: vec![4, 8],
            outcome: Err(EvalFailure::Restricted),
        });
        run.push(Trial {
            eval: 3,
            index: 9,
            config: vec![16, 2],
            outcome: Err(EvalFailure::Launch("too much shared memory".into())),
        });
        run.push(Trial {
            eval: 4,
            index: 2,
            config: vec![1, 8],
            outcome: Ok(Measurement::from_samples(vec![0.5])),
        });
        (run, names)
    }

    #[test]
    fn conversion_preserves_outcomes_and_order() {
        let (run, names) = run_with_outcomes();
        let t4 = T4Results::from_run(&run, &names);
        assert_eq!(t4.schema_version, T4_SCHEMA_VERSION);
        assert_eq!(t4.results.len(), 4);
        assert_eq!(t4.results[0].configuration["a"], 1);
        assert_eq!(t4.results[0].configuration["b"], 2);
        assert_eq!(t4.results[0].times, vec![2.0, 1.0, 3.0]);
        assert_eq!(t4.results[0].time_ms(), Some(2.0)); // median
        assert_eq!(t4.results[1].invalidity, Some(T4Invalidity::Constraints));
        assert_eq!(t4.results[2].invalidity, Some(T4Invalidity::Runtime));
        assert!(t4.results[3].is_valid());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let (run, names) = run_with_outcomes();
        let t4 = T4Results::from_run(&run, &names);
        let back = T4Results::from_json(&t4.to_json()).unwrap();
        assert_eq!(back, t4);
    }

    #[test]
    fn best_and_validity_rate() {
        let (run, names) = run_with_outcomes();
        let t4 = T4Results::from_run(&run, &names);
        assert_eq!(t4.best().unwrap().time_ms(), Some(0.5));
        assert!((t4.validity_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_entries_serialize_compactly() {
        let (run, names) = run_with_outcomes();
        let t4 = T4Results::from_run(&run, &names);
        let json = t4.to_json();
        // Invalidity taxonomy uses snake_case strings.
        assert!(json.contains("\"constraints\""));
        assert!(json.contains("\"runtime\""));
        // Empty times/measurements are omitted, not serialized as [].
        let runtime_entry = json.split("\"runtime\"").next().unwrap();
        assert!(!runtime_entry.contains("\"times\": []"));
    }

    #[test]
    fn energy_measurements_flow_into_t4() {
        let mut run = TuningRun::new("toy", "SIM", "nsga2", 1);
        run.push(Trial {
            eval: 1,
            index: 0,
            config: vec![2],
            outcome: Ok(
                Measurement::from_samples(vec![1.5]).with_energy_samples(vec![400.0, 420.0])
            ),
        });
        let t4 = T4Results::from_run(&run, &["x".to_string()]);
        assert_eq!(t4.results[0].energy_mj(), Some(410.0));
        assert_eq!(t4.results[0].energies, vec![400.0, 420.0]);
        let json = t4.to_json();
        assert!(json.contains("\"energy\"") && json.contains("\"mJ\""));
        assert_eq!(T4Results::from_json(&json).unwrap(), t4);
    }

    #[test]
    fn time_only_t4_has_no_energy_fields() {
        let (run, names) = run_with_outcomes();
        let t4 = T4Results::from_run(&run, &names);
        assert_eq!(t4.results[0].energy_mj(), None);
        assert!(!t4.to_json().contains("energ"));
    }

    #[test]
    fn metadata_document_is_self_describing() {
        let md = T4Metadata::for_platform("RTX 3090");
        let back = T4Metadata::from_json(&md.to_json()).unwrap();
        assert_eq!(back, md);
        assert_eq!(back.hardware, "RTX 3090");
        assert_eq!(back.environment["suite"], "BAT-rs");
        assert!(back.environment.contains_key("suite_version"));
    }

    #[test]
    fn empty_run_produces_empty_document() {
        let run = TuningRun::new("toy", "SIM", "x", 0);
        let t4 = T4Results::from_run(&run, &[]);
        assert!(t4.results.is_empty());
        assert!(t4.best().is_none());
        assert_eq!(t4.validity_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_names_panic() {
        let (run, _) = run_with_outcomes();
        T4Results::from_run(&run, &["only-one".to_string()]);
    }
}
