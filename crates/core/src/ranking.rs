//! Friedman-style rank aggregation shared by the comparison and harness
//! layers, so "mean rank" means exactly the same thing whichever path
//! produced the numbers.

/// Mean rank per tuner from per-repetition final objectives,
/// `finals[tuner][rep]` (lower objective = better). Within every
/// repetition tuners are ranked by final value with failures (`None`)
/// last; ties share the average rank; ranks are averaged over
/// repetitions. Ragged inputs (some tuner missing a repetition, e.g. in
/// a partial artifact) treat the missing trials as failures.
pub fn friedman_mean_ranks(finals: &[Vec<Option<f64>>]) -> Vec<f64> {
    let n = finals.len();
    let reps = finals.iter().map(Vec::len).max().unwrap_or(0);
    let mut rank_sum = vec![0.0f64; n];
    // (`finals` is tuner-major, so the repetition loop must index into it.)
    #[allow(clippy::needless_range_loop)]
    for s in 0..reps {
        let key = |i: usize| finals[i].get(s).copied().flatten();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| match (key(a), key(b)) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
        let mut pos = 0usize;
        while pos < n {
            let mut end = pos + 1;
            while end < n && key(order[end]) == key(order[pos]) {
                end += 1;
            }
            let shared = (pos + 1..=end).sum::<usize>() as f64 / (end - pos) as f64;
            for &t in &order[pos..end] {
                rank_sum[t] += shared;
            }
            pos = end;
        }
    }
    rank_sum
        .into_iter()
        .map(|s| if reps == 0 { 0.0 } else { s / reps as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_order_ties_and_failures() {
        // rep 0: a=1.0, b=2.0, c=None → ranks 1, 2, 3
        // rep 1: a=2.0, b=2.0, c=1.0 → ranks 2.5, 2.5, 1
        let finals = vec![
            vec![Some(1.0), Some(2.0)],
            vec![Some(2.0), Some(2.0)],
            vec![None, Some(1.0)],
        ];
        let ranks = friedman_mean_ranks(&finals);
        assert_eq!(ranks, vec![1.75, 2.25, 2.0]);
    }

    #[test]
    fn ragged_input_counts_missing_reps_as_failures() {
        let finals = vec![vec![Some(1.0), Some(1.0)], vec![Some(2.0)]];
        let ranks = friedman_mean_ranks(&finals);
        // rep 0: 1 vs 2 → 1, 2; rep 1: 1 vs missing → 1, 2.
        assert_eq!(ranks, vec![1.0, 2.0]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(friedman_mean_ranks(&[]).is_empty());
        assert_eq!(friedman_mean_ranks(&[vec![], vec![]]), vec![0.0, 0.0]);
    }
}
