//! # bat-core
//!
//! The shared problem interface of BAT-rs: the [`TuningProblem`] trait that
//! benchmarks implement and tuners consume, the [`Evaluator`] measurement
//! harness (deterministic noise, repeated runs, memoization, budget
//! accounting) and serializable [`TuningRun`] records.
//!
//! ```
//! use bat_core::{Evaluator, Protocol, SyntheticProblem, TuningProblem};
//! use bat_space::{ConfigSpace, Param};
//!
//! let space = ConfigSpace::builder()
//!     .param(Param::int_range("x", 0, 7))
//!     .build()
//!     .unwrap();
//! let problem = SyntheticProblem::new("toy", "sim", space, |c| Ok((c[0] * c[0]) as f64 + 1.0));
//! let eval = Evaluator::with_protocol(&problem, Protocol::noiseless());
//! let m = eval.evaluate_config(&[2]).unwrap().unwrap();
//! assert_eq!(m.time_ms, 5.0);
//! ```

#![warn(missing_docs)]

mod backend;
mod error;
mod evaluator;
mod measurement;
mod problem;
mod ranking;
mod record;
pub mod t4;

pub use backend::{EvalBackend, EvalOutcome, EvalStats};
pub use bat_gpusim::FaultModel;
pub use error::Error;
pub use evaluator::{Evaluator, EvaluatorBuilder, Protocol, RetryPolicy};
pub use measurement::{EvalFailure, Measurement, Samples};
pub use problem::{SyntheticProblem, TuningProblem};
pub use ranking::friedman_mean_ranks;
pub use record::{Trial, TuningRun};
