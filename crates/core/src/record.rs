//! Result records: what a tuning run produces and how it is serialized.
//!
//! Mirrors the role of the T4 results format in the BAT/Kernel Tuner
//! ecosystem: a self-describing JSON record of every trial, so analyses can
//! run offline and results can be exchanged between tools.

use serde::{Deserialize, Serialize};

use crate::measurement::{EvalFailure, Measurement};

/// One evaluated configuration within a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// 1-based evaluation counter at which this trial happened.
    pub eval: u64,
    /// Dense configuration index in the benchmark's space.
    pub index: u64,
    /// Configuration values (aligned with the space's parameters).
    pub config: Vec<i64>,
    /// Measured runtime, or why there is none.
    pub outcome: Result<Measurement, EvalFailure>,
}

impl Trial {
    /// The objective if this trial succeeded.
    pub fn time_ms(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|m| m.time_ms)
    }
}

/// A complete tuning run: metadata plus the trial history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRun {
    /// Benchmark name.
    pub problem: String,
    /// Platform (architecture) label.
    pub platform: String,
    /// Tuner name.
    pub tuner: String,
    /// RNG seed the tuner used.
    pub seed: u64,
    /// Every evaluated configuration, in evaluation order.
    pub trials: Vec<Trial>,
}

impl TuningRun {
    /// Create an empty run record.
    pub fn new(
        problem: impl Into<String>,
        platform: impl Into<String>,
        tuner: impl Into<String>,
        seed: u64,
    ) -> Self {
        TuningRun {
            problem: problem.into(),
            platform: platform.into(),
            tuner: tuner.into(),
            seed,
            trials: Vec::new(),
        }
    }

    /// Append a trial.
    pub fn push(&mut self, trial: Trial) {
        self.trials.push(trial);
    }

    /// The best successful trial, if any.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter(|t| t.time_ms().is_some())
            .min_by(|a, b| {
                a.time_ms()
                    .unwrap()
                    .partial_cmp(&b.time_ms().unwrap())
                    .expect("NaN runtime")
            })
    }

    /// Best-so-far curve: element `i` is the best objective seen in the
    /// first `i+1` trials (`None` until the first success). This is the
    /// series plotted in the paper's Fig. 2.
    pub fn best_so_far(&self) -> Vec<Option<f64>> {
        let mut best: Option<f64> = None;
        self.trials
            .iter()
            .map(|t| {
                if let Some(v) = t.time_ms() {
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
                best
            })
            .collect()
    }

    /// Number of successful trials.
    pub fn successes(&self) -> usize {
        self.trials.iter().filter(|t| t.time_ms().is_some()).count()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("TuningRun is always serializable")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(times: &[Option<f64>]) -> TuningRun {
        let mut run = TuningRun::new("p", "sim", "test", 1);
        for (i, t) in times.iter().enumerate() {
            run.push(Trial {
                eval: i as u64 + 1,
                index: i as u64,
                config: vec![i as i64],
                outcome: match t {
                    Some(v) => Ok(Measurement::from_samples(vec![*v])),
                    None => Err(EvalFailure::Restricted),
                },
            });
        }
        run
    }

    #[test]
    fn best_ignores_failures() {
        let run = mk(&[None, Some(5.0), Some(3.0), None, Some(4.0)]);
        assert_eq!(run.best().unwrap().time_ms(), Some(3.0));
        assert_eq!(run.successes(), 3);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let run = mk(&[None, Some(5.0), Some(3.0), None, Some(4.0)]);
        let curve = run.best_so_far();
        assert_eq!(
            curve,
            vec![None, Some(5.0), Some(3.0), Some(3.0), Some(3.0)]
        );
    }

    #[test]
    fn json_round_trip() {
        let run = mk(&[Some(2.0), None]);
        let back = TuningRun::from_json(&run.to_json()).unwrap();
        assert_eq!(run, back);
    }

    #[test]
    fn empty_run_has_no_best() {
        let run = mk(&[]);
        assert!(run.best().is_none());
        assert!(run.best_so_far().is_empty());
    }
}
